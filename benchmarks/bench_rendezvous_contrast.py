"""E18 — §1.3: the rendezvous contrast, executable.

On symmetric (periodic) initial configurations rendezvous is provably
unsolvable while all three uniform-deployment algorithms succeed — the
paper's central motivation ("rendezvous breaks symmetry, uniform
deployment attains it").  Rows pair the rendezvous outcome with the
deployment outcomes on identical placements.
"""

from __future__ import annotations

from repro.baselines.rendezvous import RendezvousAgent
from repro.experiments.runner import run_experiment
from repro.ring.placement import (
    Placement,
    periodic_placement,
    placement_from_distances,
)
from repro.sim.engine import Engine

from benchmarks.conftest import report

CONFIGS = {
    "aperiodic (l=1)": placement_from_distances((5, 7, 4, 8)),
    "periodic (l=2)": periodic_placement((1, 2, 3), 2),
    "periodic (l=3)": periodic_placement((2, 5, 3), 3),
    "uniform (l=k)": placement_from_distances((4, 4, 4, 4)),
}


def _rendezvous(placement: Placement):
    agents = [RendezvousAgent(placement.agent_count) for _ in placement.homes]
    engine = Engine(placement, agents)
    engine.run()
    positions = set(engine.final_positions().values())
    gathered = len(positions) == 1
    detected = all(agent.symmetric for agent in agents)
    return gathered, detected


def test_rendezvous_vs_deployment(benchmark):
    def run():
        rows = []
        for name, placement in CONFIGS.items():
            gathered, detected = _rendezvous(placement)
            deployment_ok = all(
                run_experiment(algorithm, placement).ok
                for algorithm in ("known_k_full", "known_k_logspace", "unknown")
            )
            rows.append((name, placement, gathered, detected, deployment_ok))
        return rows

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "configuration": name,
            "l": placement.symmetry_degree,
            "rendezvous gathers": gathered,
            "symmetry detected": detected,
            "deployment (all 3)": deployment_ok,
        }
        for name, placement, gathered, detected, deployment_ok in measured
    ]
    report(
        "E18 §1.3 - rendezvous vs uniform deployment on the same placements",
        rows,
        notes="deployment succeeds from every configuration; rendezvous only "
        "from aperiodic ones (the paper's symmetry argument)",
    )
    for name, placement, gathered, detected, deployment_ok in measured:
        assert deployment_ok
        if placement.symmetry_degree == 1:
            assert gathered
        else:
            assert not gathered and detected
