"""Multi-trial Table 1 rows with spread (mean [min..max] over placements).

Single draws can mislead; this bench repeats each (algorithm, n, k)
cell over several seeded random placements and reports the spread,
confirming the Table 1 envelopes hold across the distribution and not
just for one lucky configuration.  Async trials (random scheduler)
re-check that move totals are schedule-independent for the
deterministic algorithms.
"""

from __future__ import annotations

from repro.experiments.statistics import aggregate_trials
from repro.sim.scheduler import RandomScheduler

from benchmarks.conftest import report

CELLS = [(96, 8), (192, 8), (192, 16)]
TRIALS = 5


def test_multi_trial_spread(benchmark):
    def run():
        rows = []
        for algorithm in ("known_k_full", "known_k_logspace", "unknown"):
            for n, k in CELLS:
                rows.append(aggregate_trials(algorithm, n, k, trials=TRIALS, seed=17))
        return rows

    aggregates = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        f"Statistics - Table 1 cells over {TRIALS} random placements "
        "(mean [min..max] (sd))",
        [aggregate.row() for aggregate in aggregates],
        notes="all-uniform across every trial; spreads stay inside the "
        "O-bounds (3kn / 4kn / 14kn moves respectively)",
    )
    for aggregate in aggregates:
        assert aggregate.all_uniform
        bound = {"known_k_full": 3, "known_k_logspace": 4, "unknown": 14}[
            aggregate.algorithm
        ]
        assert aggregate.total_moves.maximum <= (
            bound * aggregate.agent_count * aggregate.ring_size
        )


def test_async_trials_match_sync_moves(benchmark):
    def run():
        sync = aggregate_trials("known_k_full", 96, 8, trials=3, seed=4)
        asynchronous = aggregate_trials(
            "known_k_full",
            96,
            8,
            trials=3,
            seed=4,
            scheduler_factory=lambda index: RandomScheduler(index),
        )
        return sync, asynchronous

    sync, asynchronous = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Statistics - schedule independence of Algorithm 1 move totals",
        [
            {"schedule": "synchronous", **{k: v for k, v in sync.row().items() if k != "algorithm"}},
            {"schedule": "random-async", **{k: v for k, v in asynchronous.row().items() if k != "algorithm"}},
        ],
    )
    assert sync.total_moves == asynchronous.total_moves
