"""E17 — §5 future work: uniform deployment on trees and general graphs.

The Euler-tour embedding turns an n-node tree into a 2(n-1)-node
virtual ring; the ring algorithms run unchanged.  Rows report virtual
moves against the 2(n-1) budget, plus tree-level dispersion (smallest
pairwise tree distance after deployment).
"""

from __future__ import annotations

import random

from repro.embedding.deploy import deploy_on_graph, deploy_on_tree
from repro.embedding.general import random_connected_graph
from repro.embedding.tree import path_tree, random_tree, star_tree

from benchmarks.conftest import report

TREES = {
    "path(32)": lambda rng: path_tree(32),
    "star(32)": lambda rng: star_tree(32),
    "random(32)": lambda rng: random_tree(32, rng),
}
AGENT_NODES = [1, 6, 11, 16, 21, 26]
ALGORITHMS = ("known_k_full", "known_k_logspace", "unknown")


def test_tree_deployment_all_shapes(benchmark):
    def run():
        rows = []
        rng = random.Random(10)
        for name, build in TREES.items():
            tree = build(rng)
            for algorithm in ALGORITHMS:
                outcome = deploy_on_tree(tree, AGENT_NODES, algorithm=algorithm)
                rows.append((name, algorithm, tree, outcome))
        return rows

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "tree": name,
            "algorithm": algorithm,
            "virtual n": outcome.ring.size,
            "k": len(AGENT_NODES),
            "virtual moves": outcome.virtual.total_moves,
            "moves/(k*2(n-1))": round(
                outcome.virtual.total_moves
                / (len(AGENT_NODES) * outcome.ring.size),
                2,
            ),
            "min tree dist": outcome.min_tree_distance,
            "distinct nodes": outcome.distinct_tree_nodes,
            "uniform (virtual)": outcome.ok,
        }
        for name, algorithm, tree, outcome in measured
    ]
    report(
        "E17 §5 - deployment on trees via the Euler-tour virtual ring "
        "[paper: asymptotically equal moves, factor 2(n-1)/n]",
        rows,
    )
    for _, _, _, outcome in measured:
        assert outcome.ok
        assert outcome.distinct_tree_nodes >= len(AGENT_NODES) // 2


def test_graph_deployment(benchmark):
    def run():
        rng = random.Random(11)
        graph = random_connected_graph(24, 12, rng)
        return deploy_on_graph(graph, [1, 5, 9, 13], algorithm="known_k_full")

    outcome = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "E17 §5 - deployment on a general graph via BFS spanning tree",
        [
            {
                "graph n": 24,
                "virtual n": outcome.ring.size,
                "k": 4,
                "virtual moves": outcome.virtual.total_moves,
                "min tree dist": outcome.min_tree_distance,
                "uniform (virtual)": outcome.ok,
            }
        ],
    )
    assert outcome.ok
