"""E4/E16 — Table 1, Result 4: Algorithms 4-6 (no knowledge, relaxed).

Paper claims for initial symmetry degree l: memory O((k/l) log(n/l)),
time O(n/l), moves O(kn/l) — the algorithm adapts to the symmetry of
the initial configuration.  The l-sweep fixes (n, k) and doubles l;
every measured quantity should roughly halve.  The n-sweep at l = 1
checks the worst-case envelope (memory O(k log n), time O(n), moves
O(kn), with the paper's x14 move constant).
"""

from __future__ import annotations

import random

from repro.analysis.complexity import loglog_slope
from repro.experiments.runner import run_experiment
from repro.experiments.table1 import symmetry_placement
from repro.ring.placement import random_placement

from benchmarks.conftest import report

ALGO = "unknown"
L_SWEEP = [1, 2, 4, 8]
FIXED_N = 240
FIXED_K = 16
N_SWEEP = [60, 120, 240, 480]


def test_result4_adaptivity_in_symmetry_degree(benchmark):
    def sweep():
        return [
            run_experiment(
                ALGO,
                symmetry_placement(FIXED_N, FIXED_K, degree, seed=6),
                memory_audit_interval=1,
            )
            for degree in L_SWEEP
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slope = loglog_slope(L_SWEEP, [r.total_moves for r in results])
    rows = [
        {
            "n": FIXED_N,
            "k": FIXED_K,
            "l": r.placement.symmetry_degree,
            "total_moves": r.total_moves,
            "ideal_time": r.ideal_time,
            "memory_bits": r.max_memory_bits,
            "moves*l/kn": round(
                r.total_moves
                * r.placement.symmetry_degree
                / (FIXED_K * FIXED_N),
                2,
            ),
            "uniform": r.ok,
        }
        for r in results
    ]
    report(
        "E4/E16 Result 4 (Algs. 4-6) - adaptivity in l  [paper: O(kn/l) moves, "
        "O(n/l) time, O((k/l) log(n/l)) memory]",
        rows,
        notes=f"log-log slope of moves vs l = {slope:.2f} (expect ~ -1.0)",
    )
    assert all(r.ok for r in results)
    assert -1.3 <= slope <= -0.7
    # Time and memory shrink monotonically with l.
    times = [r.ideal_time for r in results]
    memories = [r.max_memory_bits for r in results]
    assert times == sorted(times, reverse=True)
    assert memories == sorted(memories, reverse=True)


def test_result4_worst_case_envelope(benchmark):
    def sweep():
        rng = random.Random(7)
        return [
            run_experiment(ALGO, random_placement(n, FIXED_K, rng)) for n in N_SWEEP
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slope = loglog_slope(N_SWEEP, [r.total_moves for r in results])
    rows = [
        {
            "n": r.placement.ring_size,
            "k": FIXED_K,
            "l": r.placement.symmetry_degree,
            "total_moves": r.total_moves,
            "moves/(14kn)": round(
                r.total_moves / (14 * FIXED_K * r.placement.ring_size), 2
            ),
            "ideal_time": r.ideal_time,
            "time/n": round(r.ideal_time / r.placement.ring_size, 2),
            "uniform": r.ok,
        }
        for r in results
    ]
    report(
        "E4 Result 4 (Algs. 4-6) - worst case (l=1)  [paper: O(kn) moves "
        "within the 14n-per-agent budget, O(n) time]",
        rows,
        notes=f"log-log slope of moves vs n = {slope:.2f} (expect ~1.0)",
    )
    assert all(r.ok for r in results)
    assert 0.7 <= slope <= 1.3
    assert all(
        r.total_moves <= 14 * FIXED_K * r.placement.ring_size for r in results
    )
    assert all(r.ideal_time <= 20 * r.placement.ring_size for r in results)
