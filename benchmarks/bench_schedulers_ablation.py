"""Ablations: scheduler families and engine design choices.

Two design-choice studies DESIGN.md calls out:

* **Scheduler ablation** — the algorithms must behave identically
  (same final configuration, same move totals for the deterministic
  Algorithm 1) under synchronous, random, laggard and burst schedules;
  only wall-clock differs.  This is the executable form of the paper's
  "any fair schedule" quantifier.
* **Memory-audit ablation** — auditing agent memory after every atomic
  action (interval=1) versus sampled auditing (interval=16, the
  default): measured high-water bits must agree while runtime drops.
"""

from __future__ import annotations

import random

from repro.experiments.runner import build_engine, run_experiment
from repro.ring.placement import random_placement
from repro.sim.scheduler import (
    BurstScheduler,
    LaggardScheduler,
    RandomScheduler,
    SynchronousScheduler,
)

from benchmarks.conftest import report

N, K = 128, 8


def _schedulers():
    return {
        "synchronous": SynchronousScheduler(),
        "random": RandomScheduler(seed=12),
        "laggard": LaggardScheduler([0, 1], patience=80, seed=12),
        "burst": BurstScheduler(burst=40, seed=12),
    }


def test_scheduler_ablation(benchmark):
    placement = random_placement(N, K, random.Random(13))

    def run():
        return {
            name: run_experiment("known_k_full", placement, scheduler=scheduler)
            for name, scheduler in _schedulers().items()
        }

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "scheduler": name,
            "total_moves": result.total_moves,
            "ideal_time": result.ideal_time if result.ideal_time else "-",
            "final positions equal": result.final_positions
            == results["synchronous"].final_positions,
            "uniform": result.ok,
        }
        for name, result in results.items()
    ]
    report(
        "Ablation - scheduler families (Algorithm 1, same placement) "
        "[model: correctness under any fair schedule]",
        rows,
        notes="deterministic algorithm: identical outcome under every adversary",
    )
    baseline = results["synchronous"]
    for result in results.values():
        assert result.ok
        assert result.final_positions == baseline.final_positions
        assert result.total_moves == baseline.total_moves


def test_memory_audit_ablation(benchmark):
    placement = random_placement(N, K, random.Random(14))

    def run():
        outcomes = {}
        for interval in (1, 16, 64):
            engine = build_engine(
                "known_k_full", placement, memory_audit_interval=interval
            )
            engine.run()
            outcomes[interval] = engine.metrics.max_memory_bits
        return outcomes

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "audit interval": interval,
            "max_memory_bits": bits,
            "matches interval=1": bits == outcomes[1],
        }
        for interval, bits in outcomes.items()
    ]
    report(
        "Ablation - memory audit interval (sampling vs exact high-water)",
        rows,
        notes="distance arrays only grow, so sampled audits find the same peak",
    )
    assert outcomes[16] == outcomes[1]
    assert outcomes[64] == outcomes[1]
