"""E2 — Table 1, Result 2: Algorithms 2+3 (knowledge of k, O(log n) memory).

Paper claims: memory O(log n) (independent of k), ideal time
O(n log k), total moves O(kn).  The k-sweep shows memory staying flat
while Algorithm 1's grows; the n-sweep checks time stays within
n * (ceil(log2 k) + c); the moves sweep checks the O(kn) envelope.
"""

from __future__ import annotations

import math
import random

from repro.analysis.complexity import loglog_slope
from repro.experiments.runner import run_experiment
from repro.ring.placement import random_placement

from benchmarks.conftest import report

ALGO = "known_k_logspace"
N_SWEEP = [64, 128, 256, 512]
K_SWEEP = [4, 8, 16, 32]
FIXED_K = 8
FIXED_N = 256


def test_result2_memory_independent_of_k(benchmark):
    def sweep():
        rng = random.Random(3)
        rows = []
        for k in K_SWEEP:
            placement = random_placement(FIXED_N, k, rng)
            logspace = run_experiment(ALGO, placement, memory_audit_interval=1)
            full = run_experiment("known_k_full", placement, memory_audit_interval=1)
            rows.append((k, logspace, full))
        return rows

    measured = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        {
            "n": FIXED_N,
            "k": k,
            "logspace_bits": logspace.max_memory_bits,
            "alg1_bits": full.max_memory_bits,
            "uniform": logspace.ok,
        }
        for k, logspace, full in measured
    ]
    spread = max(r.max_memory_bits for _, r, _ in measured) - min(
        r.max_memory_bits for _, r, _ in measured
    )
    report(
        "E2 Result 2 (Algs. 2+3) - memory vs k  [paper: O(log n), flat in k]",
        rows,
        notes=f"logspace spread over k: {spread} bits (Alg. 1 grows ~linearly)",
    )
    assert all(r.ok for _, r, _ in measured)
    # Flat in k: within a couple of counter-widths across an 8x k range.
    assert spread <= 24
    # And strictly below Algorithm 1 at the largest k.
    _, logspace_big, full_big = measured[-1]
    assert logspace_big.max_memory_bits < full_big.max_memory_bits / 2


def test_result2_time_is_n_log_k(benchmark):
    def sweep():
        rng = random.Random(4)
        return [
            run_experiment(ALGO, random_placement(n, FIXED_K, rng)) for n in N_SWEEP
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slope = loglog_slope(N_SWEEP, [r.ideal_time for r in results])
    rows = [
        {
            "n": r.placement.ring_size,
            "k": FIXED_K,
            "ideal_time": r.ideal_time,
            "time/(n log k)": round(
                r.ideal_time
                / (r.placement.ring_size * math.log2(FIXED_K)),
                2,
            ),
            "uniform": r.ok,
        }
        for r in results
    ]
    report(
        "E2 Result 2 (Algs. 2+3) - time vs n  [paper: O(n log k)]",
        rows,
        notes=f"log-log slope vs n = {slope:.2f} (expect ~1.0 at fixed k)",
    )
    assert all(r.ok for r in results)
    assert 0.7 <= slope <= 1.3
    bound = math.ceil(math.log2(FIXED_K)) + 3
    assert all(
        r.ideal_time <= bound * r.placement.ring_size + 10 for r in results
    )


def test_result2_moves_scale_with_kn(benchmark):
    def sweep():
        rng = random.Random(5)
        return [
            run_experiment(ALGO, random_placement(FIXED_N, k, rng)) for k in K_SWEEP
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    slope = loglog_slope(K_SWEEP, [r.total_moves for r in results])
    rows = [
        {
            "n": FIXED_N,
            "k": r.placement.agent_count,
            "total_moves": r.total_moves,
            "moves/kn": round(
                r.total_moves / (r.placement.agent_count * FIXED_N), 2
            ),
            "uniform": r.ok,
        }
        for r in results
    ]
    report(
        "E2 Result 2 (Algs. 2+3) - moves vs k  [paper: O(kn)]",
        rows,
        notes=f"log-log slope = {slope:.2f} (expect ~1.0; constant below 4)",
    )
    assert all(r.ok for r in results)
    assert all(
        r.total_moves <= 4 * r.placement.agent_count * FIXED_N for r in results
    )
