"""E5/E6 — Theorems 1-2 / Figure 3: Omega(kn) moves, Omega(n) time.

Quarter-packed configurations force (k/4)(n/4) total moves for any
algorithm.  We measure, per (n, k): the explicit kn/16 floor, the exact
omniscient optimum, and every algorithm's total — the ratio
algorithm/optimum stays bounded (the paper's asymptotic optimality),
and measured ideal time stays within a constant of the Omega(n) floor.
"""

from __future__ import annotations

from repro.experiments.lower_bound import quarter_sweep
from repro.experiments.runner import run_experiment
from repro.ring.placement import quarter_packed_placement

from benchmarks.conftest import report

SIZES = [(64, 8), (128, 16), (256, 16)]
ALGORITHMS = ("known_k_full", "known_k_logspace", "unknown")


def test_moves_against_lower_bounds(benchmark):
    rows_raw = benchmark.pedantic(
        quarter_sweep, args=(SIZES, ALGORITHMS), rounds=1, iterations=1
    )
    rows = []
    for row in rows_raw:
        entry = {
            "n": row.ring_size,
            "k": row.agent_count,
            "kn/16 floor": row.quarter_floor,
            "optimal": row.optimal_moves,
        }
        for algorithm in ALGORITHMS:
            entry[f"{algorithm}"] = row.algorithm_moves[algorithm]
            entry[f"{algorithm}/opt"] = round(row.ratio(algorithm), 1)
        rows.append(entry)
    report(
        "E5 Theorem 1 / Fig. 3 - total moves vs Omega(kn) lower bound "
        "(quarter-packed configurations)",
        rows,
        notes="knowledge-of-k algorithms stay within ~8x of the exact optimum; "
        "the relaxed algorithm pays its 14n-per-agent constant",
    )
    for row in rows_raw:
        assert row.optimal_moves >= row.quarter_floor
        for algorithm in ("known_k_full", "known_k_logspace"):
            assert row.ratio(algorithm) <= 12.0
        assert row.ratio("unknown") <= 60.0


def test_time_against_omega_n(benchmark):
    def run():
        return [
            (n, k, run_experiment(algorithm, quarter_packed_placement(n, k)))
            for n, k in SIZES[:2]
            for algorithm in ALGORITHMS
        ]

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "n": n,
            "k": k,
            "algorithm": result.algorithm,
            "ideal_time": result.ideal_time,
            "time/n": round(result.ideal_time / n, 2),
            "uniform": result.ok,
        }
        for n, k, result in measured
    ]
    report(
        "E6 Theorem 2 - ideal time vs the Omega(n) lower bound",
        rows,
        notes="time/n stays within a small constant for every algorithm",
    )
    for n, _, result in measured:
        assert result.ok
        assert result.ideal_time >= n // 4  # must at least cross the ring
        assert result.ideal_time <= 20 * n
