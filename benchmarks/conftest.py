"""Benchmark-suite plumbing: experiment tables in the terminal summary.

Every benchmark registers the rows it measured via :func:`report`;
``pytest_terminal_summary`` prints them after the pytest-benchmark
tables (the terminal summary is never captured, so the paper-level
tables always reach the console and ``bench_output.txt``).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

_REPORTS: List[Tuple[str, str]] = []


def report(title: str, rows: Iterable[Dict[str, object]], notes: str = "") -> None:
    """Register a formatted experiment table for the terminal summary."""
    from repro.experiments.table1 import format_rows

    body = format_rows(list(rows))
    text = body if not notes else f"{body}\n  note: {notes}"
    _REPORTS.append((title, text))


def report_lines(title: str, lines: Sequence[str]) -> None:
    """Register free-form lines (for non-tabular experiment output)."""
    _REPORTS.append((title, "\n".join(lines)))


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _REPORTS:
        return
    write = terminalreporter.write_line
    write("")
    write("=" * 78)
    write("PAPER EXPERIMENT TABLES (see EXPERIMENTS.md for the index)")
    write("=" * 78)
    for title, text in _REPORTS:
        write("")
        write(f"--- {title} ---")
        for line in text.splitlines():
            write(line)
    write("")
