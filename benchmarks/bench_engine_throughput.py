"""Engine micro-benchmarks: atomic actions per second.

Not a paper table — operational data for users sizing their own sweeps.
pytest-benchmark timing is meaningful here (multiple rounds).

Besides the terminal tables, this module writes ``BENCH_engine.json`` at
the repo root: one machine-readable entry per case (steps, mean seconds,
steps/second) so later PRs can track the throughput trajectory.  The
large cases (n=1024, k=32) exist precisely for that trajectory: the
single-agent-per-batch ``RandomScheduler`` case is where a full O(k)
enabled-set rescan per step hurts most, and where the incremental
enabledness engine shows its gain.
"""

from __future__ import annotations

import json
import random
import time
from pathlib import Path
from typing import Callable, Dict

import pytest

from repro.experiments.runner import build_engine
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.ring.placement import random_placement
from repro.sim.scheduler import RandomScheduler

from benchmarks.conftest import report_lines

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
_CASES: Dict[str, Dict[str, object]] = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Merge every recorded case into BENCH_engine.json after the module.

    Read-modify-write so a partial run (``-k large_random``) refreshes
    only the cases it measured instead of erasing the tracked history.
    """
    yield
    if not _CASES:
        return
    cases: Dict[str, Dict[str, object]] = {}
    if _JSON_PATH.exists():
        try:
            cases = json.loads(_JSON_PATH.read_text()).get("cases", {})
        except (json.JSONDecodeError, AttributeError):
            cases = {}
    cases.update(_CASES)
    payload = {"schema": 1, "unit": "atomic actions", "cases": cases}
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _timed(make_engine: Callable[[], object]):
    """Return a zero-arg callable running one engine to quiescence.

    The callable returns ``(steps, wall_seconds)`` — its own clock, so
    the JSON trajectory does not depend on pytest-benchmark internals.
    """

    def runner():
        engine = make_engine()
        start = time.perf_counter()
        engine.run()
        return engine.steps, time.perf_counter() - start

    return runner


def _record_case(
    name: str, algorithm: str, n: int, k: int, scheduler: str, steps: int, seconds: float
) -> None:
    _CASES[name] = {
        "algorithm": algorithm,
        "n": n,
        "k": k,
        "scheduler": scheduler,
        "steps": steps,
        "mean_seconds": round(seconds, 6),
        "steps_per_second": round(steps / seconds) if seconds > 0 else None,
    }


def _bench_run(
    benchmark, name: str, algorithm: str, n: int, k: int, seed: int, scheduler: str
):
    def make_engine():
        placement = random_placement(n, k, random.Random(seed))
        sched = RandomScheduler(seed=seed) if scheduler == "random" else None
        return build_engine(algorithm, placement, scheduler=sched)

    steps, seconds = benchmark(_timed(make_engine))
    _record_case(name, algorithm, n, k, scheduler, steps, seconds)
    report_lines(
        f"Engine throughput - {name}",
        [
            f"atomic actions per run: {steps}",
            f"throughput: {steps / seconds:,.0f} actions/s",
        ],
    )
    assert steps > 0
    return steps


def test_throughput_known_k_full(benchmark):
    _bench_run(benchmark, "known_k_full n=128 k=8 sync", "known_k_full", 128, 8, 20, "sync")


def test_throughput_logspace(benchmark):
    _bench_run(benchmark, "known_k_logspace n=128 k=8 sync", "known_k_logspace", 128, 8, 21, "sync")


def test_throughput_unknown(benchmark):
    _bench_run(benchmark, "unknown n=64 k=6 sync", "unknown", 64, 6, 22, "sync")


def test_throughput_large_sync(benchmark):
    # Large instance, synchronous batches: k agents per batch.
    _bench_run(benchmark, "known_k_full n=1024 k=32 sync", "known_k_full", 1024, 32, 7, "sync")


#: Seed-engine throughput for the case below, measured on the reference
#: container before the incremental enabledness rework.  Kept as the
#: regression floor: 2x leaves headroom for slower machines while still
#: failing loudly if the engine ever falls back to the O(k)-rescan
#: plateau (the incremental engine measures ~4x).
_SEED_RANDOM_CASE_ACTIONS_PER_SECOND = 70_000


def test_throughput_large_random_scheduler(benchmark):
    # The acceptance case for the incremental enabledness engine: one
    # agent per batch means a per-batch rescan costs O(k) per atomic
    # action; the live enabled set makes this O(1).
    _bench_run(
        benchmark, "known_k_full n=1024 k=32 random", "known_k_full", 1024, 32, 7, "random"
    )
    case = _CASES["known_k_full n=1024 k=32 random"]
    case["seed_baseline_steps_per_second"] = _SEED_RANDOM_CASE_ACTIONS_PER_SECOND
    assert case["steps_per_second"] > 2 * _SEED_RANDOM_CASE_ACTIONS_PER_SECOND


def test_throughput_sweep_grid(benchmark):
    # End-to-end sweep throughput through the parallel runner machinery
    # (serial here: benchmark timings must not include pool forking).
    spec = SweepSpec(
        algorithms=("known_k_full",),
        grid=((256, 16), (512, 16)),
        schedulers=("sync", "random"),
        base_seed=3,
    )

    def runner():
        start = time.perf_counter()
        rows = run_sweep(spec, processes=1)
        return rows, time.perf_counter() - start

    rows, seconds = benchmark.pedantic(runner, rounds=1, iterations=1)
    assert all(row["uniform"] for row in rows)
    total_moves = sum(int(row["total_moves"]) for row in rows)
    _record_case(
        "sweep 2x(n,k) x 2 schedulers",
        "known_k_full",
        512,
        16,
        "sync+random",
        total_moves,
        seconds,
    )
    report_lines(
        "Engine throughput - sweep grid (4 cells)",
        [f"cells: {len(rows)}", f"wall: {seconds:.3f}s"],
    )
