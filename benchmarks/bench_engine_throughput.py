"""Engine micro-benchmarks: atomic actions per second.

Not a paper table — operational data for users sizing their own sweeps.
pytest-benchmark timing is meaningful here (multiple rounds).
"""

from __future__ import annotations

import random

from repro.experiments.runner import build_engine
from repro.ring.placement import random_placement

from benchmarks.conftest import report_lines


def _run_once(algorithm: str, n: int, k: int, seed: int) -> int:
    placement = random_placement(n, k, random.Random(seed))
    engine = build_engine(algorithm, placement)
    engine.run()
    return engine.steps


def test_throughput_known_k_full(benchmark):
    steps = benchmark(lambda: _run_once("known_k_full", 128, 8, 20))
    report_lines(
        "Engine throughput - Algorithm 1 (n=128, k=8)",
        [f"atomic actions per run: {steps}"],
    )
    assert steps > 0


def test_throughput_logspace(benchmark):
    steps = benchmark(lambda: _run_once("known_k_logspace", 128, 8, 21))
    assert steps > 0


def test_throughput_unknown(benchmark):
    steps = benchmark(lambda: _run_once("unknown", 64, 6, 22))
    assert steps > 0
