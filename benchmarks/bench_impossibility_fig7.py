"""E3 — Theorem 5 / Figure 7: impossibility without knowledge of k or n.

The construction expands a solved ring R (n, k, gap d) into R' with
2qn + 2n nodes and kq + k agents.  Lemma 1 predicts perfect local
indistinguishability for the window nodes while the base execution
runs; the deceived agents consequently halt at spacing d instead of
the required 2d, violating uniform deployment — for *both*
knowledge-of-k algorithms playing the role of "the" algorithm.
"""

from __future__ import annotations

from repro.experiments.impossibility import (
    demonstrate_impossibility,
    lemma1_window_agreement,
)
from repro.ring.placement import placement_from_distances

from benchmarks.conftest import report, report_lines

BASE = placement_from_distances((5, 7, 4, 8))  # n = 24, k = 4, d = 6


def test_impossibility_construction(benchmark):
    def run():
        return {
            algorithm: demonstrate_impossibility(BASE, algorithm=algorithm)
            for algorithm in ("known_k_full", "known_k_logspace")
        }

    outcomes = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    for algorithm, outcome in outcomes.items():
        rows.append(
            {
                "algorithm": algorithm,
                "base n,k": f"{outcome.base.ring_size},{outcome.base.agent_count}",
                "T(E_R)": outcome.rounds_in_base,
                "q": outcome.q,
                "R' n,k": (
                    f"{outcome.expanded.ring_size},{outcome.expanded.agent_count}"
                ),
                "d": outcome.base_gap,
                "required 2d": outcome.expanded_gap,
                "window gaps": str(outcome.observed_prefix_gaps),
                "uniform on R'": outcome.report.ok,
            }
        )
    report(
        "E3 Theorem 5 / Fig. 7 - deceived agents on the expanded ring R'",
        rows,
        notes="agents halt at spacing d (not 2d): termination detection is "
        "impossible without knowledge, as proven",
    )
    for outcome in outcomes.values():
        assert outcome.failed_as_predicted
        assert all(
            gap != outcome.expanded_gap for gap in outcome.observed_prefix_gaps
        )


def test_lemma1_local_indistinguishability(benchmark):
    agreements = benchmark.pedantic(
        lemma1_window_agreement,
        kwargs={"base": BASE, "rounds": 48},
        rounds=1,
        iterations=1,
    )
    report_lines(
        "E3 Lemma 1 - per-round local-configuration agreement on the window",
        [
            f"rounds checked: {len(agreements)}",
            f"agreement values: min={min(agreements):.3f} max={max(agreements):.3f}",
            "expected: 1.000 for every round t <= T (perfect indistinguishability)",
        ],
    )
    assert all(value == 1.0 for value in agreements)
