"""E1 — Table 1, Result 1: Algorithm 1 (knowledge of k, O(k log n) memory).

Paper claims: memory O(k log n), ideal time O(n), total moves O(kn).
The n-sweep fixes k and checks time ~ n and moves ~ n (slope ~ 1 in
log-log space); the k-sweep fixes n and checks moves ~ k and memory ~ k.
Absolute constants are also asserted (time <= 3n, moves <= 3kn).
"""

from __future__ import annotations

import math

from repro.analysis.complexity import loglog_slope
from repro.experiments.runner import run_experiment
from repro.experiments.sweep import SweepSpec, run_sweep
from repro.ring.placement import random_placement

from benchmarks.conftest import report

import random

ALGO = "known_k_full"
N_SWEEP = [64, 128, 256, 512]
K_SWEEP = [4, 8, 16, 32]
FIXED_K = 8
FIXED_N = 256


def _run_sweep(pairs, seed=1):
    # Through the sweep runner: deterministic per-cell seeds, and the
    # same grid can be re-run in parallel from the CLI (`repro psweep`).
    spec = SweepSpec(
        algorithms=(ALGO,), grid=tuple(pairs), base_seed=seed
    )
    return run_sweep(spec, processes=1)


def test_result1_time_scales_linearly_in_n(benchmark):
    rows = benchmark.pedantic(
        _run_sweep, args=([(n, FIXED_K) for n in N_SWEEP],), rounds=1, iterations=1
    )
    times = [row["ideal_time"] for row in rows]
    slope = loglog_slope(N_SWEEP, times)
    table = [
        {
            "n": row["n"],
            "k": FIXED_K,
            "ideal_time": row["ideal_time"],
            "time/n": round(row["ideal_time"] / row["n"], 2),
            "total_moves": row["total_moves"],
            "uniform": row["uniform"],
        }
        for row in rows
    ]
    report(
        "E1 Result 1 (Alg. 1) - time vs n  [paper: O(n)]",
        table,
        notes=f"log-log slope = {slope:.2f} (expect ~1.0)",
    )
    assert all(row["uniform"] for row in rows)
    assert 0.7 <= slope <= 1.3
    assert all(row["ideal_time"] <= 3 * row["n"] + 5 for row in rows)


def test_result1_moves_scale_linearly_in_k(benchmark):
    rows = benchmark.pedantic(
        _run_sweep, args=([(FIXED_N, k) for k in K_SWEEP],), rounds=1, iterations=1
    )
    moves = [row["total_moves"] for row in rows]
    slope = loglog_slope(K_SWEEP, moves)
    table = [
        {
            "n": FIXED_N,
            "k": row["k"],
            "total_moves": row["total_moves"],
            "moves/kn": round(row["total_moves"] / (row["k"] * FIXED_N), 2),
            "uniform": row["uniform"],
        }
        for row in rows
    ]
    report(
        "E1 Result 1 (Alg. 1) - moves vs k  [paper: O(kn)]",
        table,
        notes=f"log-log slope = {slope:.2f} (expect ~1.0)",
    )
    assert all(row["uniform"] for row in rows)
    assert 0.7 <= slope <= 1.3
    assert all(row["total_moves"] <= 3 * row["k"] * FIXED_N for row in rows)


def test_result1_memory_scales_linearly_in_k(benchmark):
    def sweep():
        rng = random.Random(2)
        return [
            run_experiment(
                ALGO, random_placement(FIXED_N, k, rng), memory_audit_interval=1
            )
            for k in K_SWEEP
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    memory = [r.max_memory_bits for r in results]
    slope = loglog_slope(K_SWEEP, memory)
    rows = [
        {
            "n": FIXED_N,
            "k": r.placement.agent_count,
            "memory_bits": r.max_memory_bits,
            "bits/(k log n)": round(
                r.max_memory_bits
                / (r.placement.agent_count * math.log2(FIXED_N)),
                2,
            ),
        }
        for r in results
    ]
    report(
        "E1 Result 1 (Alg. 1) - memory vs k  [paper: O(k log n)]",
        rows,
        notes=f"log-log slope = {slope:.2f} (expect ~1.0: memory is Theta(k log n))",
    )
    assert 0.6 <= slope <= 1.3
