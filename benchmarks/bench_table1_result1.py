"""E1 — Table 1, Result 1: Algorithm 1 (knowledge of k, O(k log n) memory).

Paper claims: memory O(k log n), ideal time O(n), total moves O(kn).
The n-sweep fixes k and checks time ~ n and moves ~ n (slope ~ 1 in
log-log space); the k-sweep fixes n and checks moves ~ k and memory ~ k.
Absolute constants are also asserted (time <= 3n, moves <= 3kn).
"""

from __future__ import annotations

import math

from repro.analysis.complexity import loglog_slope
from repro.experiments.runner import run_experiment
from repro.ring.placement import random_placement

from benchmarks.conftest import report

import random

ALGO = "known_k_full"
N_SWEEP = [64, 128, 256, 512]
K_SWEEP = [4, 8, 16, 32]
FIXED_K = 8
FIXED_N = 256


def _run_sweep(pairs, seed=1):
    rng = random.Random(seed)
    return [run_experiment(ALGO, random_placement(n, k, rng)) for n, k in pairs]


def test_result1_time_scales_linearly_in_n(benchmark):
    results = benchmark.pedantic(
        _run_sweep, args=([(n, FIXED_K) for n in N_SWEEP],), rounds=1, iterations=1
    )
    times = [r.ideal_time for r in results]
    slope = loglog_slope(N_SWEEP, times)
    rows = [
        {
            "n": r.placement.ring_size,
            "k": FIXED_K,
            "ideal_time": r.ideal_time,
            "time/n": round(r.ideal_time / r.placement.ring_size, 2),
            "total_moves": r.total_moves,
            "uniform": r.ok,
        }
        for r in results
    ]
    report(
        "E1 Result 1 (Alg. 1) - time vs n  [paper: O(n)]",
        rows,
        notes=f"log-log slope = {slope:.2f} (expect ~1.0)",
    )
    assert all(r.ok for r in results)
    assert 0.7 <= slope <= 1.3
    assert all(r.ideal_time <= 3 * r.placement.ring_size + 5 for r in results)


def test_result1_moves_scale_linearly_in_k(benchmark):
    results = benchmark.pedantic(
        _run_sweep, args=([(FIXED_N, k) for k in K_SWEEP],), rounds=1, iterations=1
    )
    moves = [r.total_moves for r in results]
    slope = loglog_slope(K_SWEEP, moves)
    rows = [
        {
            "n": FIXED_N,
            "k": r.placement.agent_count,
            "total_moves": r.total_moves,
            "moves/kn": round(r.total_moves / (r.placement.agent_count * FIXED_N), 2),
            "uniform": r.ok,
        }
        for r in results
    ]
    report(
        "E1 Result 1 (Alg. 1) - moves vs k  [paper: O(kn)]",
        rows,
        notes=f"log-log slope = {slope:.2f} (expect ~1.0)",
    )
    assert all(r.ok for r in results)
    assert 0.7 <= slope <= 1.3
    assert all(
        r.total_moves <= 3 * r.placement.agent_count * FIXED_N for r in results
    )


def test_result1_memory_scales_linearly_in_k(benchmark):
    def sweep():
        rng = random.Random(2)
        return [
            run_experiment(
                ALGO, random_placement(FIXED_N, k, rng), memory_audit_interval=1
            )
            for k in K_SWEEP
        ]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    memory = [r.max_memory_bits for r in results]
    slope = loglog_slope(K_SWEEP, memory)
    rows = [
        {
            "n": FIXED_N,
            "k": r.placement.agent_count,
            "memory_bits": r.max_memory_bits,
            "bits/(k log n)": round(
                r.max_memory_bits
                / (r.placement.agent_count * math.log2(FIXED_N)),
                2,
            ),
        }
        for r in results
    ]
    report(
        "E1 Result 1 (Alg. 1) - memory vs k  [paper: O(k log n)]",
        rows,
        notes=f"log-log slope = {slope:.2f} (expect ~1.0: memory is Theta(k log n))",
    )
    assert 0.6 <= slope <= 1.3
