"""Model-checker throughput: POR reduction and parallel frontier.

The exhaustive checker's scaling story after the packed-encoding + POR
+ parallel rebuild, in three measurements on a pinned n=10, k=3 cell
(the largest instance the verification ladder reports as exhaustively
verified):

* serial full expansion vs sleep-set POR — the asserted >=2x win: POR
  executes fewer than half the transitions while reaching the identical
  state set, so states/second of *verification* roughly doubles;
* the wave-synchronous frontier driver at ``--jobs`` — recorded, and
  asserted only when the host actually has spare cores (a 1-CPU CI
  runner cannot speed up by forking, but the POR ratio above already
  carries the PR's >=2x acceptance bar there);
* the memo footprint of the packed encoding at that size.

Results merge into ``BENCH_engine.json`` so the verified-instance
ceiling and the reduction ratio are tracked PR over PR.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.mc import check_frontier, check_interleavings
from repro.ring.placement import Placement

from benchmarks.conftest import report_lines

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
_CASES: Dict[str, Dict[str, object]] = {}

#: The pinned flagship cell: the largest (n, k) the ladder verifies
#: exhaustively.  8009 canonical states under either mode.
_ALGORITHM = "unknown"
_PLACEMENT = Placement(ring_size=10, homes=(0, 3, 7))
_REQUIRED_IMPROVEMENT = 2.0


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Merge every recorded case into BENCH_engine.json after the module."""
    yield
    if not _CASES:
        return
    cases: Dict[str, Dict[str, object]] = {}
    if _JSON_PATH.exists():
        try:
            cases = json.loads(_JSON_PATH.read_text()).get("cases", {})
        except (json.JSONDecodeError, AttributeError):
            cases = {}
    cases.update(_CASES)
    payload = {"schema": 1, "unit": "atomic actions", "cases": cases}
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def test_por_halves_verification_work(benchmark):
    def run_both():
        start = time.perf_counter()
        full = check_interleavings(
            _ALGORITHM, _PLACEMENT, por=False, stop_at_first=False
        )
        full_seconds = time.perf_counter() - start
        start = time.perf_counter()
        reduced = check_interleavings(_ALGORITHM, _PLACEMENT, stop_at_first=False)
        por_seconds = time.perf_counter() - start
        return full, reduced, full_seconds, por_seconds

    full, reduced, full_seconds, por_seconds = benchmark(run_both)

    # Soundness before speed: identical verdict and state coverage.
    assert full.ok and reduced.ok
    assert reduced.explored == full.explored
    assert reduced.terminal_keys == full.terminal_keys

    reduction = full.transitions / reduced.transitions
    speedup = full_seconds / por_seconds
    assert reduction >= _REQUIRED_IMPROVEMENT, (
        f"POR reduction regressed: {reduction:.2f}x < "
        f"{_REQUIRED_IMPROVEMENT}x on the pinned cell"
    )

    _CASES[f"mc por {_ALGORITHM} n=10 k=3"] = {
        "algorithm": _ALGORITHM,
        "n": _PLACEMENT.ring_size,
        "k": _PLACEMENT.agent_count,
        "homes": list(_PLACEMENT.homes),
        "states": reduced.explored,
        "transitions_full": full.transitions,
        "transitions_por": reduced.transitions,
        "por_transition_reduction": round(reduction, 2),
        "required_improvement": _REQUIRED_IMPROVEMENT,
        "full_seconds": round(full_seconds, 6),
        "por_seconds": round(por_seconds, 6),
        "states_per_second_full": round(full.explored / full_seconds),
        "states_per_second_por": round(reduced.explored / por_seconds),
        "transitions_per_second_full": round(full.transitions / full_seconds),
        "transitions_per_second_por": round(reduced.transitions / por_seconds),
        "wall_clock_speedup": round(speedup, 2),
    }
    report_lines(
        "Model checker - sleep-set POR (pinned n=10 k=3 cell)",
        [
            f"{reduced.explored} states: full {full.transitions} transitions "
            f"({full_seconds:.2f}s), POR {reduced.transitions} "
            f"({por_seconds:.2f}s)",
            f"transition reduction {reduction:.2f}x "
            f"(required >= {_REQUIRED_IMPROVEMENT}x), "
            f"wall-clock speedup {speedup:.2f}x",
        ],
    )


def test_max_verified_instance_and_memo_footprint(benchmark):
    def verify():
        start = time.perf_counter()
        result = check_interleavings(_ALGORITHM, _PLACEMENT)
        return result, time.perf_counter() - start

    result, seconds = benchmark(verify)
    assert result.ok and result.complete
    assert result.memo_bytes > 0

    _CASES[f"mc max-verified {_ALGORITHM} n=10 k=3"] = {
        "algorithm": _ALGORITHM,
        "n": _PLACEMENT.ring_size,
        "k": _PLACEMENT.agent_count,
        "homes": list(_PLACEMENT.homes),
        "states": result.explored,
        "transitions": result.transitions,
        "terminals": result.terminals,
        "max_depth": result.max_depth,
        "memo_bytes": result.memo_bytes,
        "mean_seconds": round(seconds, 6),
        "states_per_second": round(result.explored / seconds),
    }
    report_lines(
        "Model checker - max verified instance",
        [
            f"{_ALGORITHM} n={_PLACEMENT.ring_size} k={_PLACEMENT.agent_count} "
            f"homes={_PLACEMENT.homes}: {result.explored} states, "
            f"{result.transitions} transitions, {result.terminals} terminals "
            f"in {seconds:.2f}s ({result.explored / seconds:,.0f} states/s), "
            f"memo {result.memo_bytes:,} bytes",
        ],
    )


def test_parallel_frontier_jobs(benchmark):
    jobs = min(4, os.cpu_count() or 1)

    def run_both():
        start = time.perf_counter()
        serial = check_frontier(_ALGORITHM, _PLACEMENT, jobs=1)
        serial_seconds = time.perf_counter() - start
        start = time.perf_counter()
        parallel = check_frontier(_ALGORITHM, _PLACEMENT, jobs=jobs)
        parallel_seconds = time.perf_counter() - start
        return serial, parallel, serial_seconds, parallel_seconds

    serial, parallel, serial_seconds, parallel_seconds = benchmark(run_both)

    # Jobs invariance is the frontier driver's core guarantee.
    assert parallel.to_dict() == serial.to_dict()
    speedup = serial_seconds / parallel_seconds
    if (os.cpu_count() or 1) >= 2 and jobs >= 2:
        # With real cores available the fan-out must pay for its
        # serialisation overhead; on a 1-CPU host the POR benchmark
        # above carries the PR's >=2x acceptance requirement instead.
        assert speedup >= 1.2, (
            f"--jobs {jobs} slower than serial on a "
            f"{os.cpu_count()}-core host ({speedup:.2f}x)"
        )

    _CASES[f"mc frontier {_ALGORITHM} n=10 k=3 jobs={jobs}"] = {
        "algorithm": _ALGORITHM,
        "n": _PLACEMENT.ring_size,
        "k": _PLACEMENT.agent_count,
        "jobs": jobs,
        "host_cpus": os.cpu_count(),
        "states": parallel.explored,
        "serial_seconds": round(serial_seconds, 6),
        "parallel_seconds": round(parallel_seconds, 6),
        "parallel_speedup": round(speedup, 2),
        "states_per_second_parallel": round(parallel.explored / parallel_seconds),
    }
    report_lines(
        f"Model checker - frontier driver (jobs={jobs}, "
        f"{os.cpu_count()} host cpu(s))",
        [
            f"serial {serial_seconds:.2f}s vs jobs={jobs} "
            f"{parallel_seconds:.2f}s ({speedup:.2f}x); stats identical",
        ],
    )
