"""Extension benchmarks: footnote-2 variant, arc generalisation, log n memory.

* **known_n_full** (paper footnote 2): knowledge of n must reproduce
  Algorithm 1's behaviour exactly — same final configuration, same
  move totals, same complexity row.
* **Arc-packed sweep** (Theorem 1's "any constant p < 1"): packing the
  agents into a p-arc scales the move floor with (1-p); measured moves
  track the per-instance optimum across p.
* **Log-space memory vs n**: Result 2's O(log n) factor — memory grows
  by a constant number of bits per doubling of n.
"""

from __future__ import annotations

import random

from repro.baselines.optimal import optimal_uniform_plan
from repro.experiments.runner import run_experiment
from repro.ring.placement import arc_packed_placement, random_placement

from benchmarks.conftest import report


def test_known_n_variant_matches_algorithm1(benchmark):
    def run():
        rng = random.Random(30)
        rows = []
        for n, k in [(64, 8), (128, 8), (256, 16)]:
            placement = random_placement(n, k, rng)
            by_k = run_experiment("known_k_full", placement)
            by_n = run_experiment("known_n_full", placement)
            rows.append((placement, by_k, by_n))
        return rows

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "n": placement.ring_size,
            "k": placement.agent_count,
            "alg1 moves": by_k.total_moves,
            "footnote2 moves": by_n.total_moves,
            "same final config": by_k.final_positions == by_n.final_positions,
            "uniform": by_k.ok and by_n.ok,
        }
        for placement, by_k, by_n in measured
    ]
    report(
        "Extension - footnote 2: knowledge of n instead of k "
        "[paper: 'agents with knowledge of n can similarly solve']",
        rows,
    )
    for _, by_k, by_n in measured:
        assert by_k.ok and by_n.ok
        assert by_k.final_positions == by_n.final_positions
        assert by_k.total_moves == by_n.total_moves


def test_arc_fraction_sweep(benchmark):
    def run():
        rows = []
        for fraction in (0.125, 0.25, 0.5, 0.75):
            placement = arc_packed_placement(96, 12, fraction)
            optimal = optimal_uniform_plan(placement).total_moves
            result = run_experiment("known_k_full", placement)
            rows.append((fraction, optimal, result))
        return rows

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "arc fraction p": fraction,
            "n": 96,
            "k": 12,
            "optimal moves": optimal,
            "alg1 moves": result.total_moves,
            "alg1/optimal": round(result.total_moves / max(1, optimal), 1),
            "uniform": result.ok,
        }
        for fraction, optimal, result in measured
    ]
    report(
        "Extension - Theorem 1 generalised: p-arc packing, p in (0,1) "
        "[paper: 'easily extended to any constant p < 1']",
        rows,
        notes="tighter packing raises the optimum; the algorithm tracks it "
        "within a constant",
    )
    optima = [optimal for _, optimal, _ in measured]
    assert optima == sorted(optima, reverse=True)  # looser packing = cheaper
    for _, optimal, result in measured:
        assert result.ok
        assert result.total_moves >= optimal


def test_logspace_memory_grows_logarithmically_in_n(benchmark):
    def run():
        rng = random.Random(31)
        rows = []
        for n in (64, 128, 256, 512, 1024):
            placement = random_placement(n, 8, rng)
            result = run_experiment(
                "known_k_logspace", placement, memory_audit_interval=1
            )
            rows.append((n, result))
        return rows

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "n": n,
            "k": 8,
            "memory_bits": result.max_memory_bits,
            "uniform": result.ok,
        }
        for n, result in measured
    ]
    deltas = [
        measured[i + 1][1].max_memory_bits - measured[i][1].max_memory_bits
        for i in range(len(measured) - 1)
    ]
    report(
        "Extension - Result 2 memory vs n  [paper: O(log n) -> constant "
        "extra bits per doubling of n]",
        rows,
        notes=f"bits added per doubling: {deltas} (a handful of counters widen by 1)",
    )
    assert all(result.ok for _, result in measured)
    # Per doubling, each of the ~19 log(n)-bounded counters may gain at
    # most one bit: the increment stays small and roughly constant.
    assert all(0 <= delta <= 25 for delta in deltas)
