"""Run-store micro-benchmarks: archive overhead and warm-cache speedup.

Two questions decide whether the content-addressed store is free enough
to leave on by default:

* how much does archiving cost per record (put) and how fast can an
  archive be read back (reopen + get), and
* how much faster is a sweep whose cells are already archived — the
  resume path should collapse to hash lookups and JSONL reads, turning
  O(cells) compute into O(new cells).

Results merge into ``BENCH_engine.json`` next to the engine-throughput
cases, so the store's overhead trajectory is tracked PR over PR.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict

import pytest

from repro.experiments.runner import run_experiment
from repro.experiments.sweep import SweepSpec, execute_sweep, expand_cells
from repro.spec import ExperimentSpec, PlacementSpec
from repro.store import RunRecord, RunStore

from benchmarks.conftest import report_lines

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
_CASES: Dict[str, Dict[str, object]] = {}

_RECORDS = 500


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Merge every recorded case into BENCH_engine.json after the module.

    Same read-modify-write contract as ``bench_engine_throughput``: a
    partial run refreshes only the cases it measured.
    """
    yield
    if not _CASES:
        return
    cases: Dict[str, Dict[str, object]] = {}
    if _JSON_PATH.exists():
        try:
            cases = json.loads(_JSON_PATH.read_text()).get("cases", {})
        except (json.JSONDecodeError, AttributeError):
            cases = {}
    cases.update(_CASES)
    payload = {"schema": 1, "unit": "atomic actions", "cases": cases}
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _synthetic_records(count: int) -> list:
    """``count`` distinct records sharing one real result payload.

    The payload is computed once (store I/O is what is being measured,
    not the simulation); hashes are synthesised to make every record a
    distinct put.
    """
    spec = ExperimentSpec(
        algorithm="known_k_full",
        placement=PlacementSpec(kind="random", ring_size=24, agent_count=4, seed=1),
    )
    template = run_experiment(spec).to_record(spec)
    return [
        RunRecord(
            content_hash=f"{index:064x}",
            result=template.result,
            spec=template.spec,
        )
        for index in range(count)
    ]


def test_store_put_throughput(benchmark, tmp_path_factory):
    records = _synthetic_records(_RECORDS)
    counter = iter(range(1_000_000))

    def write_all():
        root = tmp_path_factory.mktemp(f"put{next(counter)}")
        store = RunStore(root)
        start = time.perf_counter()
        for record in records:
            store.put(record)
        return len(store), time.perf_counter() - start

    count, seconds = benchmark(write_all)
    assert count == _RECORDS
    _CASES[f"store put x{_RECORDS}"] = {
        "records": _RECORDS,
        "mean_seconds": round(seconds, 6),
        "records_per_second": round(_RECORDS / seconds) if seconds > 0 else None,
    }
    report_lines(
        "Run store - put",
        [f"{_RECORDS} records in {seconds:.3f}s "
         f"({_RECORDS / seconds:,.0f} records/s)"],
    )


def test_store_reopen_and_get_throughput(benchmark, tmp_path_factory):
    records = _synthetic_records(_RECORDS)
    root = tmp_path_factory.mktemp("get")
    store = RunStore(root)
    for record in records:
        store.put(record)

    def read_all():
        start = time.perf_counter()
        reopened = RunStore(root)  # index scan included: the resume cost
        for record in records:
            reopened.get(record.content_hash)
        return len(reopened), time.perf_counter() - start

    count, seconds = benchmark(read_all)
    assert count == _RECORDS
    _CASES[f"store reopen+get x{_RECORDS}"] = {
        "records": _RECORDS,
        "mean_seconds": round(seconds, 6),
        "records_per_second": round(_RECORDS / seconds) if seconds > 0 else None,
    }
    report_lines(
        "Run store - reopen + get",
        [f"{_RECORDS} records in {seconds:.3f}s "
         f"({_RECORDS / seconds:,.0f} records/s)"],
    )


def test_warm_cache_sweep_speedup(benchmark, tmp_path_factory):
    # The acceptance case for resumable sweeps: a fully archived sweep
    # must collapse to hash lookups — orders of magnitude under the cold
    # run, and never slower than ~10% of it even on noisy machines.
    spec = SweepSpec(
        algorithms=("known_k_full",),
        grid=((128, 8), (256, 16)),
        schedulers=("sync", "random"),
        trials=2,
        base_seed=3,
    )
    root = tmp_path_factory.mktemp("sweep")
    store = RunStore(root)

    start = time.perf_counter()
    cold = execute_sweep(spec, processes=1, store=store)
    cold_seconds = time.perf_counter() - start
    assert cold.executed == len(expand_cells(spec))

    def warm_run():
        start = time.perf_counter()
        outcome = execute_sweep(spec, processes=1, store=store)
        return outcome, time.perf_counter() - start

    warm, warm_seconds = benchmark(warm_run)
    assert warm.executed == 0 and warm.cached == cold.executed
    assert warm.rows == cold.rows
    speedup = cold_seconds / warm_seconds if warm_seconds > 0 else float("inf")
    assert speedup > 10, f"warm sweep only {speedup:.1f}x faster than cold"
    _CASES["sweep warm-cache 8 cells"] = {
        "cells": cold.executed,
        "cold_seconds": round(cold_seconds, 6),
        "mean_seconds": round(warm_seconds, 6),
        "speedup": round(speedup, 1),
    }
    report_lines(
        "Run store - warm-cache sweep",
        [
            f"cold: {cold_seconds:.3f}s for {cold.executed} cells",
            f"warm: {warm_seconds:.3f}s (100% cache hits)",
            f"speedup: {speedup:.0f}x",
        ],
    )


_INDEX_RECORDS = 50_000


def _fabricate_shard(root: Path, count: int) -> list:
    """Write ``count`` records straight into one shard file.

    Bypasses ``put()`` (50k one-line appends would dominate the setup)
    but produces byte-for-byte the lines put() would have written:
    canonical JSON with an ``_ts`` envelope stamp.  The store's tail
    scan discovers and indexes them on first open, exactly like a shard
    inherited from an index-oblivious writer.
    """
    template = _synthetic_records(1)[0].to_dict()
    hashes = [f"{index:064x}" for index in range(count)]
    lines = [
        json.dumps(
            dict(template, content_hash=content_hash, _ts=index + 1),
            sort_keys=True,
            separators=(",", ":"),
        )
        for index, content_hash in enumerate(hashes)
    ]
    root.mkdir(parents=True, exist_ok=True)
    (root / "shard-bench.jsonl").write_text("\n".join(lines) + "\n")
    return hashes


def test_indexed_open_and_lookup_vs_scan(benchmark, tmp_path_factory):
    # The acceptance case for the SQLite secondary index: once built,
    # a cold open + point lookup must beat the full-shard scan the
    # memory backend pays on every open by >= 10x at ~50k records.
    root = tmp_path_factory.mktemp("indexed")
    hashes = _fabricate_shard(root, _INDEX_RECORDS)
    target = hashes[len(hashes) // 2]

    start = time.perf_counter()
    store = RunStore(root)  # first open: builds <root>/index.sqlite
    build_seconds = time.perf_counter() - start
    assert len(store) == _INDEX_RECORDS
    store.close()

    def scan_open_and_get():
        start = time.perf_counter()
        scanned = RunStore(root, index="memory")
        record = scanned.get(target)
        scanned.close()
        return record, time.perf_counter() - start

    scan_seconds = min(scan_open_and_get()[1] for _ in range(3))

    def indexed_open_and_get():
        start = time.perf_counter()
        indexed = RunStore(root)
        record = indexed.get(target)
        elapsed = time.perf_counter() - start
        indexed.close()
        return record, elapsed

    record, indexed_seconds = benchmark(indexed_open_and_get)
    assert record.content_hash == target
    speedup = (
        scan_seconds / indexed_seconds if indexed_seconds > 0 else float("inf")
    )
    assert speedup >= 10, (
        f"indexed open+get only {speedup:.1f}x faster than scan "
        f"({indexed_seconds:.4f}s vs {scan_seconds:.4f}s)"
    )
    _CASES[f"store indexed open+get x{_INDEX_RECORDS}"] = {
        "records": _INDEX_RECORDS,
        "index_build_seconds": round(build_seconds, 6),
        "scan_seconds": round(scan_seconds, 6),
        "mean_seconds": round(indexed_seconds, 6),
        "speedup": round(speedup, 1),
    }
    report_lines(
        "Run store - indexed open + point lookup",
        [
            f"{_INDEX_RECORDS} records, one-time index build: "
            f"{build_seconds:.2f}s",
            f"scan backend (open+get): {scan_seconds:.3f}s",
            f"sqlite index (open+get): {indexed_seconds:.4f}s",
            f"speedup: {speedup:.0f}x",
        ],
    )
