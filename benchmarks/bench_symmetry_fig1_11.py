"""E7/E13/E15 — the paper's exact figure configurations, end to end.

* Figure 1: symmetry degrees of the two example rings (l = 1 and l = 2).
* Figure 9: the n = 27, k = 9 ring with a misleading (1,3)^4
  subsequence — the misestimating agent is corrected during patrol.
* Figure 11: the (6,2)-node periodic ring — all agents estimate the
  fundamental size N = 6, move 12N = 72 times, and still deploy
  uniformly.

All three uniform-deployment algorithms are run on every figure
configuration (Result rows show moves/time per algorithm).
"""

from __future__ import annotations

from repro.analysis.sequences import symmetry_degree
from repro.experiments.runner import build_engine, run_experiment
from repro.ring.placement import periodic_placement, placement_from_distances

from benchmarks.conftest import report, report_lines

FIGURE_CONFIGS = {
    "Fig.1a (l=1)": placement_from_distances((1, 4, 2, 1, 2, 2)),
    "Fig.1b (l=2)": placement_from_distances((1, 2, 3, 1, 2, 3)),
    "Fig.9 (n=27)": placement_from_distances((11, 1, 3, 1, 3, 1, 3, 1, 3)),
    "Fig.11 (6,2)": periodic_placement((1, 2, 3), 2),
}
ALGORITHMS = ("known_k_full", "known_k_logspace", "unknown")


def test_symmetry_degrees_match_figure1(benchmark):
    degrees = benchmark.pedantic(
        lambda: {
            name: symmetry_degree(placement.distances)
            for name, placement in FIGURE_CONFIGS.items()
        },
        rounds=1,
        iterations=1,
    )
    report_lines(
        "E7 Fig. 1 - symmetry degrees of the figure configurations",
        [f"{name}: l = {degree}" for name, degree in degrees.items()],
    )
    assert degrees["Fig.1a (l=1)"] == 1
    assert degrees["Fig.1b (l=2)"] == 2
    assert degrees["Fig.9 (n=27)"] == 1
    assert degrees["Fig.11 (6,2)"] == 2


def test_all_algorithms_on_figure_configs(benchmark):
    def run():
        rows = []
        for name, placement in FIGURE_CONFIGS.items():
            for algorithm in ALGORITHMS:
                result = run_experiment(algorithm, placement)
                rows.append((name, algorithm, result))
        return rows

    measured = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        {
            "figure": name,
            "algorithm": algorithm,
            "n": result.placement.ring_size,
            "k": result.placement.agent_count,
            "l": result.placement.symmetry_degree,
            "total_moves": result.total_moves,
            "ideal_time": result.ideal_time,
            "uniform": result.ok,
        }
        for name, algorithm, result in measured
    ]
    report("E7/E13/E15 - figure configurations x all algorithms", rows)
    assert all(result.ok for _, _, result in measured)


def test_figure11_twelve_circuit_behaviour(benchmark):
    def run():
        engine = build_engine("unknown", FIGURE_CONFIGS["Fig.11 (6,2)"])
        engine.run()
        return engine

    engine = benchmark.pedantic(run, rounds=1, iterations=1)
    estimates = [engine.agent(a).n_est for a in engine.agent_ids]
    totals = [engine.agent(a).nodes for a in engine.agent_ids]
    report_lines(
        "E15 Fig. 11 - (6,2)-node ring: estimates and move counts",
        [
            f"estimated n' per agent: {estimates} (fundamental N = 6, true n = 12)",
            f"total moves per agent: {totals} (12N = 72 plus <= 2N deployment)",
        ],
    )
    assert all(estimate == 6 for estimate in estimates)
    assert all(72 <= total <= 84 for total in totals)
