"""Batch-backend throughput: columnar trials vs serial object trials.

The acceptance case for the columnar engine: one pinned sweep cell
(``known_n_full``, n=1024, k=16, sync — the fused-round sweet spot at
production ring sizes) run as a single B=512 numpy batch must beat the
object engine's per-trial wall clock by **at least 10x**.  The object
baseline is measured on a deterministic sample of the very same specs,
so both sides pay identical placement/scheduler construction costs and
the ratio isolates the execution model.  The batch side takes the best
of two full runs — scheduler noise on a shared machine only ever adds
time, so the minimum is the robust estimate.

Like the other engine benchmarks, the measured cases are merged into
``BENCH_engine.json`` so the speedup trajectory is tracked PR over PR.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List

import pytest

from repro.experiments.runner import run_experiment
from repro.sim.batch import run_batch
from repro.sim.batch.runner import validation_sample
from repro.spec import ExperimentSpec, PlacementSpec

from benchmarks.conftest import report_lines

_JSON_PATH = Path(__file__).resolve().parent.parent / "BENCH_engine.json"
_CASES: Dict[str, Dict[str, object]] = {}

#: the pinned acceptance cell and the floor the batch backend must clear.
_ALGORITHM, _N, _K, _SCHEDULER = "known_n_full", 1024, 16, "sync"
_BATCH_TRIALS = 512
_BATCH_ROUNDS = 2  # best-of: timing noise only ever adds time
_ORACLE_SAMPLE = 8
_REQUIRED_SPEEDUP = 10.0


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    """Merge the measured cases into BENCH_engine.json (read-modify-write,
    same protocol as bench_engine_throughput)."""
    yield
    if not _CASES:
        return
    cases: Dict[str, Dict[str, object]] = {}
    if _JSON_PATH.exists():
        try:
            cases = json.loads(_JSON_PATH.read_text()).get("cases", {})
        except (json.JSONDecodeError, AttributeError):
            cases = {}
    cases.update(_CASES)
    payload = {"schema": 1, "unit": "atomic actions", "cases": cases}
    _JSON_PATH.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")


def _specs(trials: int) -> List[ExperimentSpec]:
    return [
        ExperimentSpec(
            algorithm=_ALGORITHM,
            placement=PlacementSpec(
                kind="random", ring_size=_N, agent_count=_K, seed=9000 + trial
            ),
            scheduler=_SCHEDULER,
            scheduler_seed=(9000 + trial) ^ 0x5DEECE66D,
        )
        for trial in range(trials)
    ]


def test_batch_backend_speedup_pinned_cell(benchmark):
    specs = _specs(_BATCH_TRIALS)

    def batch_run():
        times = []
        for _ in range(_BATCH_ROUNDS):
            start = time.perf_counter()
            results = run_batch(specs)
            times.append(time.perf_counter() - start)
        return results, min(times)

    results, batch_seconds = benchmark.pedantic(
        batch_run, rounds=1, iterations=1
    )
    assert all(result.report.ok for result in results)
    batch_per_trial = batch_seconds / _BATCH_TRIALS

    sample = validation_sample(_BATCH_TRIALS, _ORACLE_SAMPLE)
    start = time.perf_counter()
    for trial in sample:
        run_experiment(specs[trial])
    object_per_trial = (time.perf_counter() - start) / len(sample)

    speedup = object_per_trial / batch_per_trial
    _CASES[f"batch {_ALGORITHM} n={_N} k={_K} {_SCHEDULER} B={_BATCH_TRIALS}"] = {
        "algorithm": _ALGORITHM,
        "n": _N,
        "k": _K,
        "scheduler": _SCHEDULER,
        "batch_trials": _BATCH_TRIALS,
        "batch_seconds_per_trial": round(batch_per_trial, 6),
        "object_seconds_per_trial": round(object_per_trial, 6),
        "speedup_vs_object": round(speedup, 1),
        "required_speedup": _REQUIRED_SPEEDUP,
    }
    report_lines(
        "Batch backend - pinned acceptance cell",
        [
            f"cell: {_ALGORITHM} n={_N} k={_K} {_SCHEDULER}, B={_BATCH_TRIALS}",
            f"object engine: {object_per_trial * 1e3:.3f} ms/trial "
            f"(sample of {len(sample)})",
            f"batch engine:  {batch_per_trial * 1e3:.3f} ms/trial",
            f"speedup: {speedup:.1f}x (floor: {_REQUIRED_SPEEDUP:.0f}x)",
        ],
    )
    assert speedup >= _REQUIRED_SPEEDUP, (
        f"batch backend managed only {speedup:.1f}x over the object engine "
        f"on the pinned cell (floor: {_REQUIRED_SPEEDUP:.0f}x)"
    )
