"""Initial-placement generators (paper Figures 1, 3, 5, 8, 9, 11).

An initial configuration of the model is fully described by the ring size
``n`` and the distinct home nodes of the ``k`` agents.  This module
provides the placement families used throughout the paper:

* :func:`random_placement` — uniformly random distinct homes (the generic
  workload for Table 1 sweeps),
* :func:`equidistant_placement` — an already-uniform configuration
  (symmetry degree ``l = k``),
* :func:`quarter_packed_placement` — all agents packed into one quarter
  arc, the Theorem 1 / Figure 3 lower-bound configuration,
* :func:`periodic_placement` — ``l`` repetitions of an aperiodic block,
  i.e. a configuration with a chosen symmetry degree (Figures 1b and 11),
* :func:`placement_from_distances` — an explicit distance sequence
  (Figures 5, 8 and 9 use exact sequences from the paper).

All generators return a :class:`Placement`, a small immutable description
consumed by :class:`repro.experiments.runner` and the engine.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.analysis.sequences import (
    distances_from_positions,
    is_periodic,
    minimal_period,
    positions_from_distances,
    symmetry_degree,
)
from repro.errors import ConfigurationError

__all__ = [
    "Placement",
    "random_placement",
    "equidistant_placement",
    "arc_packed_placement",
    "quarter_packed_placement",
    "periodic_placement",
    "placement_from_distances",
    "random_aperiodic_block",
]


@dataclass(frozen=True)
class Placement:
    """An initial configuration: ring size and distinct agent home nodes.

    ``homes`` are listed in ring order starting from the smallest index,
    so ``homes[i]`` is the home of the ``i``-th agent in the paper's
    ordering convention (``a_i`` is the ``i``-th forward agent of
    ``a_0``).
    """

    ring_size: int
    homes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.ring_size <= 0:
            raise ConfigurationError(f"ring size must be positive, got {self.ring_size}")
        if not self.homes:
            raise ConfigurationError("a placement needs at least one agent")
        if len(self.homes) > self.ring_size:
            raise ConfigurationError(
                f"{len(self.homes)} agents do not fit on {self.ring_size} nodes"
            )
        normalised = tuple(sorted(home % self.ring_size for home in self.homes))
        if len(set(normalised)) != len(normalised):
            raise ConfigurationError(f"home nodes are not distinct: {self.homes}")
        object.__setattr__(self, "homes", normalised)

    @property
    def agent_count(self) -> int:
        """Number of agents ``k``."""
        return len(self.homes)

    @property
    def distances(self) -> Tuple[int, ...]:
        """The distance sequence of the configuration, from ``homes[0]``."""
        return distances_from_positions(self.homes, self.ring_size)

    @property
    def symmetry_degree(self) -> int:
        """The paper's ``l``: repetitions of the aperiodic fundamental block."""
        return symmetry_degree(self.distances)

    def describe(self) -> str:
        """One-line human-readable summary used by examples and benches."""
        return (
            f"n={self.ring_size} k={self.agent_count} l={self.symmetry_degree} "
            f"D={self.distances}"
        )


def random_placement(ring_size: int, agent_count: int, rng: random.Random) -> Placement:
    """Return ``agent_count`` uniformly random distinct homes on the ring."""
    if agent_count > ring_size:
        raise ConfigurationError(
            f"{agent_count} agents do not fit on {ring_size} nodes"
        )
    homes = tuple(rng.sample(range(ring_size), agent_count))
    return Placement(ring_size=ring_size, homes=homes)


def equidistant_placement(ring_size: int, agent_count: int) -> Placement:
    """Return an already-uniform configuration (gaps differ by at most one).

    The homes are the canonical uniform targets ``floor(i * n / k)``, so
    the resulting symmetry degree is ``k`` when ``k`` divides ``n``.
    """
    homes = tuple(index * ring_size // agent_count for index in range(agent_count))
    return Placement(ring_size=ring_size, homes=homes)


def quarter_packed_placement(ring_size: int, agent_count: int) -> Placement:
    """Return the Theorem 1 / Figure 3 configuration: agents in one quarter.

    All agents occupy consecutive nodes inside the arc ``[0, n/4)``; a
    quarter of them must travel at least ``n/4`` hops to reach the
    opposite arc, giving the Omega(kn) total-move floor.
    """
    return arc_packed_placement(ring_size, agent_count, arc_fraction=0.25)


def arc_packed_placement(
    ring_size: int, agent_count: int, arc_fraction: float
) -> Placement:
    """Agents packed into one arc of ``arc_fraction * n`` consecutive nodes.

    The generalisation Theorem 1's proof sketches: for any constant
    ``p < 1`` with ``k <= p*n``, packing the agents into a ``p``-arc
    forces Omega(kn) total moves.  ``arc_fraction = 0.25`` recovers the
    Figure 3 quarter configuration.
    """
    if not 0 < arc_fraction < 1:
        raise ConfigurationError(
            f"arc fraction must be in (0, 1), got {arc_fraction}"
        )
    arc = int(ring_size * arc_fraction)
    if agent_count > arc:
        raise ConfigurationError(
            f"{agent_count} agents do not fit in a {arc_fraction:.2f}-arc of "
            f"{ring_size} nodes (need k <= {arc})"
        )
    # Spread the agents evenly across the arc (packing them all at the
    # arc's start would make every fraction equivalent): the remaining
    # (1 - p) fraction of the ring stays empty, which is what forces
    # the Omega(kn) relocation cost.
    homes = tuple(index * arc // agent_count for index in range(agent_count))
    return Placement(ring_size=ring_size, homes=homes)


def periodic_placement(
    block_distances: Sequence[int], repetitions: int
) -> Placement:
    """Return a configuration whose distance sequence is ``block ^ repetitions``.

    ``block_distances`` must be aperiodic so the resulting symmetry degree
    is exactly ``repetitions`` (Figure 1b: block ``(1, 2, 3)`` with
    ``repetitions = 2``; Figure 11: a (6, 2)-node ring).
    """
    block = tuple(block_distances)
    if repetitions <= 0:
        raise ConfigurationError(f"repetitions must be positive, got {repetitions}")
    if minimal_period(block) != len(block):
        raise ConfigurationError(
            f"block {block} is itself periodic; symmetry degree would exceed "
            f"{repetitions}"
        )
    distances = block * repetitions
    homes = positions_from_distances(distances)
    return Placement(ring_size=sum(distances), homes=tuple(homes))


def placement_from_distances(
    distances: Sequence[int], start: int = 0, ring_size: Optional[int] = None
) -> Placement:
    """Return the configuration realising an explicit distance sequence."""
    homes = positions_from_distances(distances, start=start, ring_size=ring_size)
    return Placement(ring_size=ring_size or sum(distances), homes=tuple(homes))


def random_aperiodic_block(
    block_length: int, max_gap: int, rng: random.Random
) -> Tuple[int, ...]:
    """Return a random aperiodic distance block for :func:`periodic_placement`.

    Gaps are drawn from ``[1, max_gap]`` and re-drawn until the block is
    aperiodic; a block of length >= 2 with at least two distinct values is
    aperiodic with overwhelming probability, so this terminates quickly.
    """
    if block_length <= 0:
        raise ConfigurationError(f"block length must be positive, got {block_length}")
    if max_gap < 1:
        raise ConfigurationError(f"max gap must be at least 1, got {max_gap}")
    if block_length == 1:
        return (rng.randint(1, max_gap),)
    if max_gap == 1:
        raise ConfigurationError(
            "cannot build an aperiodic block of length >= 2 with max gap 1"
        )
    while True:
        block = tuple(rng.randint(1, max_gap) for _ in range(block_length))
        if not is_periodic(block):
            return block
