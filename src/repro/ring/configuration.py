"""Global configuration snapshots ``C = (S, T, M, P, Q)`` (paper Table 2).

The engine exposes a :class:`Configuration` snapshot after every atomic
action (on request) and at quiescence.  Snapshots are immutable value
objects used by the verifier, the trace recorder and the impossibility
experiment (which compares *local configurations* of corresponding nodes
in two rings, Lemma 1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Tuple

__all__ = ["Configuration", "LocalConfiguration"]


@dataclass(frozen=True)
class LocalConfiguration:
    """The local configuration of one node (proof of Theorem 5).

    Lemma 1 compares, node by node, ``(state of v, states of all agents at
    v)``.  Tokens are the node state; agent states are the opaque,
    algorithm-defined state fingerprints of the agents staying at the node
    and of the agents queued on the incoming link, in queue order.
    """

    tokens: int
    staying_states: Tuple[object, ...]
    queued_states: Tuple[object, ...]


@dataclass(frozen=True)
class Configuration:
    """An immutable snapshot of the full 5-tuple ``C = (S, T, M, P, Q)``.

    ``agent_states`` maps agent id to an opaque, algorithm-defined state
    fingerprint (``S``); ``tokens`` is the node token vector (``T``);
    ``inbox_sizes`` counts undelivered messages per agent (``M``);
    ``staying`` maps node to the ids of staying agents in sorted order
    (``P``); ``queues`` maps node to the incoming link queue, head first
    (``Q``).
    """

    ring_size: int
    agent_states: Mapping[int, object]
    tokens: Tuple[int, ...]
    inbox_sizes: Mapping[int, int]
    staying: Mapping[int, Tuple[int, ...]]
    queues: Mapping[int, Tuple[int, ...]]

    def local(self, node: int) -> LocalConfiguration:
        """Return the local configuration of ``node`` (Lemma 1's unit)."""
        staying_states = tuple(
            self.agent_states[agent_id] for agent_id in self.staying.get(node, ())
        )
        queued_states = tuple(
            self.agent_states[agent_id] for agent_id in self.queues.get(node, ())
        )
        return LocalConfiguration(
            tokens=self.tokens[node],
            staying_states=staying_states,
            queued_states=queued_states,
        )

    def occupied_nodes(self) -> Tuple[int, ...]:
        """Nodes with at least one staying agent, in ring order."""
        return tuple(sorted(node for node, agents in self.staying.items() if agents))

    def all_queues_empty(self) -> bool:
        """True when no agent is in transit."""
        return all(not queue for queue in self.queues.values())

    def total_messages_pending(self) -> int:
        """Total undelivered messages across all agents."""
        return sum(self.inbox_sizes.values())
