"""Global configuration snapshots ``C = (S, T, M, P, Q)`` (paper Table 2).

The engine exposes a :class:`Configuration` snapshot after every atomic
action (on request) and at quiescence.  Snapshots are immutable value
objects used by the verifier, the trace recorder, the impossibility
experiment (which compares *local configurations* of corresponding nodes
in two rings, Lemma 1) and the model checker (which memoises visited
states on the snapshot's canonical form).

Canonical form
--------------

Both the nodes and the agents of the model are anonymous: node indices
and agent ids exist only for the simulator's bookkeeping, and every
engine transition is equivariant under rotating the node labels and
permuting the agent ids.  Two configurations related by such a
relabelling are therefore bisimilar — they generate identical future
behaviour.  :meth:`Configuration.canonical` quotients both symmetries
out: it re-describes the state namelessly (per node: tokens, the sorted
multiset of staying-agent payloads, the queue as a payload sequence,
where a payload is the agent's started flag + state fingerprint + inbox
contents) and picks the lexicographically least rotation.  Equality and
hashing delegate to the canonical form, so a ``set`` or ``dict`` of
configurations deduplicates the whole symmetry orbit — exactly what the
model checker's visited-state memo needs.

Link-fault state
----------------

Under an active :class:`repro.ring.faults.LinkSpec` the engine carries
extra state the memo key must see: per-link delay buffers (who is held
on each link and for how many more ticks), phantom duplicate entries
(anonymous ``-1`` payloads in queues and buffers), and the draw
counters (global move ordinal plus spent loss/dup budgets — the future
fault draws are a pure function of these).  ``faults`` holds the
:meth:`repro.ring.network.RingFaults.snapshot` tuple; the canonical and
packed forms fold the buffers into each node's block *inside* the
rotation (they live on concrete links) and append the counters as a
rotation-invariant trailer.  Phantoms encode as an anonymous marker —
they carry no agent state and are interchangeable, so relabelling
soundness is preserved.  Lost agents are deliberately *not* encoded:
they never act again, so two states differing only in which (or whose)
agent was dropped — with the same spent budgets — have isomorphic
futures.  With ``faults=None`` every encoding is byte-identical to the
pre-fault format, so reliable-link memo keys and spilled frontiers are
untouched.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, fields, is_dataclass
from typing import Mapping, Optional, Tuple

__all__ = [
    "Configuration",
    "LocalConfiguration",
    "PACKED_ENCODING_VERSION",
    "pack_value",
]

#: Version tag baked into every packed encoding.  Bump it whenever the
#: byte layout changes so spilled model-checker frontiers keyed on the
#: encoding can never be resumed against an incompatible format.
PACKED_ENCODING_VERSION = "MC1"

#: Canonical-form stand-in for a phantom (duplicated) delivery.  Agent
#: payloads are ``(started, state, inbox)`` tuples, so a bare string can
#: never collide with one; phantoms are anonymous and interchangeable,
#: which is exactly what a shared constant marker expresses.
_PHANTOM_MARKER = "phantom"

#: Packed-form byte for a phantom payload.  Every other payload encoding
#: opens with a :func:`pack_value` type tag (``(`` for the payload
#: tuple), so the single ``*`` parses unambiguously.
_PHANTOM_BYTE = b"*"


def pack_value(value: object, out: bytearray) -> None:
    """Append a deterministic, injective byte encoding of ``value``.

    Every encoded value is *self-delimiting* (type tag + terminator or
    length prefix), so concatenations parse unambiguously — two distinct
    values, or two distinct sequences of values, never share a byte
    string.  Covers the value types agent fingerprints use (``None``,
    bools, ints, strings, bytes, tuples/lists, frozen dataclasses) and
    falls back to tagged ``repr`` for anything exotic, mirroring the
    guarantees :meth:`Configuration.canonical` relies on.
    """
    if value is None:
        out += b"N"
    elif value is True:
        out += b"T"
    elif value is False:
        out += b"F"
    elif isinstance(value, int):
        out += b"I%d;" % value
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out += b"S%d:" % len(raw)
        out += raw
    elif isinstance(value, bytes):
        out += b"B%d:" % len(value)
        out += value
    elif isinstance(value, (tuple, list)):
        out += b"(%d:" % len(value)
        for item in value:
            pack_value(item, out)
        out += b")"
    elif is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__.encode("utf-8")
        out += b"D%d:" % len(name)
        out += name
        dataclass_fields = fields(value)
        out += b"(%d:" % len(dataclass_fields)
        for f in dataclass_fields:
            pack_value(getattr(value, f.name), out)
        out += b")"
    else:
        raw = repr(value).encode("utf-8")
        out += b"R%d:" % len(raw)
        out += raw


@dataclass(frozen=True)
class LocalConfiguration:
    """The local configuration of one node (proof of Theorem 5).

    Lemma 1 compares, node by node, ``(state of v, states of all agents at
    v)``.  Tokens are the node state; agent states are the opaque,
    algorithm-defined state fingerprints of the agents staying at the node
    and of the agents queued on the incoming link, in queue order.
    """

    tokens: int
    staying_states: Tuple[object, ...]
    queued_states: Tuple[object, ...]


@dataclass(frozen=True, eq=False)
class Configuration:
    """An immutable snapshot of the full 5-tuple ``C = (S, T, M, P, Q)``.

    ``agent_states`` maps agent id to an opaque, algorithm-defined state
    fingerprint (``S``); ``tokens`` is the node token vector (``T``);
    ``inbox_sizes`` counts undelivered messages per agent (``M``);
    ``staying`` maps node to the ids of staying agents in sorted order
    (``P``); ``queues`` maps node to the incoming link queue, head first
    (``Q``).

    Two optional refinements make the snapshot an *exact* state key for
    the model checker (engine snapshots always fill them):

    * ``inboxes`` — full undelivered message contents per agent, oldest
      first (``inbox_sizes`` is its lossy projection);
    * ``started`` — whether each agent's protocol generator has run at
      least once (a never-started agent is observably different from a
      started agent whose declared state happens to look initial).

    Equality and ``hash()`` compare canonical forms (see the module
    docstring): configurations equal up to ring rotation and agent
    relabelling compare equal, distinct states never do.
    """

    ring_size: int
    agent_states: Mapping[int, object]
    tokens: Tuple[int, ...]
    inbox_sizes: Mapping[int, int]
    staying: Mapping[int, Tuple[int, ...]]
    queues: Mapping[int, Tuple[int, ...]]
    inboxes: Optional[Mapping[int, Tuple[object, ...]]] = None
    started: Optional[Mapping[int, bool]] = None
    #: ``RingFaults.snapshot()`` tuple ``(buffers, lost, ordinal,
    #: loss_used, dup_used)`` on a faulty ring, else ``None`` (see the
    #: module docstring for how it enters the canonical forms).
    faults: Optional[Tuple[object, ...]] = None
    _canonical: Optional[Tuple[object, ...]] = field(
        default=None, init=False, repr=False
    )
    _packed: Optional[bytes] = field(default=None, init=False, repr=False)
    _slots: Optional[Tuple[int, ...]] = field(default=None, init=False, repr=False)
    _key: Optional[bytes] = field(default=None, init=False, repr=False)

    # ------------------------------------------------------------------
    # Canonical form, equality and hashing
    # ------------------------------------------------------------------

    def _agent_payload(self, agent_id: int) -> Tuple[object, ...]:
        """The nameless description of one agent: flag + state + inbox."""
        started = True if self.started is None else self.started.get(agent_id, True)
        if self.inboxes is not None:
            inbox: object = tuple(self.inboxes.get(agent_id, ()))
        else:
            inbox = self.inbox_sizes.get(agent_id, 0)
        return (started, self.agent_states[agent_id], inbox)

    def canonical(self) -> Tuple[object, ...]:
        """Return the rotation- and relabelling-invariant state key.

        The encoding lists, per node in ring order, ``(tokens, sorted
        staying payloads, queued payloads head-first)`` and selects the
        lexicographically least of the ``n`` rotations.  Payload tuples
        mix ``None``/ints/strings, which Python refuses to order
        directly, so rotations are compared through their ``repr`` — a
        deterministic, injective encoding on the value types agents use
        (ints, bools, strings, ``None``, tuples, frozen dataclasses).
        The result is cached: snapshots are immutable.
        """
        if self._canonical is not None:
            return self._canonical
        payloads = {
            agent_id: self._agent_payload(agent_id) for agent_id in self.agent_states
        }
        faults = self.faults
        if faults is not None:
            buffers, _lost, ordinal, loss_used, dup_used = faults
        nodes = []
        for node in range(self.ring_size):
            staying = tuple(
                sorted(
                    (payloads[agent_id] for agent_id in self.staying.get(node, ())),
                    key=repr,
                )
            )
            queued = tuple(
                payloads[agent_id] if agent_id >= 0 else _PHANTOM_MARKER
                for agent_id in self.queues.get(node, ())
            )
            if faults is None:
                nodes.append((self.tokens[node], staying, queued))
            else:
                # Delay buffers live on concrete links, so they rotate
                # with the ring: fold them into the node entry (payload
                # description + remaining ticks, head first).
                held = tuple(
                    (
                        payloads[payload] if payload >= 0 else _PHANTOM_MARKER,
                        remaining,
                    )
                    for payload, remaining in buffers[node]
                )
                nodes.append((self.tokens[node], staying, queued, held))
        node_reprs = [repr(entry) for entry in nodes]
        size = self.ring_size
        best = min(
            range(size),
            key=lambda r: tuple(node_reprs[r:] + node_reprs[:r]),
        )
        canonical = (size,) + tuple(nodes[best:] + nodes[:best])
        if faults is not None:
            # Rotation-invariant draw counters: the future fault draws
            # are a pure function of these, so states that agree on the
            # ring but diverge on spent budgets must not be merged.
            canonical = canonical + (
                ("link-faults", ordinal, loss_used, dup_used),
            )
        object.__setattr__(self, "_canonical", canonical)
        return canonical

    # ------------------------------------------------------------------
    # Packed canonical encoding (model-checker memo key)
    # ------------------------------------------------------------------

    def packed_layout(self) -> Tuple[bytes, Tuple[int, ...]]:
        """Return ``(packed, slot_to_agent)`` — the compact canonical form.

        ``packed`` is a deterministic byte string invariant under ring
        rotation and agent relabelling: per node (starting from the
        lexicographically least rotation of the byte form) it encodes the
        token count, the staying-agent payloads sorted by their encoded
        bytes, and the queued payloads head first, every piece
        self-delimiting via :func:`pack_value`.  It induces exactly the
        same state partition as :meth:`canonical` — both are injective
        per-node encodings minimised over the same rotation orbit — but
        costs a fraction of the memory of the ``repr``-tuple form.

        ``slot_to_agent`` maps *canonical agent slots* (positions in the
        packed traversal order: per canonical node, staying agents in
        their sorted order, then queued agents head first) back to the
        snapshot's concrete agent ids.  The partial-order reducer stores
        sleep sets in slot coordinates so they survive the relabelling
        quotient; ties between identical payloads are broken by agent id,
        which is sound because tied agents are interchangeable under a
        state automorphism.  Phantom queue entries and buffer-held
        agents are excluded from the slot layout: neither is ever
        schedulable as an agent, so neither can appear in a sleep set
        (link actors are never slept — see :mod:`repro.mc.por`).
        """
        if self._packed is not None:
            assert self._slots is not None
            return self._packed, self._slots
        payload_bytes = {}
        for agent_id in self.agent_states:
            buf = bytearray()
            pack_value(self._agent_payload(agent_id), buf)
            payload_bytes[agent_id] = bytes(buf)
        faults = self.faults
        if faults is not None:
            buffers, _lost, ordinal, loss_used, dup_used = faults
        blocks = []
        node_slots = []
        for node in range(self.ring_size):
            staying_ids = sorted(
                self.staying.get(node, ()),
                key=lambda agent_id: (payload_bytes[agent_id], agent_id),
            )
            queued_ids = tuple(self.queues.get(node, ()))
            block = bytearray()
            block += b"I%d;" % self.tokens[node]
            block += b"P%d:" % len(staying_ids)
            for agent_id in staying_ids:
                block += payload_bytes[agent_id]
            block += b"Q%d:" % len(queued_ids)
            for agent_id in queued_ids:
                if agent_id >= 0:
                    block += payload_bytes[agent_id]
                else:
                    block += _PHANTOM_BYTE
            if faults is not None:
                # Delay buffer of the link into this node, head first:
                # payload encoding + remaining ticks, inside the
                # rotation because buffers sit on concrete links.
                held = buffers[node]
                block += b"F%d:" % len(held)
                for payload, remaining in held:
                    if payload >= 0:
                        block += payload_bytes[payload]
                    else:
                        block += _PHANTOM_BYTE
                    block += b"I%d;" % remaining
            blocks.append(bytes(block))
            node_slots.append(
                tuple(staying_ids)
                + tuple(agent_id for agent_id in queued_ids if agent_id >= 0)
            )
        size = self.ring_size
        best = min(range(size), key=lambda r: blocks[r:] + blocks[:r])
        packed = b"%s;I%d;%s" % (
            PACKED_ENCODING_VERSION.encode("ascii"),
            size,
            b"".join(blocks[best:] + blocks[:best]),
        )
        if faults is not None:
            # Rotation-invariant trailer: the draw counters that fix
            # every future fault decision.  ``F;`` cannot open a node
            # block (those start with ``I``), so the trailer parses
            # unambiguously after the ``size`` blocks.
            packed += b"F;I%d;I%d;I%d;" % (ordinal, loss_used, dup_used)
        slots: Tuple[int, ...] = tuple(
            agent_id
            for node_agents in node_slots[best:] + node_slots[:best]
            for agent_id in node_agents
        )
        object.__setattr__(self, "_packed", packed)
        object.__setattr__(self, "_slots", slots)
        return packed, slots

    def packed(self) -> bytes:
        """The rotation/relabelling-invariant packed byte encoding."""
        return self.packed_layout()[0]

    def canonical_key(self) -> bytes:
        """A 16-byte blake2b digest of :meth:`packed` — the memo key.

        Collisions are cryptographically negligible at 128 bits, so the
        model checker memoises on the digest instead of the full packed
        form, cutting memo memory to a small constant per state.
        """
        if self._key is not None:
            return self._key
        key = hashlib.blake2b(self.packed(), digest_size=16).digest()
        object.__setattr__(self, "_key", key)
        return key

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def local(self, node: int) -> LocalConfiguration:
        """Return the local configuration of ``node`` (Lemma 1's unit).

        Phantom queue entries (duplicated deliveries under link faults)
        carry no agent state and are skipped; Lemma 1 compares reliable
        executions, where no phantom ever exists.
        """
        staying_states = tuple(
            self.agent_states[agent_id] for agent_id in self.staying.get(node, ())
        )
        queued_states = tuple(
            self.agent_states[agent_id]
            for agent_id in self.queues.get(node, ())
            if agent_id >= 0
        )
        return LocalConfiguration(
            tokens=self.tokens[node],
            staying_states=staying_states,
            queued_states=queued_states,
        )

    def occupied_nodes(self) -> Tuple[int, ...]:
        """Nodes with at least one staying agent, in ring order."""
        return tuple(sorted(node for node, agents in self.staying.items() if agents))

    def all_queues_empty(self) -> bool:
        """True when no agent is in transit."""
        return all(not queue for queue in self.queues.values())

    def total_messages_pending(self) -> int:
        """Total undelivered messages across all agents."""
        return sum(self.inbox_sizes.values())
