"""Global configuration snapshots ``C = (S, T, M, P, Q)`` (paper Table 2).

The engine exposes a :class:`Configuration` snapshot after every atomic
action (on request) and at quiescence.  Snapshots are immutable value
objects used by the verifier, the trace recorder, the impossibility
experiment (which compares *local configurations* of corresponding nodes
in two rings, Lemma 1) and the model checker (which memoises visited
states on the snapshot's canonical form).

Canonical form
--------------

Both the nodes and the agents of the model are anonymous: node indices
and agent ids exist only for the simulator's bookkeeping, and every
engine transition is equivariant under rotating the node labels and
permuting the agent ids.  Two configurations related by such a
relabelling are therefore bisimilar — they generate identical future
behaviour.  :meth:`Configuration.canonical` quotients both symmetries
out: it re-describes the state namelessly (per node: tokens, the sorted
multiset of staying-agent payloads, the queue as a payload sequence,
where a payload is the agent's started flag + state fingerprint + inbox
contents) and picks the lexicographically least rotation.  Equality and
hashing delegate to the canonical form, so a ``set`` or ``dict`` of
configurations deduplicates the whole symmetry orbit — exactly what the
model checker's visited-state memo needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

__all__ = ["Configuration", "LocalConfiguration"]


@dataclass(frozen=True)
class LocalConfiguration:
    """The local configuration of one node (proof of Theorem 5).

    Lemma 1 compares, node by node, ``(state of v, states of all agents at
    v)``.  Tokens are the node state; agent states are the opaque,
    algorithm-defined state fingerprints of the agents staying at the node
    and of the agents queued on the incoming link, in queue order.
    """

    tokens: int
    staying_states: Tuple[object, ...]
    queued_states: Tuple[object, ...]


@dataclass(frozen=True, eq=False)
class Configuration:
    """An immutable snapshot of the full 5-tuple ``C = (S, T, M, P, Q)``.

    ``agent_states`` maps agent id to an opaque, algorithm-defined state
    fingerprint (``S``); ``tokens`` is the node token vector (``T``);
    ``inbox_sizes`` counts undelivered messages per agent (``M``);
    ``staying`` maps node to the ids of staying agents in sorted order
    (``P``); ``queues`` maps node to the incoming link queue, head first
    (``Q``).

    Two optional refinements make the snapshot an *exact* state key for
    the model checker (engine snapshots always fill them):

    * ``inboxes`` — full undelivered message contents per agent, oldest
      first (``inbox_sizes`` is its lossy projection);
    * ``started`` — whether each agent's protocol generator has run at
      least once (a never-started agent is observably different from a
      started agent whose declared state happens to look initial).

    Equality and ``hash()`` compare canonical forms (see the module
    docstring): configurations equal up to ring rotation and agent
    relabelling compare equal, distinct states never do.
    """

    ring_size: int
    agent_states: Mapping[int, object]
    tokens: Tuple[int, ...]
    inbox_sizes: Mapping[int, int]
    staying: Mapping[int, Tuple[int, ...]]
    queues: Mapping[int, Tuple[int, ...]]
    inboxes: Optional[Mapping[int, Tuple[object, ...]]] = None
    started: Optional[Mapping[int, bool]] = None
    _canonical: Optional[Tuple[object, ...]] = field(
        default=None, init=False, repr=False
    )

    # ------------------------------------------------------------------
    # Canonical form, equality and hashing
    # ------------------------------------------------------------------

    def _agent_payload(self, agent_id: int) -> Tuple[object, ...]:
        """The nameless description of one agent: flag + state + inbox."""
        started = True if self.started is None else self.started.get(agent_id, True)
        if self.inboxes is not None:
            inbox: object = tuple(self.inboxes.get(agent_id, ()))
        else:
            inbox = self.inbox_sizes.get(agent_id, 0)
        return (started, self.agent_states[agent_id], inbox)

    def canonical(self) -> Tuple[object, ...]:
        """Return the rotation- and relabelling-invariant state key.

        The encoding lists, per node in ring order, ``(tokens, sorted
        staying payloads, queued payloads head-first)`` and selects the
        lexicographically least of the ``n`` rotations.  Payload tuples
        mix ``None``/ints/strings, which Python refuses to order
        directly, so rotations are compared through their ``repr`` — a
        deterministic, injective encoding on the value types agents use
        (ints, bools, strings, ``None``, tuples, frozen dataclasses).
        The result is cached: snapshots are immutable.
        """
        if self._canonical is not None:
            return self._canonical
        payloads = {
            agent_id: self._agent_payload(agent_id) for agent_id in self.agent_states
        }
        nodes = []
        for node in range(self.ring_size):
            staying = tuple(
                sorted(
                    (payloads[agent_id] for agent_id in self.staying.get(node, ())),
                    key=repr,
                )
            )
            queued = tuple(payloads[agent_id] for agent_id in self.queues.get(node, ()))
            nodes.append((self.tokens[node], staying, queued))
        node_reprs = [repr(entry) for entry in nodes]
        size = self.ring_size
        best = min(
            range(size),
            key=lambda r: tuple(node_reprs[r:] + node_reprs[:r]),
        )
        canonical = (size,) + tuple(nodes[best:] + nodes[:best])
        object.__setattr__(self, "_canonical", canonical)
        return canonical

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Configuration):
            return NotImplemented
        return self.canonical() == other.canonical()

    def __hash__(self) -> int:
        return hash(self.canonical())

    def local(self, node: int) -> LocalConfiguration:
        """Return the local configuration of ``node`` (Lemma 1's unit)."""
        staying_states = tuple(
            self.agent_states[agent_id] for agent_id in self.staying.get(node, ())
        )
        queued_states = tuple(
            self.agent_states[agent_id] for agent_id in self.queues.get(node, ())
        )
        return LocalConfiguration(
            tokens=self.tokens[node],
            staying_states=staying_states,
            queued_states=queued_states,
        )

    def occupied_nodes(self) -> Tuple[int, ...]:
        """Nodes with at least one staying agent, in ring order."""
        return tuple(sorted(node for node, agents in self.staying.items() if agents))

    def all_queues_empty(self) -> bool:
        """True when no agent is in transit."""
        return all(not queue for queue in self.queues.values())

    def total_messages_pending(self) -> int:
        """Total undelivered messages across all agents."""
        return sum(self.inbox_sizes.values())
