"""The unidirectional anonymous ring substrate (paper Section 2.1).

A ring ``R = (V, E)`` has ``n`` anonymous nodes ``v_0 .. v_{n-1}`` and
unidirectional FIFO links ``e_i = (v_i, v_{i+1 mod n})``.  This module
holds the *passive* state of the model:

* per-node token counters (``T`` in the configuration 5-tuple),
* per-node sets of *staying* agents (``P``),
* per-link FIFO queues of in-transit agents (``Q``).

Agent states (``S``) and message queues (``M``) live on the agent objects
themselves (see ``repro.sim``); :class:`repro.ring.configuration.Configuration`
assembles the full 5-tuple snapshot when needed.

Node indices exist only for the simulator's bookkeeping — agents never see
them.  Everything an agent may observe at a node is packaged by the engine
into a :class:`repro.sim.actions.NodeView`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, NamedTuple, Set, Tuple

from repro.errors import ConfigurationError, SimulationError

__all__ = ["Ring", "RingFastState"]


class RingFastState(NamedTuple):
    """Direct references to a ring's mutable structures (engine fast path).

    The simulation engine activates agents millions of times per sweep;
    going through the validating :class:`Ring` methods on every atomic
    action costs several attribute lookups and function calls per step.
    :meth:`Ring.fast_state` hands the engine the four underlying
    structures so the hot loop can mutate them directly.

    The contract: a holder that mutates these MUST keep ``locations`` in
    sync with ``staying``/``queues`` using the same encoding as the ring
    (staying at node ``i`` -> code ``i``; queued toward node ``i`` ->
    code ``-(i + 1)``), and must itself enforce the FIFO/no-overtake
    invariants that the public methods check.  Everything read through
    the public :class:`Ring` API (snapshots, analysis, verification)
    stays consistent as long as that contract holds.
    """

    tokens: List[int]
    staying: List[Set[int]]
    queues: List[Deque[int]]
    locations: Dict[int, int]


class Ring:
    """Passive state of an ``n``-node unidirectional ring.

    The ring enforces the model's structural invariants:

    * tokens are released once per call and never removed
      (token monotonicity),
    * link queues are strictly FIFO — agents enter at the tail and leave
      at the head only (the no-overtaking property the paper's proofs
      rely on),
    * an agent *stays* at exactly one node or sits in exactly one link
      queue, never both.

    Agent locations are stored as a single int code per agent (staying
    at node ``i`` -> ``i``; queued toward node ``i`` -> ``-(i + 1)``)
    so the hot path never allocates location tuples; :meth:`locate`
    decodes on demand for the human-facing API.
    """

    def __init__(self, size: int) -> None:
        if size <= 0:
            raise ConfigurationError(f"ring size must be positive, got {size}")
        self._size = size
        self._tokens: List[int] = [0] * size
        self._staying: List[Set[int]] = [set() for _ in range(size)]
        # _queues[i] holds agents in transit toward node i (the paper's
        # q_i, the queue of link (v_{i-1}, v_i)), head at index 0.
        self._queues: List[Deque[int]] = [deque() for _ in range(size)]
        # agent id -> int location code (see class docstring).
        self._locations: Dict[int, int] = {}

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of nodes ``n``."""
        return self._size

    def successor(self, node: int) -> int:
        """Return ``v_{node+1 mod n}``, the only forward neighbour."""
        return (node + 1) % self._size

    def forward_distance(self, source: int, destination: int) -> int:
        """Return the forward distance ``(destination - source) mod n``."""
        return (destination - source) % self._size

    # ------------------------------------------------------------------
    # Tokens
    # ------------------------------------------------------------------

    def release_token(self, node: int) -> None:
        """Increase the token count of ``node`` by one (irrevocable)."""
        self._tokens[node] += 1

    def tokens_at(self, node: int) -> int:
        """Return the number of tokens at ``node``."""
        return self._tokens[node]

    @property
    def token_counts(self) -> Tuple[int, ...]:
        """Snapshot of all node token counters (the 5-tuple's ``T``)."""
        return tuple(self._tokens)

    # ------------------------------------------------------------------
    # Agent placement
    # ------------------------------------------------------------------

    def enqueue(self, agent_id: int, node: int) -> None:
        """Append ``agent_id`` to the tail of the queue entering ``node``.

        Used both for initial placement (the paper stores each agent in
        the incoming buffer of its home node) and for every move.
        """
        self._assert_absent(agent_id)
        self._queues[node].append(agent_id)
        self._locations[agent_id] = -(node + 1)

    def queue_head(self, node: int) -> int:
        """Return the agent at the head of the queue entering ``node``."""
        queue = self._queues[node]
        if not queue:
            raise SimulationError(f"queue into node {node} is empty")
        return queue[0]

    def dequeue(self, agent_id: int, node: int) -> None:
        """Pop ``agent_id`` from the head of the queue entering ``node``.

        Raises :class:`SimulationError` if the agent is not at the head —
        that would be an overtake, which the model forbids.
        """
        queue = self._queues[node]
        if not queue or queue[0] != agent_id:
            raise SimulationError(
                f"agent {agent_id} is not at the head of the queue into node {node}"
            )
        queue.popleft()
        del self._locations[agent_id]

    def settle(self, agent_id: int, node: int) -> None:
        """Record that ``agent_id`` is now *staying* at ``node`` (in ``p_node``)."""
        self._assert_absent(agent_id)
        self._staying[node].add(agent_id)
        self._locations[agent_id] = node

    def depart(self, agent_id: int, node: int) -> None:
        """Remove a staying ``agent_id`` from ``node`` (about to move)."""
        if agent_id not in self._staying[node]:
            raise SimulationError(f"agent {agent_id} is not staying at node {node}")
        self._staying[node].remove(agent_id)
        del self._locations[agent_id]

    def staying_at(self, node: int) -> Set[int]:
        """Return a copy of the set of agents staying at ``node``."""
        return set(self._staying[node])

    def queue_contents(self, node: int) -> Tuple[int, ...]:
        """Return the queue into ``node`` as a tuple, head first."""
        return tuple(self._queues[node])

    def locate(self, agent_id: int) -> Tuple[str, int]:
        """Return ``("node", i)`` or ``("queue", i)`` for ``agent_id``."""
        try:
            code = self._locations[agent_id]
        except KeyError:
            raise SimulationError(f"agent {agent_id} is not on the ring") from None
        if code < 0:
            return ("queue", -code - 1)
        return ("node", code)

    def occupied_nodes(self) -> List[int]:
        """Return the sorted list of nodes with at least one staying agent."""
        return [node for node in range(self._size) if self._staying[node]]

    def all_queues_empty(self) -> bool:
        """Return ``True`` when no agent is in transit (all ``q_i`` empty)."""
        return all(not queue for queue in self._queues)

    def iter_in_transit(self) -> Iterator[int]:
        """Yield every agent currently inside a link queue."""
        for queue in self._queues:
            yield from queue

    # ------------------------------------------------------------------
    # Cloning (engine fork support)
    # ------------------------------------------------------------------

    def clone(self) -> "Ring":
        """Return a deep copy of the passive ring state.

        Agent ids are plain ints, so copying the four structures fully
        detaches the clone: mutations on either ring never leak to the
        other.  Used by :meth:`repro.sim.engine.Engine.fork`.
        """
        other = Ring(self._size)
        other._tokens = list(self._tokens)
        other._staying = [set(agents) for agents in self._staying]
        other._queues = [deque(queue) for queue in self._queues]
        other._locations = dict(self._locations)
        return other

    # ------------------------------------------------------------------
    # Engine fast path
    # ------------------------------------------------------------------

    def fast_state(self) -> RingFastState:
        """Hand out direct references to the mutable structures.

        See :class:`RingFastState` for the synchronisation contract the
        holder takes on.  Intended for the simulation engine's hot loop
        only; everything else should use the validating methods above.
        """
        return RingFastState(
            tokens=self._tokens,
            staying=self._staying,
            queues=self._queues,
            locations=self._locations,
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _assert_absent(self, agent_id: int) -> None:
        if agent_id in self._locations:
            raise SimulationError(
                f"agent {agent_id} is already on the ring at {self.locate(agent_id)}"
            )
