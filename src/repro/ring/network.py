"""The unidirectional anonymous ring substrate (paper Section 2.1).

A ring ``R = (V, E)`` has ``n`` anonymous nodes ``v_0 .. v_{n-1}`` and
unidirectional FIFO links ``e_i = (v_i, v_{i+1 mod n})``.  This module
holds the *passive* state of the model:

* per-node token counters (``T`` in the configuration 5-tuple),
* per-node sets of *staying* agents (``P``),
* per-link FIFO queues of in-transit agents (``Q``).

Agent states (``S``) and message queues (``M``) live on the agent objects
themselves (see ``repro.sim``); :class:`repro.ring.configuration.Configuration`
assembles the full 5-tuple snapshot when needed.

Node indices exist only for the simulator's bookkeeping — agents never see
them.  Everything an agent may observe at a node is packaged by the engine
into a :class:`repro.sim.actions.NodeView`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterator, List, NamedTuple, Optional, Set, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.ring.faults import PHANTOM, LinkSpec

__all__ = ["Ring", "RingFastState", "RingFaults"]


class RingFaults:
    """Mutable link-fault state of one ring (present only when faulty).

    One shared object: the ring, its :class:`RingFastState` and the
    engine all hold the *same* instance, so counter updates are visible
    everywhere without synchronisation code.  ``buffers[i]`` is the
    FIFO delay buffer of the link into node ``i`` — ``[payload,
    remaining]`` pairs, head at index 0, where payload is an agent id
    or :data:`~repro.ring.faults.PHANTOM` — draining into ``queues[i]``
    in send order (FIFO is preserved under pure delay).  ``ordinal``
    counts move-onto-link events (the label-invariant draw key),
    ``loss_used``/``dup_used`` track the consumed budgets, and ``lost``
    holds the ids of agents dropped in transit.
    """

    __slots__ = ("spec", "buffers", "lost", "ordinal", "loss_used", "dup_used")

    def __init__(self, spec: LinkSpec, size: int) -> None:
        self.spec = spec
        self.buffers: List[Deque[List[int]]] = [deque() for _ in range(size)]
        self.lost: Set[int] = set()
        self.ordinal = 0
        self.loss_used = 0
        self.dup_used = 0

    def clone(self, size: int) -> "RingFaults":
        other = RingFaults(self.spec, size)
        other.buffers = [
            deque(list(entry) for entry in buffer) for buffer in self.buffers
        ]
        other.lost = set(self.lost)
        other.ordinal = self.ordinal
        other.loss_used = self.loss_used
        other.dup_used = self.dup_used
        return other

    def snapshot(self) -> Tuple[object, ...]:
        """Hashable value state (for :class:`Configuration` snapshots)."""
        return (
            tuple(
                tuple((entry[0], entry[1]) for entry in buffer)
                for buffer in self.buffers
            ),
            tuple(sorted(self.lost)),
            self.ordinal,
            self.loss_used,
            self.dup_used,
        )


class RingFastState(NamedTuple):
    """Direct references to a ring's mutable structures (engine fast path).

    The simulation engine activates agents millions of times per sweep;
    going through the validating :class:`Ring` methods on every atomic
    action costs several attribute lookups and function calls per step.
    :meth:`Ring.fast_state` hands the engine the four underlying
    structures so the hot loop can mutate them directly.

    The contract: a holder that mutates these MUST keep ``locations`` in
    sync with ``staying``/``queues`` using the same encoding as the ring
    (staying at node ``i`` -> code ``i``; queued toward node ``i`` ->
    code ``-(i + 1)``), and must itself enforce the FIFO/no-overtake
    invariants that the public methods check.  Everything read through
    the public :class:`Ring` API (snapshots, analysis, verification)
    stays consistent as long as that contract holds.
    """

    tokens: List[int]
    staying: List[Set[int]]
    queues: List[Deque[int]]
    locations: Dict[int, int]
    #: shared link-fault state, or None on a reliable ring (the default
    #: keeps every historical 4-field construction working unchanged).
    faults: Optional[RingFaults] = None


class Ring:
    """Passive state of an ``n``-node unidirectional ring.

    The ring enforces the model's structural invariants:

    * tokens are released once per call and never removed
      (token monotonicity),
    * link queues are strictly FIFO — agents enter at the tail and leave
      at the head only (the no-overtaking property the paper's proofs
      rely on),
    * an agent *stays* at exactly one node or sits in exactly one link
      queue, never both.

    Agent locations are stored as a single int code per agent (staying
    at node ``i`` -> ``i``; queued toward node ``i`` -> ``-(i + 1)``;
    held in the delay buffer of the link into ``i`` ->
    ``-(i + 1 + n)``) so the hot path never allocates location tuples;
    :meth:`locate` decodes on demand for the human-facing API.

    With an active :class:`~repro.ring.faults.LinkSpec` the ring
    additionally carries a :class:`RingFaults` block: per-link FIFO
    delay buffers feeding the queues, the lost-agent set and the
    deterministic draw counters.  A reliable ring (``links=None``, the
    default) allocates none of it and behaves bit-identically to the
    pre-fault implementation.
    """

    def __init__(self, size: int, links: Optional[LinkSpec] = None) -> None:
        if size <= 0:
            raise ConfigurationError(f"ring size must be positive, got {size}")
        self._size = size
        self._tokens: List[int] = [0] * size
        self._staying: List[Set[int]] = [set() for _ in range(size)]
        # _queues[i] holds agents in transit toward node i (the paper's
        # q_i, the queue of link (v_{i-1}, v_i)), head at index 0.
        self._queues: List[Deque[int]] = [deque() for _ in range(size)]
        # agent id -> int location code (see class docstring).
        self._locations: Dict[int, int] = {}
        if links is not None and links.active:
            self._faults: Optional[RingFaults] = RingFaults(links, size)
        else:
            self._faults = None

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------

    @property
    def size(self) -> int:
        """Number of nodes ``n``."""
        return self._size

    def successor(self, node: int) -> int:
        """Return ``v_{node+1 mod n}``, the only forward neighbour."""
        return (node + 1) % self._size

    def forward_distance(self, source: int, destination: int) -> int:
        """Return the forward distance ``(destination - source) mod n``."""
        return (destination - source) % self._size

    # ------------------------------------------------------------------
    # Tokens
    # ------------------------------------------------------------------

    def release_token(self, node: int) -> None:
        """Increase the token count of ``node`` by one (irrevocable)."""
        self._tokens[node] += 1

    def tokens_at(self, node: int) -> int:
        """Return the number of tokens at ``node``."""
        return self._tokens[node]

    @property
    def token_counts(self) -> Tuple[int, ...]:
        """Snapshot of all node token counters (the 5-tuple's ``T``)."""
        return tuple(self._tokens)

    # ------------------------------------------------------------------
    # Agent placement
    # ------------------------------------------------------------------

    def enqueue(self, agent_id: int, node: int) -> None:
        """Append ``agent_id`` to the tail of the queue entering ``node``.

        Used both for initial placement (the paper stores each agent in
        the incoming buffer of its home node) and for every move.
        """
        self._assert_absent(agent_id)
        self._queues[node].append(agent_id)
        self._locations[agent_id] = -(node + 1)

    def queue_head(self, node: int) -> int:
        """Return the agent at the head of the queue entering ``node``."""
        queue = self._queues[node]
        if not queue:
            raise SimulationError(f"queue into node {node} is empty")
        return queue[0]

    def dequeue(self, agent_id: int, node: int) -> None:
        """Pop ``agent_id`` from the head of the queue entering ``node``.

        Raises :class:`SimulationError` if the agent is not at the head —
        that would be an overtake, which the model forbids.
        """
        queue = self._queues[node]
        if not queue or queue[0] != agent_id:
            raise SimulationError(
                f"agent {agent_id} is not at the head of the queue into node {node}"
            )
        queue.popleft()
        del self._locations[agent_id]

    def settle(self, agent_id: int, node: int) -> None:
        """Record that ``agent_id`` is now *staying* at ``node`` (in ``p_node``)."""
        self._assert_absent(agent_id)
        self._staying[node].add(agent_id)
        self._locations[agent_id] = node

    def depart(self, agent_id: int, node: int) -> None:
        """Remove a staying ``agent_id`` from ``node`` (about to move)."""
        if agent_id not in self._staying[node]:
            raise SimulationError(f"agent {agent_id} is not staying at node {node}")
        self._staying[node].remove(agent_id)
        del self._locations[agent_id]

    def staying_at(self, node: int) -> Set[int]:
        """Return a copy of the set of agents staying at ``node``."""
        return set(self._staying[node])

    def queue_contents(self, node: int) -> Tuple[int, ...]:
        """Return the queue into ``node`` as a tuple, head first."""
        return tuple(self._queues[node])

    def locate(self, agent_id: int) -> Tuple[str, int]:
        """Return ``("node", i)``, ``("queue", i)`` or ``("buffer", i)``."""
        try:
            code = self._locations[agent_id]
        except KeyError:
            raise SimulationError(f"agent {agent_id} is not on the ring") from None
        if code < -self._size:
            return ("buffer", -code - 1 - self._size)
        if code < 0:
            return ("queue", -code - 1)
        return ("node", code)

    def occupied_nodes(self) -> List[int]:
        """Return the sorted list of nodes with at least one staying agent."""
        return [node for node in range(self._size) if self._staying[node]]

    def all_queues_empty(self) -> bool:
        """Return ``True`` when no agent is in transit (all ``q_i`` empty)."""
        return all(not queue for queue in self._queues)

    def iter_in_transit(self) -> Iterator[int]:
        """Yield every agent currently inside a link queue.

        Phantom duplicates are not agents and are skipped; agents held
        in a delay buffer are still in transit and are included.
        """
        for queue in self._queues:
            for agent_id in queue:
                if agent_id >= 0:
                    yield agent_id
        if self._faults is not None:
            for buffer in self._faults.buffers:
                for payload, _ in buffer:
                    if payload >= 0:
                        yield payload

    # ------------------------------------------------------------------
    # Link faults (present only with an active LinkSpec)
    # ------------------------------------------------------------------

    @property
    def faults(self) -> Optional[RingFaults]:
        """The shared link-fault block, or ``None`` on a reliable ring."""
        return self._faults

    @property
    def links(self) -> Optional[LinkSpec]:
        """The active link-fault spec, or ``None`` on a reliable ring."""
        return None if self._faults is None else self._faults.spec

    def buffer_entry(self, payload: int, node: int, remaining: int) -> None:
        """Append ``payload`` to the delay buffer of the link into ``node``.

        ``payload`` is an agent id (tracked in ``locations`` with the
        buffer code) or :data:`~repro.ring.faults.PHANTOM` (anonymous).
        """
        if self._faults is None:
            raise SimulationError("ring has no link faults configured")
        if payload >= 0:
            self._assert_absent(payload)
            self._locations[payload] = -(node + 1 + self._size)
        self._faults.buffers[node].append([payload, remaining])

    def append_phantom(self, node: int) -> None:
        """Append a phantom duplicate to the tail of the queue into ``node``."""
        if self._faults is None:
            raise SimulationError("ring has no link faults configured")
        self._queues[node].append(PHANTOM)

    def pop_phantom(self, node: int) -> None:
        """Discard the phantom at the head of the queue into ``node``."""
        queue = self._queues[node]
        if not queue or queue[0] != PHANTOM:
            raise SimulationError(
                f"no phantom at the head of the queue into node {node}"
            )
        queue.popleft()

    def tick_buffer(self, node: int) -> Optional[int]:
        """Advance the delay buffer of the link into ``node`` by one action.

        Decrements the head entry's remaining delay; when it reaches
        zero the entry transfers to the queue tail (send order — FIFO
        under pure delay).  Returns the delivered payload, or ``None``
        when the action only ticked the countdown.
        """
        if self._faults is None:
            raise SimulationError("ring has no link faults configured")
        buffer = self._faults.buffers[node]
        if not buffer:
            raise SimulationError(f"delay buffer into node {node} is empty")
        head = buffer[0]
        if head[1] > 0:
            head[1] -= 1
            if head[1] > 0:
                return None
        buffer.popleft()
        payload = head[0]
        if payload >= 0:
            self._locations[payload] = -(node + 1)
        self._queues[node].append(payload)
        return payload

    def mark_lost(self, agent_id: int) -> None:
        """Record that ``agent_id`` was dropped in transit (never returns)."""
        if self._faults is None:
            raise SimulationError("ring has no link faults configured")
        self._faults.lost.add(agent_id)

    def link_pending(self, node: int) -> bool:
        """Whether the link actor into ``node`` has an enabled action."""
        if self._faults is None:
            return False
        if self._faults.buffers[node]:
            return True
        queue = self._queues[node]
        return bool(queue) and queue[0] == PHANTOM

    # ------------------------------------------------------------------
    # Cloning (engine fork support)
    # ------------------------------------------------------------------

    def clone(self) -> "Ring":
        """Return a deep copy of the passive ring state.

        Agent ids are plain ints, so copying the four structures fully
        detaches the clone: mutations on either ring never leak to the
        other.  Used by :meth:`repro.sim.engine.Engine.fork`.
        """
        other = Ring(self._size)
        other._tokens = list(self._tokens)
        other._staying = [set(agents) for agents in self._staying]
        other._queues = [deque(queue) for queue in self._queues]
        other._locations = dict(self._locations)
        if self._faults is not None:
            other._faults = self._faults.clone(self._size)
        return other

    # ------------------------------------------------------------------
    # Engine fast path
    # ------------------------------------------------------------------

    def fast_state(self) -> RingFastState:
        """Hand out direct references to the mutable structures.

        See :class:`RingFastState` for the synchronisation contract the
        holder takes on.  Intended for the simulation engine's hot loop
        only; everything else should use the validating methods above.
        """
        return RingFastState(
            tokens=self._tokens,
            staying=self._staying,
            queues=self._queues,
            locations=self._locations,
            faults=self._faults,
        )

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _assert_absent(self, agent_id: int) -> None:
        if agent_id in self._locations:
            raise SimulationError(
                f"agent {agent_id} is already on the ring at {self.locate(agent_id)}"
            )
