"""Link-fault models: bounded delay, loss and duplication per link.

Everything upstream of this module assumes the paper's reliable FIFO
links.  A :class:`LinkSpec` opens that assumption: each forward move
puts the agent "on the link", where the link may hold it for up to
``delay`` extra link actions, drop it entirely (at most ``loss`` agents
per run), or deliver a duplicate *phantom* copy behind it (at most
``dup`` phantoms per run).  The spec is frozen, JSON-round-trippable
and content-hashable, so faulty experiments are first-class citizens of
the spec/store/mc/fuzz machinery rather than scheduler hacks.

Determinism discipline (same as :mod:`repro.campaign.chaos`): every
fault decision is a pure function of ``(seed, kind, ordinal)`` through
a blake2b draw — no ambient RNG, no wall clock — so a faulty run
replays bit for bit anywhere.

Why the draw is keyed on a *global move ordinal*, not on the link
index or the agent id: the model checker quotients the state space by
ring rotation and agent relabelling
(:meth:`repro.ring.configuration.Configuration.canonical`).  That
quotient is sound only if two symmetric states have isomorphic
futures.  A draw keyed on the concrete link index (or agent id) would
break under rotation (relabelling): the "same" state reached via two
rotations would draw different faults and diverge.  Keying on the
label-invariant count of prior move-onto-link events keeps every
fault decision equivariant: rotate or relabel a configuration and the
drawn faults rotate/relabel with it.  (The ordinal is part of the
fault state and therefore of the canonical/packed encoding, which is
exactly what makes memoising faulty states sound.)

The link itself becomes schedulable: the *link actor* of the link into
node ``v`` has the pseudo agent id ``-(v + 1)``.  It appears in the
engine's enabled set whenever the link has work to do (a non-empty
delay buffer, or a phantom at the queue head), so schedulers, the
model checker and the fuzzer all reason about delayed delivery as just
another enabled action.  FIFO is preserved under pure delay — the
delay buffer is itself FIFO and drains into the queue in send order —
and relaxed only by duplication (phantoms are extra deliveries).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import ConfigurationError

__all__ = [
    "LinkSpec",
    "PHANTOM",
    "fault_fraction",
    "format_link_spec",
    "is_link_actor",
    "link_actor",
    "link_node",
    "parse_link_spec",
]

#: Queue/buffer payload marking a duplicated (phantom) delivery.  Real
#: agent ids are non-negative, so ``-1`` is unambiguous inside a queue;
#: phantoms are anonymous and interchangeable — they carry no agent
#: state and are consumed (discarded) by the link actor at the head.
PHANTOM = -1


def link_actor(node: int) -> int:
    """The pseudo agent id of the fault actor of the link into ``node``."""
    return -(node + 1)


def link_node(actor_id: int) -> int:
    """The destination node of the link actor ``actor_id``."""
    return -actor_id - 1


def is_link_actor(actor_id: int) -> bool:
    """Whether an enabled-set / activation-log id names a link actor."""
    return actor_id < 0


def fault_fraction(seed: int, kind: str, ordinal: int) -> float:
    """A deterministic uniform [0, 1) draw for one fault decision.

    Pure function of its arguments (blake2b, the
    :func:`repro.campaign.chaos._unit_fraction` discipline): identical
    in every process, on every host, in every replay.
    """
    digest = hashlib.blake2b(
        f"links|{seed}|{kind}|{ordinal}".encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


@dataclass(frozen=True)
class LinkSpec:
    """The fault envelope of every link of one ring (frozen, hashable).

    ``delay`` bounds the extra link actions any single delivery may be
    held for (0 = immediate, the reliable behaviour); ``loss`` bounds
    the *total* number of agents the run may drop in transit; ``dup``
    bounds the total number of phantom duplicate deliveries.  ``seed``
    decorrelates the draw stream between otherwise identical specs.

    ``LinkSpec(0, 0, 0)`` is *inactive* — semantically identical to no
    spec at all, and normalised away by every spec container so the
    content hash of a reliable experiment never changes.
    """

    delay: int = 0
    loss: int = 0
    dup: int = 0
    seed: int = 0

    def __post_init__(self) -> None:
        for name in ("delay", "loss", "dup", "seed"):
            value = getattr(self, name)
            if not isinstance(value, int) or isinstance(value, bool):
                raise ConfigurationError(
                    f"link {name} must be an int, got {value!r}"
                )
            if value < 0:
                raise ConfigurationError(
                    f"link {name} must be >= 0, got {value}"
                )

    @property
    def active(self) -> bool:
        """Whether this spec can inject any fault at all."""
        return bool(self.delay or self.loss or self.dup)

    # -- deterministic draws -------------------------------------------------

    def draw_loss(self, ordinal: int) -> bool:
        """Whether move event ``ordinal`` loses its agent (budget aside)."""
        return fault_fraction(self.seed, "loss", ordinal) < 0.5

    def draw_dup(self, ordinal: int) -> bool:
        """Whether move event ``ordinal`` spawns a phantom (budget aside)."""
        return fault_fraction(self.seed, "dup", ordinal) < 0.5

    def draw_delay(self, ordinal: int) -> int:
        """The delay in [0, ``delay``] drawn for move event ``ordinal``."""
        if self.delay == 0:
            return 0
        return int(fault_fraction(self.seed, "delay", ordinal) * (self.delay + 1))

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, int]:
        return {
            "delay": self.delay,
            "loss": self.loss,
            "dup": self.dup,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LinkSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"link spec must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - {"delay", "loss", "dup", "seed"}
        if unknown:
            raise ConfigurationError(
                f"link spec has unknown keys {sorted(unknown)}"
            )
        return cls(
            delay=int(data.get("delay", 0)),
            loss=int(data.get("loss", 0)),
            dup=int(data.get("dup", 0)),
            seed=int(data.get("seed", 0)),
        )

    def describe(self) -> str:
        parts = [
            f"{name}={getattr(self, name)}"
            for name in ("delay", "loss", "dup")
            if getattr(self, name)
        ]
        parts.append(f"seed={self.seed}")
        return "links(" + " ".join(parts) + ")"


def parse_link_spec(text: str) -> LinkSpec:
    """Parse the CLI's ``--links`` string into a :class:`LinkSpec`.

    Comma-separated ``key=value`` pairs over the spec's fields, e.g.
    ``delay=2,seed=7`` or ``delay=1,loss=1,dup=1``.  A string that
    injects nothing (``seed=3`` alone) is rejected — it would silently
    test the reliable model under a faulty-looking flag.
    """
    values: Dict[str, int] = {}
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ConfigurationError(
                f"bad links entry {chunk!r}; expected key=value"
            )
        key, _, raw = chunk.partition("=")
        key = key.strip()
        if key not in ("delay", "loss", "dup", "seed"):
            raise ConfigurationError(
                f"unknown links key {key!r}; expected one of "
                "delay, loss, dup, seed"
            )
        try:
            values[key] = int(raw.strip())
        except ValueError:
            raise ConfigurationError(
                f"bad links value {raw.strip()!r} for {key!r}"
            ) from None
    spec = LinkSpec.from_dict(values)
    if not spec.active:
        raise ConfigurationError(
            "links spec injects nothing; give at least one of "
            "delay/loss/dup bounds"
        )
    return spec


def format_link_spec(spec: Optional[LinkSpec]) -> str:
    """The canonical ``--links`` string of ``spec`` (inverse of parse)."""
    if spec is None or not spec.active:
        return ""
    parts = [
        f"{name}={getattr(spec, name)}"
        for name in ("delay", "loss", "dup")
        if getattr(spec, name)
    ]
    if spec.seed:
        parts.append(f"seed={spec.seed}")
    return ",".join(parts)
