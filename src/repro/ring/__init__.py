"""Ring substrate: network state, placements, configuration snapshots."""

from repro.ring.configuration import Configuration, LocalConfiguration
from repro.ring.network import Ring
from repro.ring.placement import (
    Placement,
    arc_packed_placement,
    equidistant_placement,
    periodic_placement,
    placement_from_distances,
    quarter_packed_placement,
    random_aperiodic_block,
    random_placement,
)

__all__ = [
    "Configuration",
    "LocalConfiguration",
    "Ring",
    "Placement",
    "arc_packed_placement",
    "equidistant_placement",
    "periodic_placement",
    "placement_from_distances",
    "quarter_packed_placement",
    "random_aperiodic_block",
    "random_placement",
]
