"""Entry point for ``python -m repro``."""

import sys

from repro.cli import main

# Guarded so multiprocessing's spawn start method can re-import this
# module in worker processes (as "__mp_main__") without re-running the
# CLI recursively.
if __name__ == "__main__":
    sys.exit(main())
