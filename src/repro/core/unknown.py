"""Algorithms 4-6: no knowledge of k or n, relaxed problem (paper §4.2).

With no knowledge, uniform deployment *with* termination detection is
impossible (Theorem 5), so agents solve the relaxed problem: they end in
*suspended* states (message-wakeable) rather than halt states.

**Estimating phase (Algorithm 4).**  Release the token at home, then
walk from token node to token node recording distances into ``D`` until
``D`` is exactly four repetitions of its first quarter.  Estimate
``k' = |D|/4``, ``n' = sum of one quarter``; ``nodes = 4 n'`` moves were
made.  At least one agent estimates the true ``n`` in an aperiodic ring
(Lemma 4); any wrong estimate satisfies ``n' <= n/2`` (Lemma 3).

**Patrolling phase (Algorithm 5).**  Walk until ``nodes = 12 n'``
(i.e. 8 n' further moves), sending ``(n', k', nodes, D)`` to every
agent found staying at a visited node — those are prematurely suspended
agents with smaller estimates.

**Deployment phase (Algorithm 6).**  Select the base node through the
minimal rotation of the estimated block (always aperiodic, so a single
base per estimated ring), walk ``disBase`` then ``offset(rank)`` hops,
and suspend.  A suspended agent that receives an estimate with
``n' <= n'_l / 2`` whose sequence contains its own — aligned at shift
``t`` where the sender's prefix sum matches the home-to-home distance
``nodes_l - nodes`` — adopts the larger estimate, tops its move count up
to ``12 n'_l``, and redeploys.

*Faithfulness note*: the paper states the alignment condition with
literal prefix sums of ``D_l``; since both move counters may exceed one
(estimated) circuit, we evaluate it on the periodic extension of the
sender's block, i.e. modulo ``n'_l`` — the geometric meaning of the
condition (see DESIGN.md §2.4).

Complexities (Theorem 6) on a ring with symmetry degree ``l``:
O((k/l) log(n/l)) memory, O(n/l) time, O(kn/l) total moves.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.sequences import (
    is_fourfold_repetition,
    prefix_alignment_shift,
    rotation_rank,
    shift,
)
from repro.core.messages import PatrolInfo
from repro.core.targets import target_offset
from repro.registry import register_algorithm
from repro.sim.actions import Action, NodeView
from repro.sim.agent import Agent, AgentProtocol

__all__ = ["UnknownKAgent"]


@register_algorithm(
    "unknown",
    build=lambda cls, k, n: cls(),
    halts=False,
    knowledge="none",
    memory_bound="O(k log n)",
    time_bound="O(n l)",
    table1_row="Algorithms 4-6",
    description="Algorithms 4-6: no knowledge, relaxed problem, adaptive in l",
)
class UnknownKAgent(Agent):
    """The Algorithms 4-6 agent: no knowledge of k or n."""

    def __init__(self) -> None:
        super().__init__()
        # Paper-level state (audited by memory_bits):
        self.D = None  # observed distance sequence (4-fold at rest)
        self.dis = None  # distance since the previous token node
        self.n_est = None  # n': estimated number of nodes
        self.k_est = None  # k': estimated number of agents
        self.nodes = None  # total moves made so far
        self.rank = None  # base-node rank within the estimated block
        self.dis_base = None  # hops from (virtual) home to the base node
        self.remaining = None  # hops left in the current walk
        self.declare("dis", "n_est", "k_est", "nodes", "rank", "dis_base", "remaining")
        self.declare_sequence("D")

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def protocol(self, first_view: NodeView) -> AgentProtocol:
        # --- estimating phase (Algorithm 4) ---------------------------
        self.D = []
        self.dis = 0
        view = yield Action.move_forward(release_token=True)
        while True:
            self.dis += 1
            if view.tokens > 0:
                self.D.append(self.dis)
                self.dis = 0
                if len(self.D) % 4 == 0 and is_fourfold_repetition(self.D):
                    self.k_est = len(self.D) // 4
                    self.n_est = sum(self.D[: self.k_est])
                    self.nodes = 4 * self.n_est
                    break
            view = yield Action.move_forward()

        # --- patrolling phase (Algorithm 5) ---------------------------
        # A broadcast decided after arriving at a node is carried by the
        # *next* yielded action, which executes at that same node — one
        # atomic action: arrive, observe, send, leave.
        pending: Optional[PatrolInfo] = None
        while self.nodes < 12 * self.n_est:
            view = yield Action.move_forward(broadcast=pending)
            self.nodes += 1
            pending = self._patrol_info() if view.agents_present > 0 else None

        # --- deployment phase (Algorithm 6), repeated after resumes ----
        while True:
            block = self.D[: self.k_est]
            self.rank = rotation_rank(block)
            self.dis_base = sum(block[: self.rank])
            self.remaining = self.dis_base + target_offset(
                self.rank, self.n_est, self.k_est, base_count=1
            )
            while self.remaining > 0:
                view = yield Action.move_forward(broadcast=pending)
                pending = None
                self.remaining -= 1
                self.nodes += 1

            # Suspend at the (estimated) target node; flush any last
            # patrol message in the same atomic action.
            adopted: Optional[Tuple[PatrolInfo, int]] = None
            while adopted is None:
                view = yield Action.suspend_here(broadcast=pending)
                pending = None
                adopted = self._best_trigger(view.messages)
            info, alignment = adopted
            self._adopt(info, alignment)

            # Catch up to 12 n' total moves under the adopted estimate
            # (always a positive count: nodes <= 14 n_old <= 7 n_new).
            while self.nodes < 12 * self.n_est:
                view = yield Action.move_forward()
                self.nodes += 1

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------

    def _patrol_info(self) -> PatrolInfo:
        return PatrolInfo(
            n_estimate=self.n_est,
            k_estimate=self.k_est,
            nodes_moved=self.nodes,
            distances=tuple(self.D),
        )

    def _best_trigger(
        self, messages: Tuple[object, ...]
    ) -> Optional[Tuple[PatrolInfo, int]]:
        """Return the largest-estimate triggering message, if any.

        A message triggers a resume when the sender's estimate is at
        least twice ours and our whole observed sequence aligns inside
        the sender's periodic block at the shift implied by the move
        counters (Algorithm 6, line 14).
        """
        best: Optional[Tuple[PatrolInfo, int]] = None
        for message in messages:
            if not isinstance(message, PatrolInfo):
                continue
            if 2 * self.n_est > message.n_estimate:
                continue
            alignment = prefix_alignment_shift(
                self.D, message.block, message.nodes_moved - self.nodes
            )
            if alignment is None:
                continue
            if best is None or message.n_estimate > best[0].n_estimate:
                best = (message, alignment)
        return best

    def _adopt(self, info: PatrolInfo, alignment: int) -> None:
        """Adopt the sender's estimate, re-based to our own home node."""
        self.n_est = info.n_estimate
        self.k_est = info.k_estimate
        self.D = list(shift(info.block, alignment)) * 4
