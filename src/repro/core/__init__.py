"""The paper's algorithms: Algorithm 1, Algorithms 2+3, Algorithms 4-6."""

from repro.core.known_k_full import KnownKFullAgent
from repro.core.known_k_logspace import KnownKLogSpaceAgent
from repro.core.known_n_full import KnownNFullAgent
from repro.core.messages import LeaderNotice, PatrolInfo
from repro.core.targets import (
    hop_to_next_target,
    segment_offsets,
    target_offset,
    uniform_targets,
)
from repro.core.unknown import UnknownKAgent

__all__ = [
    "KnownKFullAgent",
    "KnownKLogSpaceAgent",
    "KnownNFullAgent",
    "UnknownKAgent",
    "LeaderNotice",
    "PatrolInfo",
    "hop_to_next_target",
    "segment_offsets",
    "target_offset",
    "uniform_targets",
]
