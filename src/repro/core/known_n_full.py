"""Algorithm 1 variant: knowledge of n instead of k (paper footnote 2).

Section 3 assumes knowledge of k "or n, since k and n can be easily
obtained if one of them is given": an agent that knows ``n`` detects
the completion of its selection circuit by counting ``n`` moves and
learns ``k`` by counting the tokens it saw.  Everything after the
circuit (base-node selection by minimal rotation, §3.1.1 target
arithmetic) is identical to :class:`repro.core.known_k_full.KnownKFullAgent`.

Complexities match Result 1: O(k log n) memory, O(n) time, O(kn) moves.
"""

from __future__ import annotations

from repro.analysis.sequences import minimal_period, rotation_rank
from repro.core.targets import target_offset
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.sim.actions import Action, NodeView
from repro.sim.agent import Agent, AgentProtocol

__all__ = ["KnownNFullAgent"]


@register_algorithm(
    "known_n_full",
    build=lambda cls, k, n: cls(n),
    halts=True,
    knowledge="n",
    memory_bound="O(k log n)",
    time_bound="O(n)",
    table1_row="Algorithm 1 (footnote 2)",
    description="Algorithm 1 variant (footnote 2): knowledge of n instead of k",
)
class KnownNFullAgent(Agent):
    """The footnote-2 agent: ``ring_size`` is the known ``n``."""

    def __init__(self, ring_size: int) -> None:
        super().__init__()
        if ring_size < 1:
            raise ConfigurationError(f"n must be >= 1, got {ring_size}")
        self.n = ring_size
        self.k = None  # learned during the circuit (token count)
        self.D = None
        self.moved = None  # moves made during the circuit
        self.dis = None
        self.rank = None
        self.dis_base = None
        self.remaining = None
        self.declare("n", "k", "moved", "dis", "rank", "dis_base", "remaining")
        self.declare_sequence("D")

    def protocol(self, first_view: NodeView) -> AgentProtocol:
        # --- selection phase: one circuit, detected by n moves --------
        self.moved = 0
        self.dis = 0
        self.D = []
        view = yield Action.move_forward(release_token=True)
        while True:
            self.moved += 1
            self.dis += 1
            if view.tokens > 0:
                self.D.append(self.dis)
                self.dis = 0
            if self.moved == self.n:
                break  # back at the home node
            view = yield Action.move_forward()
        self.k = len(self.D)

        # --- deployment phase: identical to Algorithm 1 ----------------
        self.rank = rotation_rank(self.D)
        base_count = self.k // minimal_period(self.D)
        self.dis_base = sum(self.D[: self.rank])
        self.remaining = self.dis_base + target_offset(
            self.rank, self.n, self.k, base_count
        )
        while self.remaining > 0:
            self.remaining -= 1
            view = yield Action.move_forward()
        yield Action.halt_here()
