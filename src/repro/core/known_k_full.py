"""Algorithm 1: knowledge of k, O(k log n) memory (paper Section 3.1).

Each agent:

1. **Selection phase** — releases its token at its home node, travels
   once around the ring (detecting the circuit by counting ``k`` token
   nodes) and records the full distance sequence
   ``D = (d_0, ..., d_{k-1})``, learning ``n = sum(D)`` on the way.
2. **Deployment phase** — computes ``rank``, the smallest ``x`` with
   ``shift(D, x)`` lexicographically minimal; its *base node* is the
   home of its ``rank``-th forward agent.  It walks
   ``disBase = d_0 + ... + d_{rank-1}`` hops to the base node and then
   ``offset(rank)`` further hops to its own target node, where it halts.

With a periodic token layout, several nodes tie as base nodes; the
``rank`` then indexes within one period and the §3.1.1 offset pattern
(``b`` = symmetry degree base nodes) places ``k/b`` agents per base
segment, handling ``n != ck`` exactly.

Complexities (Theorem 3): O(k log n) agent memory (the stored D
dominates), O(n) ideal time, O(kn) total moves.
"""

from __future__ import annotations

from repro.analysis.sequences import minimal_period, rotation_rank
from repro.core.targets import target_offset
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.sim.actions import Action, NodeView
from repro.sim.agent import Agent, AgentProtocol

__all__ = ["KnownKFullAgent"]


@register_algorithm(
    "known_k_full",
    build=lambda cls, k, n: cls(k),
    halts=True,
    knowledge="k",
    memory_bound="O(k log n)",
    time_bound="O(n)",
    table1_row="Algorithm 1",
    description="Algorithm 1: knowledge of k, O(k log n) memory, O(n) time",
)
class KnownKFullAgent(Agent):
    """The Algorithm 1 agent.  ``agent_count`` is the known ``k``."""

    def __init__(self, agent_count: int) -> None:
        super().__init__()
        if agent_count < 1:
            raise ConfigurationError(f"k must be >= 1, got {agent_count}")
        self.k = agent_count
        # Paper-level state (audited by memory_bits):
        self.D = None  # distance sequence, grows to length k
        self.j = None  # token nodes observed so far
        self.dis = None  # distance since the previous token node
        self.n = None  # ring size, learned at the end of the circuit
        self.rank = None  # base-node rank (Algorithm 1, line 14)
        self.dis_base = None  # hops from home to base node
        self.remaining = None  # hops left to the target node
        self.declare("k", "j", "dis", "n", "rank", "dis_base", "remaining")
        self.declare_sequence("D")

    def protocol(self, first_view: NodeView) -> AgentProtocol:
        # --- selection phase (Algorithm 1, lines 1-10) ---------------
        self.j = 0
        self.dis = 0
        self.D = []
        # First atomic action at the home node: release the token and
        # start the circuit.  The initial-buffer rule guarantees we act
        # at our home before anyone else visits it.
        view = yield Action.move_forward(release_token=True)
        while True:
            self.dis += 1
            if view.tokens > 0:
                self.D.append(self.dis)
                self.dis = 0
                self.j += 1
                if self.j == self.k:
                    break  # back at the home node: circuit complete
            view = yield Action.move_forward()
        self.n = sum(self.D)

        # --- deployment phase (Algorithm 1, lines 12-18) --------------
        # Base nodes are the homes whose rotation of D is minimal; their
        # count b equals the symmetry degree of D, and rank < k/b.
        self.rank = rotation_rank(self.D)
        base_count = self.k // minimal_period(self.D)
        self.dis_base = sum(self.D[: self.rank])
        self.remaining = self.dis_base + target_offset(
            self.rank, self.n, self.k, base_count
        )
        while self.remaining > 0:
            self.remaining -= 1
            view = yield Action.move_forward()
        yield Action.halt_here()
