"""Algorithms 2+3: knowledge of k, O(log n) memory (paper Section 3.2).

**Selection phase (Algorithm 2).**  All agents start *active*.  The
phase proceeds in at most ``ceil(log k)`` sub-phases.  In a sub-phase
every active agent travels once around the ring (detecting the circuit
by counting ``k`` token nodes) and measures, for every active agent in
order, the ID ``(d, fNum)``: the distance to the next active node and
the number of follower nodes in between.  Active nodes are recognised
as "token but no staying agent" — sound under asynchrony because the
FIFO links prevent overtaking, so a home node is empty exactly while
its (active) owner is traversing.  At the end of the circuit:

* all IDs identical            -> become a **leader** (home = base node),
* own ID not minimal, or equal
  to the successor's ID        -> become a **follower** (stay home),
* otherwise                    -> stay active, run the next sub-phase.

The surviving actives at least halve each sub-phase, and the base nodes
(homes of leaders) satisfy the base-node conditions: equal spacing and
equal token counts per segment.

**Deployment phase (Algorithm 3).**  Each leader walks its segment,
handing every waiting follower a :class:`LeaderNotice` with ``tBase``
(tokens to observe to reach the nearest base) and halts on the next
base node.  A woken follower walks to that base, then hops from target
to target (the §3.1.1 offset pattern; the leader's ``f_num`` yields the
base count ``b = k/(f_num+1)``) and halts at the first vacant one —
atomicity makes vacancy checks race-free.

Complexities (Theorem 4): O(log n) memory, O(n log k) time, O(kn) moves.
"""

from __future__ import annotations

from repro.core.messages import LeaderNotice
from repro.core.targets import hop_to_next_target
from repro.errors import ConfigurationError
from repro.registry import register_algorithm
from repro.sim.actions import Action, NodeView
from repro.sim.agent import Agent, AgentProtocol

__all__ = ["KnownKLogSpaceAgent"]


@register_algorithm(
    "known_k_logspace",
    build=lambda cls, k, n: cls(k),
    halts=True,
    knowledge="k",
    memory_bound="O(log n)",
    time_bound="O(n log k)",
    table1_row="Algorithms 2+3",
    description="Algorithms 2+3: knowledge of k, O(log n) memory, O(n log k) time",
)
class KnownKLogSpaceAgent(Agent):
    """The Algorithms 2+3 agent.  ``agent_count`` is the known ``k``."""

    def __init__(self, agent_count: int) -> None:
        super().__init__()
        if agent_count < 1:
            raise ConfigurationError(f"k must be >= 1, got {agent_count}")
        self.k = agent_count
        # Selection-phase state (all O(log n)-bit scalars):
        self.phase = None  # sub-phase counter
        self.identical = None  # all observed IDs equal to own so far
        self.min_id = None  # own ID minimal among observed so far
        self.id_d = None  # own ID: distance to next active node
        self.id_f = None  # own ID: follower nodes in between
        self.next_d = None  # successor's ID (Algorithm 2, line 7)
        self.next_f = None
        self.seg_d = None  # segment currently being measured
        self.seg_f = None
        self.seg_index = None  # 0 = own segment
        self.tokens_seen = None  # circuit detection: k tokens = home
        self.n = None  # ring size, accumulated in sub-phase 1
        self.is_leader = None
        # Deployment-phase state:
        self.t = None  # token nodes visited by a leader
        self.t_base = None  # follower: tokens to the nearest base
        self.b = None  # follower: number of base nodes
        self.target_index = None  # follower: index within base segment
        self.hops = None  # follower: hops left to the next target
        self.declare(
            "k",
            "phase",
            "identical",
            "min_id",
            "id_d",
            "id_f",
            "next_d",
            "next_f",
            "seg_d",
            "seg_f",
            "seg_index",
            "tokens_seen",
            "n",
            "is_leader",
            "t",
            "t_base",
            "b",
            "target_index",
            "hops",
        )

    # ------------------------------------------------------------------
    # Protocol
    # ------------------------------------------------------------------

    def protocol(self, first_view: NodeView) -> AgentProtocol:
        self.phase = 0
        self.n = 0
        # First atomic action: release the token at home and depart.
        # Sub-phase boundaries also depart within a single atomic action,
        # so an active agent's home is empty whenever another active
        # agent passes it (the classification invariant).
        view = yield Action.move_forward(release_token=True)
        while True:  # one iteration per sub-phase (Algorithm 2, lines 4-18)
            self.phase += 1
            self.identical = True
            self.min_id = True
            self.seg_index = 0
            self.seg_d = 0
            self.seg_f = 0
            self.tokens_seen = 0
            sole_active = False
            while True:  # one circuit of the ring
                self.seg_d += 1
                if self.phase == 1:
                    self.n += 1  # learn n during the first circuit
                if view.tokens > 0:
                    self.tokens_seen += 1
                    at_home = self.tokens_seen == self.k
                    if view.agents_present > 0 and not at_home:
                        self.seg_f += 1  # a follower staying at its home
                    else:
                        self._close_segment(at_home)
                        if at_home and self.seg_index == 1:
                            sole_active = True  # no other active node met
                        if at_home:
                            break
                view = yield Action.move_forward()
            # Decision at home, still inside the arrival's atomic action.
            if sole_active or self.identical:
                self.is_leader = True
                break
            own = (self.id_d, self.id_f)
            if not self.min_id or own == (self.next_d, self.next_f):
                self.is_leader = False
                break
            # Stay active: depart for the next sub-phase immediately
            # (same atomic action as the home arrival).
            view = yield Action.move_forward()

        if self.is_leader:
            yield from self._leader_deployment()
        else:
            yield from self._follower_deployment()

    # ------------------------------------------------------------------
    # Selection helpers
    # ------------------------------------------------------------------

    def _close_segment(self, at_home: bool) -> None:
        """Finish measuring one active-to-active segment (an ID)."""
        if self.seg_index == 0:
            self.id_d, self.id_f = self.seg_d, self.seg_f
        else:
            if self.seg_index == 1:
                self.next_d, self.next_f = self.seg_d, self.seg_f
            observed = (self.seg_d, self.seg_f)
            own = (self.id_d, self.id_f)
            if observed != own:
                self.identical = False
            if own > observed:
                self.min_id = False
        self.seg_index += 1
        self.seg_d = 0
        self.seg_f = 0

    # ------------------------------------------------------------------
    # Deployment: leader (Algorithm 3, lines 2-12)
    # ------------------------------------------------------------------

    def _leader_deployment(self) -> AgentProtocol:
        self.t = 0
        pending = None
        while True:
            if self.t == self.id_f + 1:
                # Arrived at the next base node: this is the target.
                yield Action.halt_here()
                return
            view = yield Action.move_forward(broadcast=pending)
            pending = None
            if view.tokens > 0:
                self.t += 1
                if self.t <= self.id_f:
                    # A follower home: notify in the same atomic action
                    # as the departure (broadcast happens before moving).
                    pending = LeaderNotice(
                        t_base=self.id_f - (self.t - 1), f_num=self.id_f
                    )

    # ------------------------------------------------------------------
    # Deployment: follower (Algorithm 3, lines 15-21)
    # ------------------------------------------------------------------

    def _follower_deployment(self) -> AgentProtocol:
        # Wait (suspended, message-wakeable) at home for the leader.
        notice = None
        while notice is None:
            view = yield Action.suspend_here()
            for message in view.messages:
                if isinstance(message, LeaderNotice):
                    notice = message
                    break
        self.t_base = notice.t_base
        self.b = self.k // (notice.f_num + 1)
        # Walk to the nearest base node: observe t_base token nodes.
        self.tokens_seen = 0
        while self.tokens_seen < self.t_base:
            view = yield Action.move_forward()
            if view.tokens > 0:
                self.tokens_seen += 1
        # Hop from target to target until a vacant one is found.  The
        # arrival, the vacancy check and the halt (or the departure)
        # form one atomic action, so two followers can never tie.
        self.target_index = 0
        while True:
            step, self.target_index = hop_to_next_target(
                self.target_index, self.n, self.k, self.b
            )
            self.hops = step
            while self.hops > 0:
                self.hops -= 1
                view = yield Action.move_forward()
            if view.agents_present == 0:
                yield Action.halt_here()
                return
