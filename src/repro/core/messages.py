"""Message payloads exchanged by the paper's agents.

The model lets co-located agents exchange messages of any size
(Section 2.1).  Two message types suffice for the whole paper:

* :class:`LeaderNotice` — Algorithm 3: a leader tells a waiting follower
  that the selection phase finished.  The paper's pseudocode sends
  ``tBase`` (tokens to the nearest base node); we additionally carry the
  leader's follower count ``f_num`` so followers can derive the base
  count ``b = k / (f_num + 1)`` needed for the ``n != ck`` target
  pattern (§3.1.1) — still O(log n) bits.
* :class:`PatrolInfo` — Algorithm 5/6: a patrolling agent shares its
  estimate ``(n', k', nodes, D)`` with a suspended agent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

__all__ = ["LeaderNotice", "PatrolInfo"]


@dataclass(frozen=True)
class LeaderNotice:
    """Leader -> follower notification (Algorithm 3, line 7)."""

    t_base: int  # tokens the follower must observe to reach its base node
    f_num: int  # followers in the leader's segment; yields b = k/(f_num+1)


@dataclass(frozen=True)
class PatrolInfo:
    """Patroller -> suspended agent estimate share (Algorithm 5, line 5).

    ``distances`` is the sender's observed distance sequence ``D``
    (a 4-fold repetition of its estimated fundamental block).
    """

    n_estimate: int
    k_estimate: int
    nodes_moved: int
    distances: Tuple[int, ...]

    @property
    def block(self) -> Tuple[int, ...]:
        """The sender's estimated fundamental block (first quarter of D)."""
        return self.distances[: self.k_estimate]
