"""Target-node arithmetic, including the ``n != ck`` case (paper §3.1.1).

With ``b`` base nodes selected (``b`` divides ``k``, and ``b`` divides
``r = n mod k`` — guaranteed because ``b`` equals the symmetry degree of
the token layout), the paper places ``k/b`` targets per base segment:
walking forward from a base node, the first ``r/b`` inter-target gaps
are ``ceil(n/k)`` and the remaining ones are ``floor(n/k)``.  The
``j``-th target of a segment therefore sits at offset

    ``offset(j) = j * floor(n/k) + min(j, r/b)``        (0 <= j < k/b)

These helpers are shared by Algorithm 1 (each agent computes its own
target offset), Algorithm 3 (followers hop from target to target) and
the deployment phase of Algorithm 6 (with estimated ``n', k'`` and
``b = 1`` — the estimated block is always aperiodic).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "target_offset",
    "segment_offsets",
    "hop_to_next_target",
    "uniform_targets",
]


def _validate(ring_size: int, agent_count: int, base_count: int) -> Tuple[int, int]:
    """Return ``(floor(n/k), r/b)`` after validating divisibility."""
    if agent_count <= 0 or ring_size <= 0 or base_count <= 0:
        raise ConfigurationError(
            f"n={ring_size}, k={agent_count}, b={base_count} must be positive"
        )
    if agent_count % base_count != 0:
        raise ConfigurationError(
            f"base count {base_count} does not divide agent count {agent_count}"
        )
    remainder = ring_size % agent_count
    if remainder % base_count != 0:
        raise ConfigurationError(
            f"base count {base_count} does not divide n mod k = {remainder}; "
            "such a base set cannot exist (paper §3.1.1)"
        )
    return ring_size // agent_count, remainder // base_count


def target_offset(
    rank: int, ring_size: int, agent_count: int, base_count: int = 1
) -> int:
    """Offset of the ``rank``-th target from its base node.

    ``rank`` must lie in ``[0, k/b)``; rank 0 is the base node itself.
    """
    floor_gap, large_gaps = _validate(ring_size, agent_count, base_count)
    per_segment = agent_count // base_count
    if not 0 <= rank < per_segment:
        raise ConfigurationError(
            f"rank {rank} outside [0, {per_segment}) for k/b targets per segment"
        )
    return rank * floor_gap + min(rank, large_gaps)


def segment_offsets(ring_size: int, agent_count: int, base_count: int = 1) -> List[int]:
    """All ``k/b`` target offsets of one base segment, ascending."""
    per_segment = agent_count // base_count
    return [
        target_offset(rank, ring_size, agent_count, base_count)
        for rank in range(per_segment)
    ]


def hop_to_next_target(
    target_index: int, ring_size: int, agent_count: int, base_count: int = 1
) -> Tuple[int, int]:
    """Return ``(hop length, next index)`` from one target to the next.

    ``target_index`` is the position within the current base segment
    (0 = the base node).  Hopping past the last target of a segment lands
    on the next segment's base (index 0); the pattern repeats around the
    whole ring, so followers can keep hopping until they find a vacant
    target (Algorithm 3).
    """
    floor_gap, large_gaps = _validate(ring_size, agent_count, base_count)
    per_segment = agent_count // base_count
    if not 0 <= target_index < per_segment:
        raise ConfigurationError(
            f"target index {target_index} outside [0, {per_segment})"
        )
    current = target_offset(target_index, ring_size, agent_count, base_count)
    if target_index + 1 < per_segment:
        nxt = target_offset(target_index + 1, ring_size, agent_count, base_count)
        return nxt - current, target_index + 1
    segment_length = ring_size // base_count
    return segment_length - current, 0


def uniform_targets(
    base_node: int, ring_size: int, agent_count: int, base_count: int = 1
) -> List[int]:
    """Absolute target nodes for the whole ring, given one base node.

    Used by tests and the omniscient baseline to enumerate the unique
    uniform configuration anchored at ``base_node``.
    """
    segment_length = ring_size // base_count
    targets = []
    for segment in range(base_count):
        origin = (base_node + segment * segment_length) % ring_size
        for offset in segment_offsets(ring_size, agent_count, base_count):
            targets.append((origin + offset) % ring_size)
    return sorted(targets)
