"""The campaign worker process: execute leased units, stream, heartbeat.

One worker is one OS process in the coordinator's fleet.  Its loop is
deliberately dumb — all protocol intelligence (leases, retries,
quarantine) lives in the coordinator; the worker just:

1. announces ``ready``, blocks on its inbox for a work unit,
2. starts a daemon heartbeat thread renewing its lease every
   ``heartbeat_interval`` seconds,
3. consults the :class:`~repro.campaign.chaos.ChaosPlan` (the fault it
   suffers, if any, is a pure function of unit key and attempt),
4. executes the unit, streaming results *directly* into the
   content-addressed store — workers write their own pid shards, so a
   SIGKILL can never tear another worker's records, and duplicate
   executions of the same deterministic unit collapse by content hash,
5. reports a compact ``done`` summary (never the bulky results — those
   are already durable) and goes back to ``ready``.

Fuzz shards additionally stream periodic **coverage deltas** so the
coordinator's campaign-global :class:`~repro.fuzz.coverage.CoverageMap`
compounds across workers while shards are still running.  Deltas are
chunked small: a worker SIGKILLed mid-message must not be able to
corrupt the shared result queue with a torn multi-page pipe write, so
no single message carries more than a few KB.

Message grammar (worker -> coordinator), all plain picklable tuples::

    ("ready",     worker_id)
    ("heartbeat", worker_id, unit_key)
    ("coverage",  worker_id, unit_key, state_keys, pattern_keys)
    ("done",      worker_id, unit_key, summary_dict)
    ("error",     worker_id, unit_key, message)

Coordinator -> worker (inbox): ``{"unit": ..., "attempt": ...,
"options": ...}`` dicts, or ``None`` to shut down cleanly.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Set

from repro.campaign.chaos import ChaosPlan
from repro.campaign.spec import WorkUnit

__all__ = ["worker_main"]

#: Max coverage keys per streamed delta message (keep pipe writes small
#: enough to stay atomic; see module docstring).
_COVERAGE_CHUNK = 400


class _Heartbeat:
    """Daemon thread renewing the worker's lease while a unit runs."""

    def __init__(self, outbox, worker_id: int, unit_key: str, interval: float):
        self._outbox = outbox
        self._worker_id = worker_id
        self._unit_key = unit_key
        self._interval = interval
        self.stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self.stop.wait(self._interval):
            try:
                self._outbox.put(
                    ("heartbeat", self._worker_id, self._unit_key)
                )
            except Exception:  # queue torn down mid-shutdown
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop.set()


def _stream_coverage_delta(
    outbox,
    worker_id: int,
    unit_key: str,
    coverage,
    sent_states: Set[int],
    sent_patterns: Set[int],
) -> None:
    """Send the not-yet-sent coverage keys, in bounded chunks."""
    state_keys, pattern_keys = coverage.export_keys()
    new_states = [key for key in state_keys if key not in sent_states]
    new_patterns = [key for key in pattern_keys if key not in sent_patterns]
    while new_states or new_patterns:
        chunk_states = new_states[:_COVERAGE_CHUNK]
        chunk_patterns = new_patterns[:_COVERAGE_CHUNK]
        new_states = new_states[_COVERAGE_CHUNK:]
        new_patterns = new_patterns[_COVERAGE_CHUNK:]
        outbox.put(
            ("coverage", worker_id, unit_key, chunk_states, chunk_patterns)
        )
        sent_states.update(chunk_states)
        sent_patterns.update(chunk_patterns)


def _execute_cell(
    unit: WorkUnit,
    attempt: int,
    store,
    chaos: ChaosPlan,
    fault,
    options: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """One sweep cell: run the experiment, archive the record.

    ``options["backend"] == "batch"`` routes the cell through the
    columnar engine (a campaign unit is one trial, so the "batch" has
    size one — the win here is uniformity with sweep-level batching,
    and byte-identical records either way).  Cells the batch backend
    does not cover fall back to the object engine, like everywhere
    else the knob appears.
    """
    from repro.experiments.runner import run_experiment
    from repro.spec import ExperimentSpec

    spec = ExperimentSpec.from_dict(unit.payload["spec"])
    backend = (options or {}).get("backend", "object")
    if backend == "batch":
        from repro.sim.batch import batch_supported, run_batch

        if batch_supported(spec) is None:
            result = run_batch([spec])[0]
        else:
            result = run_experiment(spec)
    else:
        result = run_experiment(spec)
    # The mid-cell crash window: the result exists only in this
    # process's memory until the put below commits it.
    chaos.inject(fault, "mid")
    record = result.to_record(spec)
    store.put(record)
    return {"kind": "cell", "uniform": bool(result.ok)}


def _execute_fuzz_shard(
    unit: WorkUnit,
    attempt: int,
    store,
    chaos: ChaosPlan,
    fault,
    *,
    outbox,
    worker_id: int,
    options: Dict[str, object],
) -> Dict[str, object]:
    """One fuzz shard campaign: run, stream coverage, archive failures."""
    from repro.fuzz.fuzzer import ScheduleFuzzer
    from repro.fuzz.spec import FuzzSpec

    shard = FuzzSpec.from_dict(unit.payload["spec"])
    sent_states: Set[int] = set()
    sent_patterns: Set[int] = set()
    stride = max(1, shard.budget // 8)

    fuzzer: Optional[ScheduleFuzzer] = None

    def on_progress(run: int, budget: int, coverage_text: str) -> None:
        if run % stride == 0 and fuzzer is not None:
            _stream_coverage_delta(
                outbox, worker_id, unit.key, fuzzer.coverage,
                sent_states, sent_patterns,
            )

    fuzzer = ScheduleFuzzer(
        shard,
        keep_going=bool(options.get("keep_going", True)),
        shrink=bool(options.get("shrink", True)),
        progress=on_progress,
    )
    outcome = fuzzer.run()
    # Computed-but-uncommitted crash window, the shard analogue of the
    # mid-cell kill: the campaign ran, nothing reached the store yet.
    chaos.inject(fault, "mid")
    for failure in outcome.failures:
        store.failures.put(failure.content_hash, failure.to_dict())
    _stream_coverage_delta(
        outbox, worker_id, unit.key, fuzzer.coverage,
        sent_states, sent_patterns,
    )
    return {
        "kind": "fuzz-shard",
        "runs": outcome.runs,
        "steps": outcome.steps,
        "corpus_size": outcome.corpus_size,
        "complete": outcome.complete,
        "failures": [failure.to_dict() for failure in outcome.failures],
    }


def worker_main(
    worker_id: int,
    inbox,
    outbox,
    store_root: str,
    chaos_dict: Optional[Dict[str, object]],
    heartbeat_interval: float,
) -> None:
    """Entry point of one worker process (target of ``Process``)."""
    from repro.store import RunStore

    chaos = (
        ChaosPlan.from_dict(chaos_dict) if chaos_dict else ChaosPlan()
    )
    store = RunStore(store_root)
    outbox.put(("ready", worker_id))
    while True:
        message = inbox.get()
        if message is None:
            return
        unit = WorkUnit.from_dict(message["unit"])
        attempt = int(message["attempt"])
        options = message.get("options", {})
        fault = chaos.decide(unit.key, attempt)
        try:
            with _Heartbeat(
                outbox, worker_id, unit.key, heartbeat_interval
            ) as heartbeat:
                # `silence` stops this very heartbeat before sleeping;
                # `kill` at the start point never returns from here.
                chaos.inject(fault, "start", heartbeat_stop=heartbeat.stop)
                if unit.kind == "cell":
                    summary = _execute_cell(
                        unit, attempt, store, chaos, fault, options=options
                    )
                elif unit.kind == "fuzz-shard":
                    summary = _execute_fuzz_shard(
                        unit, attempt, store, chaos, fault,
                        outbox=outbox, worker_id=worker_id, options=options,
                    )
                else:
                    raise ValueError(f"unknown work unit kind {unit.kind!r}")
        except Exception as error:  # report, stay alive for the next unit
            outbox.put(("error", worker_id, unit.key, repr(error)))
        else:
            outbox.put(("done", worker_id, unit.key, summary))
        outbox.put(("ready", worker_id))
