"""The campaign coordinator: leases out units, survives its workers.

``run_campaign`` drives a :class:`~repro.campaign.spec.CampaignSpec`
to completion against a fleet of worker processes that are *expected*
to die.  The protocol, end to end:

* units issue to ready workers under expiring leases
  (:class:`~repro.campaign.lease.LeaseTable`); workers heartbeat every
  quarter-TTL,
* a dead worker (SIGKILL, OOM, chaos) is noticed two ways — process
  death immediately, heartbeat silence within one TTL — and either way
  its unit re-enters the pending queue behind a deterministic
  exponential-backoff-with-jitter gate, and a replacement worker is
  spawned,
* a worker that heartbeats but never finishes (the slow loris) is
  caught by the per-unit wall-clock deadline, SIGKILLed and replaced,
* a unit that keeps failing is re-issued at most ``max_retries`` times
  and then **quarantined**: a poison artifact with its full lease
  history lands in ``<store>/quarantine/`` and the campaign moves on
  instead of looping forever,
* every protocol transition is journaled to the store's append-only
  :class:`~repro.store.campaigns.CampaignLedger`, which is also what
  ``resume=True`` reads to skip completed units (sweep cells are
  additionally skipped by run-store content hashes — belt and braces),
* fuzz shards stream coverage deltas that merge into one
  campaign-global :class:`~repro.fuzz.coverage.CoverageMap`, so
  coverage accounting compounds across the fleet instead of double
  counting,
* SIGINT/SIGTERM degrade gracefully: stop issuing, give in-flight
  units a short grace to land, tear the fleet down, and report
  per-unit accounting plus the exact resume command.

Every queue between coordinator and workers is *per worker*: a worker
SIGKILLed mid-message can corrupt or deadlock only its own channel,
which dies with it — never the fleet's.  Results never ride the queues
at all; workers write them straight into the content-addressed store,
where duplicate executions of deterministic units collapse by hash.
That is what makes the chaos acceptance test possible: a campaign
disturbed by arbitrary kills converges to a store byte-identical
(by :meth:`~repro.store.jsonl.RunStore.digest`) to an undisturbed
serial run's.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import signal
import time
import warnings
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.chaos import ChaosPlan
from repro.campaign.lease import (
    CACHED,
    COMPLETED,
    LEASED,
    PENDING,
    QUARANTINED,
    LeaseTable,
    UnitTracker,
)
from repro.campaign.spec import CampaignSpec, WorkUnit
from repro.errors import ProvenanceWarning, ReproError
from repro.fuzz.coverage import CoverageMap
from repro.store import RunStore, env_fingerprint

__all__ = ["CampaignOutcome", "run_campaign"]

#: Coordinator loop tick (seconds): queue poll + expiry check cadence.
_TICK = 0.02

#: Grace given to in-flight units on SIGINT/SIGTERM before teardown.
_SHUTDOWN_GRACE = 5.0


@dataclass
class CampaignOutcome:
    """Everything one campaign invocation did (the accounting object)."""

    spec: CampaignSpec
    total: int
    completed: int
    cached: int
    quarantined: List[Dict[str, object]]  # per-unit reports
    reissues: int
    worker_deaths: int
    stale_results: int
    failures: Tuple[Dict[str, object], ...]  # fuzz FailureCase dicts
    fuzz_runs: int
    fuzz_steps: int
    coverage_states: int
    coverage_patterns: int
    interrupted: bool
    resume_command: str
    unit_reports: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Fully converged: nothing quarantined, nothing interrupted,
        no property violations found."""
        return not (self.quarantined or self.interrupted or self.failures)

    @property
    def exit_code(self) -> int:
        """CLI convention: 0 converged clean, 1 quarantine/violations,
        130 interrupted."""
        if self.interrupted:
            return 130
        return 0 if self.ok else 1

    def describe(self) -> str:
        parts = [
            f"{self.total} unit(s): {self.completed} completed, "
            f"{self.cached} cached, {len(self.quarantined)} quarantined"
        ]
        parts.append(
            f"{self.reissues} re-issue(s), {self.worker_deaths} worker "
            f"death(s), {self.stale_results} stale result(s)"
        )
        if self.fuzz_runs:
            parts.append(
                f"fuzz: {self.fuzz_runs} runs, {self.fuzz_steps} actions, "
                f"{self.coverage_states} canonical states, "
                f"{self.coverage_patterns} enabled patterns, "
                f"{len(self.failures)} failure(s)"
            )
        return "; ".join(parts)


class _Fleet:
    """The worker processes plus their per-worker channels."""

    def __init__(
        self,
        spec: CampaignSpec,
        store_root: str,
        chaos: Optional[ChaosPlan],
    ) -> None:
        self._spec = spec
        self._store_root = store_root
        self._chaos_dict = chaos.to_dict() if chaos else None
        self._context = multiprocessing.get_context()
        self._next_id = 0
        self.procs: Dict[int, multiprocessing.Process] = {}
        self.inboxes: Dict[int, object] = {}
        self.outboxes: Dict[int, object] = {}
        self.deaths = 0

    def spawn(self) -> int:
        from repro.campaign.worker import worker_main

        worker_id = self._next_id
        self._next_id += 1
        inbox = self._context.Queue()
        outbox = self._context.Queue()
        proc = self._context.Process(
            target=worker_main,
            args=(
                worker_id,
                inbox,
                outbox,
                self._store_root,
                self._chaos_dict,
                self._spec.heartbeat_interval,
            ),
            daemon=True,
        )
        proc.start()
        self.procs[worker_id] = proc
        self.inboxes[worker_id] = inbox
        self.outboxes[worker_id] = outbox
        return worker_id

    def kill(self, worker_id: int) -> None:
        """SIGKILL one worker and discard its (possibly torn) channels."""
        proc = self.procs.pop(worker_id, None)
        if proc is None:
            return
        if proc.is_alive():
            proc.kill()
            proc.join(timeout=2.0)
        self.inboxes.pop(worker_id, None)
        outbox = self.outboxes.pop(worker_id, None)
        if outbox is not None:
            outbox.cancel_join_thread()
        self.deaths += 1

    def drain(self) -> List[Tuple]:
        """Every pending worker message, per-worker FIFO order."""
        messages: List[Tuple] = []
        for worker_id in list(self.outboxes):
            outbox = self.outboxes[worker_id]
            while True:
                try:
                    messages.append(outbox.get_nowait())
                except queue_module.Empty:
                    break
                except (EOFError, OSError):  # torn channel of a dead worker
                    break
        return messages

    def shutdown(self) -> None:
        """Clean stop: poison pills, short join, then force-kill."""
        for worker_id, inbox in list(self.inboxes.items()):
            try:
                inbox.put(None)
            except (ValueError, OSError):
                pass
        deadline = time.monotonic() + 2.0
        for proc in self.procs.values():
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
        for worker_id in list(self.procs):
            proc = self.procs[worker_id]
            if proc.is_alive():
                proc.kill()
                proc.join(timeout=1.0)
        for outbox in self.outboxes.values():
            outbox.cancel_join_thread()
        self.procs.clear()
        self.inboxes.clear()
        self.outboxes.clear()


def _warn_foreign_provenance(store: RunStore, cached_keys: List[str]) -> None:
    """Satellite: archived records reused by --resume must not silently
    mix environments with freshly computed ones."""
    if not cached_keys:
        return
    current = env_fingerprint()
    foreign = 0
    examples: Dict[Tuple[Tuple[str, str], ...], int] = {}
    for record in store.get_many(cached_keys):
        if record.env and record.env != current:
            foreign += 1
            key = tuple(sorted(record.env.items()))
            examples[key] = examples.get(key, 0) + 1
    if foreign:
        details = "; ".join(
            f"{count} from {dict(env)}" for env, count in sorted(examples.items())
        )
        warnings.warn(
            f"campaign resume reuses {foreign} archived unit(s) computed "
            f"under a different environment than the current {current} "
            f"({details}); pass resume=False to recompute",
            ProvenanceWarning,
            stacklevel=3,
        )


def run_campaign(
    spec: CampaignSpec,
    store_root: str,
    *,
    chaos: Optional[ChaosPlan] = None,
    resume: bool = True,
    progress: Optional[Callable[[str], None]] = None,
    stop_when: Optional[Callable[[Dict[str, int]], bool]] = None,
    install_signal_handlers: bool = False,
) -> CampaignOutcome:
    """Run ``spec`` to convergence against a fault-tolerant worker fleet.

    ``chaos`` injects deterministic worker faults (tests/CI only).
    ``resume`` skips units already completed per the store + ledger.
    ``progress`` receives one human-readable line per notable event.
    ``stop_when`` is polled each tick with the current counts — return
    True to trigger the same graceful shutdown as SIGINT (tests use
    this to exercise interruption deterministically).
    ``install_signal_handlers`` converts SIGINT/SIGTERM into that
    graceful shutdown (CLI foreground mode); leave False in library or
    test contexts.
    """
    units = spec.build_units()
    if not units:
        raise ReproError("campaign has no work units")
    by_key: Dict[str, WorkUnit] = {unit.key: unit for unit in units}
    store = RunStore(store_root)
    work_hash = spec.work_hash()
    ledger = store.campaign_ledger(work_hash)

    # Persist the spec beside the ledger so the resume command is exact.
    spec_path = ledger.root / f"{work_hash}.spec.json"
    if not spec_path.exists():
        spec_path.write_text(spec.to_json() + "\n", encoding="utf-8")
    resume_command = (
        f"repro campaign --spec {spec_path} --store {store_root} --resume"
    )

    tracker = UnitTracker(
        [unit.key for unit in units],
        max_retries=spec.max_retries,
        backoff_base=spec.backoff_base,
        backoff_cap=spec.backoff_cap,
    )
    leases = LeaseTable(ttl=spec.lease_ttl, unit_timeout=spec.unit_timeout)
    coverage = CoverageMap()

    def note(text: str) -> None:
        if progress is not None:
            progress(text)

    # -- resume: mark already-finished units cached --------------------------
    cached_cell_keys: List[str] = []
    if resume:
        store.refresh()
        finished = ledger.completed_units()
        previously_quarantined = ledger.quarantined_units()
        for unit in units:
            if unit.kind == "cell" and store.contains(unit.key):
                tracker.on_cached(unit.key)
                cached_cell_keys.append(unit.key)
            elif unit.key in finished:
                tracker.on_cached(unit.key)
        _warn_foreign_provenance(store, cached_cell_keys)
        retrying = previously_quarantined & set(tracker.in_state(PENDING))
        if retrying:
            note(
                f"retrying {len(retrying)} previously quarantined unit(s) "
                f"with a fresh retry budget"
            )

    ledger.append(
        "begin",
        campaign=spec.content_hash(),
        units=len(units),
        cached=len(tracker.in_state(CACHED)),
        resume=resume,
        chaos=chaos.describe() if chaos else None,
    )

    # -- state shared by the loop --------------------------------------------
    fleet = _Fleet(spec, store_root, chaos)
    ready: List[int] = []
    assignment: Dict[int, str] = {}  # worker -> unit key in flight
    summaries: Dict[str, Dict[str, object]] = {}  # unit key -> done summary
    stale_results = 0
    interrupted = False

    previous_handlers = {}
    if install_signal_handlers:

        def _on_signal(signum, frame):
            nonlocal interrupted
            interrupted = True

        for signum in (signal.SIGINT, signal.SIGTERM):
            previous_handlers[signum] = signal.signal(signum, _on_signal)

    def fail_attempt(unit_key: str, cause: str) -> None:
        """One execution attempt ended without completion."""
        leases.revoke(unit_key)
        new_state = tracker.on_expire(unit_key, cause)
        ledger.append("expire", unit=unit_key, cause=cause, state=new_state)
        if new_state == QUARANTINED:
            report = tracker.report(unit_key)
            unit = by_key[unit_key]
            store.quarantine.put(
                unit_key,
                {
                    "content_hash": unit_key,
                    "unit": unit.to_dict(),
                    "campaign": spec.content_hash(),
                    "work_hash": work_hash,
                    "report": report,
                    "chaos": chaos.to_dict() if chaos else None,
                },
            )
            ledger.append("quarantine", unit=unit_key, attempts=report["attempts"])
            note(f"QUARANTINED {unit.label} after {report['attempts']} attempt(s)")
        else:
            note(f"re-issuing {by_key[unit_key].label} ({cause})")

    def handle(message: Tuple) -> None:
        nonlocal stale_results
        kind = message[0]
        if kind == "ready":
            worker_id = message[1]
            if worker_id in fleet.procs and worker_id not in ready:
                ready.append(worker_id)
        elif kind == "heartbeat":
            _, worker_id, unit_key = message
            leases.renew(unit_key, worker_id)
        elif kind == "coverage":
            _, _, _, state_keys, pattern_keys = message
            coverage.merge_keys(state_keys, pattern_keys)
        elif kind == "done":
            _, worker_id, unit_key, summary = message
            if leases.release(unit_key, worker_id):
                assignment.pop(worker_id, None)
                tracker.on_complete(unit_key)
                summaries[unit_key] = summary
                ledger.append("complete", unit=unit_key, worker=worker_id)
                counts = tracker.counts()
                note(
                    f"completed {by_key[unit_key].label} "
                    f"({counts[COMPLETED] + counts[CACHED]}/{len(units)})"
                )
            else:
                # A zombie attempt finished after its lease expired.  The
                # store already absorbed its (identical, content-addressed)
                # records; protocol credit stays with the live holder.
                stale_results += 1
                ledger.append("stale-done", unit=unit_key, worker=worker_id)
        elif kind == "error":
            _, worker_id, unit_key, text = message
            lease = leases.holder(unit_key)
            if lease is not None and lease.worker == worker_id:
                assignment.pop(worker_id, None)
                fail_attempt(unit_key, f"worker-error:{text}")

    # -- main loop -----------------------------------------------------------
    try:
        if not tracker.done:  # fully-cached resumes need no fleet at all
            for _ in range(spec.workers):
                fleet.spawn()

        while not tracker.done:
            if interrupted or (
                stop_when is not None and stop_when(tracker.counts())
            ):
                interrupted = True
                break

            # Dead workers: immediate expiry of their in-flight unit.
            for worker_id in [
                wid for wid, proc in fleet.procs.items() if not proc.is_alive()
            ]:
                unit_key = assignment.pop(worker_id, None)
                fleet.kill(worker_id)
                if worker_id in ready:
                    ready.remove(worker_id)
                ledger.append("worker-death", worker=worker_id, unit=unit_key)
                if unit_key is not None and unit_key in leases:
                    fail_attempt(unit_key, "worker-death")

            # Expired leases: silence or wall-clock overrun.  The holder
            # is not making progress — kill it and replace it.
            for lease in leases.expired():
                cause = lease.expiry_cause(time.monotonic())
                worker_id = lease.worker
                assignment.pop(worker_id, None)
                if worker_id in ready:
                    ready.remove(worker_id)
                fleet.kill(worker_id)
                ledger.append(
                    "lease-expired", unit=lease.unit_key, worker=worker_id,
                    cause=cause, attempt=lease.attempt,
                )
                fail_attempt(lease.unit_key, cause)

            for message in fleet.drain():
                handle(message)

            # Keep the fleet at strength while issuable work remains.
            outstanding = len(tracker.in_state(PENDING)) + len(
                tracker.in_state(LEASED)
            )
            while len(fleet.procs) < min(spec.workers, max(outstanding, 1)):
                fleet.spawn()

            while ready:
                unit_key = tracker.next_issuable()
                if unit_key is None:
                    break
                worker_id = ready.pop(0)
                if worker_id not in fleet.procs:
                    continue
                attempt = tracker.on_issue(unit_key)
                leases.issue(unit_key, worker_id, attempt)
                assignment[worker_id] = unit_key
                fleet.inboxes[worker_id].put(
                    {
                        "unit": by_key[unit_key].to_dict(),
                        "attempt": attempt,
                        "options": {
                            "keep_going": True,
                            "shrink": True,
                            "backend": spec.backend,
                        },
                    }
                )
                ledger.append(
                    "issue", unit=unit_key, worker=worker_id, attempt=attempt
                )

            time.sleep(_TICK)

        if interrupted and assignment:
            # Graceful degradation: let in-flight units land within a
            # short grace window so their records are not wasted.
            grace_deadline = time.monotonic() + min(
                _SHUTDOWN_GRACE, spec.unit_timeout
            )
            note(
                f"interrupted: waiting up to "
                f"{min(_SHUTDOWN_GRACE, spec.unit_timeout):.1f}s for "
                f"{len(assignment)} in-flight unit(s)"
            )
            while assignment and time.monotonic() < grace_deadline:
                for message in fleet.drain():
                    handle(message)
                time.sleep(_TICK)
    finally:
        fleet.shutdown()
        for signum, handler in previous_handlers.items():
            signal.signal(signum, handler)

    # -- accounting ----------------------------------------------------------
    counts = tracker.counts()
    quarantined_reports = [
        tracker.report(key) for key in tracker.in_state(QUARANTINED)
    ]
    failures: List[Dict[str, object]] = []
    seen_failure_hashes = set()
    fuzz_runs = fuzz_steps = 0
    for unit in units:  # canonical unit order keeps reports deterministic
        summary = summaries.get(unit.key)
        if not summary or summary.get("kind") != "fuzz-shard":
            continue
        fuzz_runs += int(summary.get("runs", 0))
        fuzz_steps += int(summary.get("steps", 0))
        for failure in summary.get("failures", []):
            failure_hash = failure.get("content_hash")
            if failure_hash not in seen_failure_hashes:
                seen_failure_hashes.add(failure_hash)
                failures.append(failure)

    ledger.append(
        "end",
        completed=counts[COMPLETED],
        cached=counts[CACHED],
        quarantined=counts[QUARANTINED],
        reissues=counts["reissues"],
        worker_deaths=fleet.deaths,
        interrupted=interrupted,
    )

    return CampaignOutcome(
        spec=spec,
        total=len(units),
        completed=counts[COMPLETED],
        cached=counts[CACHED],
        quarantined=quarantined_reports,
        reissues=counts["reissues"],
        worker_deaths=fleet.deaths,
        stale_results=stale_results,
        failures=tuple(failures),
        fuzz_runs=fuzz_runs,
        fuzz_steps=fuzz_steps,
        coverage_states=coverage.states,
        coverage_patterns=coverage.patterns,
        interrupted=interrupted,
        resume_command=resume_command,
        unit_reports=[tracker.report(unit.key) for unit in units],
    )
