"""Fault-tolerant campaign orchestration over sweeps and fuzzing.

A *campaign* takes a workload this repo already knows how to execute —
a :class:`~repro.experiments.sweep.SweepSpec` grid or a
:class:`~repro.fuzz.spec.FuzzSpec` budget — and runs it to convergence
on a fleet of worker processes that are allowed to crash, wedge, or go
silent at any point, without corrupting results or losing work:

* :mod:`repro.campaign.spec` — :class:`CampaignSpec` and its
  decomposition into spec-hash-keyed :class:`WorkUnit`\\ s,
* :mod:`repro.campaign.lease` — the pure protocol core: expiring
  leases, heartbeat renewal, deterministic backoff, the retry budget
  and quarantine state machine,
* :mod:`repro.campaign.coordinator` — :func:`run_campaign`, the event
  loop that leases units, reaps dead workers, merges streamed fuzz
  coverage, journals everything to the store's campaign ledger, and
  degrades gracefully on SIGINT/SIGTERM,
* :mod:`repro.campaign.worker` — the worker process entry point,
* :mod:`repro.campaign.chaos` — the deterministic fault-injection
  harness (:class:`ChaosPlan`) used by the chaos acceptance tests:
  a chaos-disturbed campaign must converge to a run store
  byte-identical to an undisturbed serial run's.
"""

from repro.campaign.chaos import ChaosFault, ChaosPlan, parse_chaos_spec
from repro.campaign.coordinator import CampaignOutcome, run_campaign
from repro.campaign.lease import Lease, LeaseTable, UnitTracker, backoff_delay
from repro.campaign.spec import CampaignSpec, WorkUnit

__all__ = [
    "CampaignOutcome",
    "CampaignSpec",
    "ChaosFault",
    "ChaosPlan",
    "Lease",
    "LeaseTable",
    "UnitTracker",
    "WorkUnit",
    "backoff_delay",
    "parse_chaos_spec",
    "run_campaign",
]
