"""Deterministic crash-fault injection for campaign workers.

The coordinator's fault tolerance is only trustworthy if it is tested
the way the engine is: against *reproducible* adversity.  A
:class:`ChaosPlan` turns a seed into a pure function from
``(unit key, attempt, injection point)`` to a fault decision — no RNG
state, no wall clock — so a chaos-disturbed campaign is replayable bit
for bit, and the acceptance test can demand its final store be
byte-identical to an undisturbed serial run.

Fault kinds (the ISSUE's menagerie):

* ``kill``    — ``SIGKILL`` the worker process.  Injected at the
  ``start`` point (before any work) or the ``mid`` point (after the
  unit's result is computed but *before* it streams into the store) —
  the mid-cell crash that loses in-flight work and forces a re-issue.
* ``stall``   — the slow-loris worker: sleep while the heartbeat
  thread keeps dutifully renewing the lease.  Only the per-unit
  wall-clock deadline catches this one.
* ``silence`` — stop heartbeating, then sleep.  The lease TTL catches
  it even though the process is alive.
* ``poison``  — any unit whose key starts with a configured prefix is
  killed at *every* attempt: the permanently wedged unit that must
  exhaust the retry budget and land in quarantine.

Decisions hash the attempt number, so a unit killed on its first
attempt usually survives its re-issue — the campaign converges — while
poison prefixes never relent.  Probabilities are per *(unit, attempt)*,
evaluated once at unit start.
"""

from __future__ import annotations

import hashlib
import os
import signal
import time
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = ["ChaosFault", "ChaosPlan", "parse_chaos_spec"]

#: Where in a unit's execution a fault fires.
_POINTS = ("start", "mid")

_FAULT_KINDS = ("kill", "stall", "silence")


def _unit_fraction(seed: int, kind: str, unit_key: str, attempt: int) -> float:
    """A deterministic uniform [0, 1) draw for one fault decision."""
    digest = hashlib.blake2b(
        f"chaos|{seed}|{kind}|{unit_key}|{attempt}".encode("utf-8"),
        digest_size=8,
    ).digest()
    return int.from_bytes(digest, "big") / float(1 << 64)


@dataclass(frozen=True)
class ChaosFault:
    """One concrete injected fault: what, and at which point."""

    kind: str  # kill | stall | silence
    point: str  # start | mid
    seconds: float = 0.0  # sleep length for stall/silence

    def describe(self) -> str:
        where = "mid-unit" if self.point == "mid" else "at start"
        if self.kind == "kill":
            return f"SIGKILL {where}"
        return f"{self.kind} {self.seconds:.2f}s {where}"


@dataclass(frozen=True)
class ChaosPlan:
    """A seed-derived, serializable schedule of worker faults.

    ``kill``/``stall``/``silence`` are per-(unit, attempt)
    probabilities in [0, 1]; ``poison`` lists unit-key prefixes that
    are killed unconditionally on every attempt.  ``stall_seconds`` and
    ``silence_seconds`` size the sleeps — set them comfortably past the
    campaign's unit timeout and lease TTL respectively, or the faults
    are too gentle to trigger anything.
    """

    seed: int = 0
    kill: float = 0.0
    stall: float = 0.0
    silence: float = 0.0
    stall_seconds: float = 30.0
    silence_seconds: float = 30.0
    poison: Tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        for name, value in (
            ("kill", self.kill),
            ("stall", self.stall),
            ("silence", self.silence),
        ):
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"chaos {name} probability must be in [0, 1], got {value}"
                )
        if self.stall_seconds <= 0 or self.silence_seconds <= 0:
            raise ConfigurationError("chaos sleep durations must be > 0")
        for prefix in self.poison:
            if not prefix:
                raise ConfigurationError("chaos poison prefixes must be non-empty")

    @property
    def active(self) -> bool:
        return bool(
            self.kill or self.stall or self.silence or self.poison
        )

    # -- decisions -----------------------------------------------------------

    def decide(self, unit_key: str, attempt: int) -> Optional[ChaosFault]:
        """The fault (if any) for this execution attempt of this unit.

        Pure: same plan, unit and attempt always decide identically,
        in every process, on every host.  Poison outranks everything;
        otherwise kill, stall, silence are tried in that fixed order
        with independent draws, and a kill flips a second coin for its
        injection point (start vs mid-cell).
        """
        if any(unit_key.startswith(prefix) for prefix in self.poison):
            return ChaosFault(kind="kill", point="start")
        if _unit_fraction(self.seed, "kill", unit_key, attempt) < self.kill:
            point_draw = _unit_fraction(self.seed, "kill-point", unit_key, attempt)
            return ChaosFault(
                kind="kill", point="mid" if point_draw < 0.5 else "start"
            )
        if _unit_fraction(self.seed, "stall", unit_key, attempt) < self.stall:
            return ChaosFault(
                kind="stall", point="start", seconds=self.stall_seconds
            )
        if _unit_fraction(self.seed, "silence", unit_key, attempt) < self.silence:
            return ChaosFault(
                kind="silence", point="start", seconds=self.silence_seconds
            )
        return None

    # -- execution (worker side) ---------------------------------------------

    def inject(
        self,
        fault: Optional[ChaosFault],
        point: str,
        *,
        heartbeat_stop: Optional[object] = None,
    ) -> None:
        """Perform ``fault`` if it fires at ``point`` (worker process).

        ``kill`` never returns.  ``silence`` sets ``heartbeat_stop``
        (a :class:`threading.Event`) before sleeping so the worker goes
        quiet; ``stall`` sleeps with heartbeats still flowing.  The
        sleeps are plain ``time.sleep`` — the coordinator is expected
        to SIGKILL the worker once the lease expires, so the sleep
        length only needs to exceed the relevant deadline.
        """
        if fault is None or fault.point != point:
            return
        if fault.kind == "kill":
            os.kill(os.getpid(), signal.SIGKILL)  # never returns
        if fault.kind == "silence" and heartbeat_stop is not None:
            heartbeat_stop.set()
        time.sleep(fault.seconds)

    # -- serialisation (plans cross the fork into workers) -------------------

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "kill": self.kill,
            "stall": self.stall,
            "silence": self.silence,
            "stall_seconds": self.stall_seconds,
            "silence_seconds": self.silence_seconds,
            "poison": list(self.poison),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ChaosPlan":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"chaos plan must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "seed", "kill", "stall", "silence",
            "stall_seconds", "silence_seconds", "poison",
        }
        if unknown:
            raise ConfigurationError(
                f"chaos plan has unknown keys {sorted(unknown)}"
            )
        return cls(
            seed=int(data.get("seed", 0)),
            kill=float(data.get("kill", 0.0)),
            stall=float(data.get("stall", 0.0)),
            silence=float(data.get("silence", 0.0)),
            stall_seconds=float(data.get("stall_seconds", 30.0)),
            silence_seconds=float(data.get("silence_seconds", 30.0)),
            poison=tuple(data.get("poison", ())),
        )

    def describe(self) -> str:
        parts = [f"seed={self.seed}"]
        for name in _FAULT_KINDS:
            value = getattr(self, name)
            if value:
                parts.append(f"{name}={value:g}")
        if self.poison:
            parts.append(f"poison={','.join(self.poison)}")
        return "chaos(" + " ".join(parts) + ")"


def parse_chaos_spec(text: str) -> ChaosPlan:
    """Parse the CLI's ``--chaos`` string into a plan.

    Comma-separated ``key=value`` pairs over the plan's fields, e.g.
    ``seed=7,kill=0.4,stall=0.1,silence=0.1`` or
    ``kill=0.3,poison=ab12`` (``poison`` may repeat for several
    prefixes).  A bare ``--chaos seed=N`` with no probabilities is
    rejected — it would inject nothing and silently test nothing.
    """
    values: Dict[str, object] = {}
    poison = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if "=" not in chunk:
            raise ConfigurationError(
                f"bad chaos entry {chunk!r}; expected key=value"
            )
        key, _, raw = chunk.partition("=")
        key = key.strip()
        raw = raw.strip()
        if key == "poison":
            poison.append(raw)
            continue
        if key not in (
            "seed", "kill", "stall", "silence",
            "stall_seconds", "silence_seconds",
        ):
            raise ConfigurationError(
                f"unknown chaos key {key!r}; expected one of seed, kill, "
                "stall, silence, stall_seconds, silence_seconds, poison"
            )
        try:
            values[key] = int(raw) if key == "seed" else float(raw)
        except ValueError:
            raise ConfigurationError(
                f"bad chaos value {raw!r} for {key!r}"
            ) from None
    if poison:
        values["poison"] = tuple(poison)
    plan = ChaosPlan.from_dict(values)
    if not plan.active:
        raise ConfigurationError(
            "chaos spec injects nothing; give at least one of "
            "kill/stall/silence probabilities or a poison prefix"
        )
    return plan
