"""Lease-based unit coordination: the campaign protocol's pure core.

A campaign decomposes into spec-hash-keyed work units; the coordinator
hands each unit to a worker under an *expiring lease* and the layer
here decides, with no I/O and no real clock, everything that makes the
protocol safe:

* :class:`Lease` / :class:`LeaseTable` — at most one live lease per
  unit, heartbeat renewal against a monotonic clock, two independent
  expiry causes (heartbeat silence past the TTL, and a hard per-unit
  wall-clock deadline that renewal can never extend — the slow-loris
  backstop),
* :func:`backoff_delay` — exponential re-issue backoff with
  *deterministic* jitter (hash of unit key and attempt, not an RNG),
  so retries spread out yet campaigns replay exactly,
* :class:`UnitTracker` — the unit state machine
  (``pending -> leased -> completed | quarantined``, plus ``cached``
  for resume hits) enforcing the retry budget: a unit whose lease
  expired ``max_retries + 1`` times is quarantined as a poison
  artifact rather than re-issued forever.

Everything is injected-clock and therefore property-testable: the
hypothesis suite drives arbitrary issue/renew/expire/kill schedules
through these classes and asserts no unit is ever double-leased and no
unit is ever lost (see ``tests/test_lease.py``).  Real execution can
still be at-least-once — a worker whose lease expired may be mid-run
when it is killed — which is why completions stream into the
content-addressed :class:`~repro.store.jsonl.RunStore`, where duplicate
puts of deterministic records are idempotent.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError

__all__ = [
    "Lease",
    "LeaseTable",
    "UnitTracker",
    "backoff_delay",
]


def backoff_delay(
    unit_key: str,
    attempt: int,
    *,
    base: float = 0.5,
    cap: float = 30.0,
) -> float:
    """Re-issue delay before attempt ``attempt`` (1-based) of a unit.

    Exponential in the attempt number, capped, plus up to one ``base``
    of jitter derived by hashing the unit key and attempt — fully
    deterministic, so a replayed campaign re-issues at identical
    offsets, yet distinct units never thundering-herd the same instant.
    Attempt 1 (the first issue) has no delay.
    """
    if attempt <= 1:
        return 0.0
    digest = hashlib.blake2b(
        f"backoff|{unit_key}|{attempt}".encode("utf-8"), digest_size=8
    ).digest()
    jitter = int.from_bytes(digest, "big") / float(1 << 64)  # [0, 1)
    delay = min(cap, base * (2.0 ** (attempt - 2)))
    return delay + base * jitter


@dataclass
class Lease:
    """One worker's time-bounded claim on one work unit."""

    unit_key: str
    worker: int
    attempt: int  # 1-based execution attempt this lease represents
    issued_at: float
    ttl: float
    deadline: float  # issued_at + ttl, pushed forward by renew()
    unit_deadline: float  # issued_at + unit_timeout; renewal never moves it

    def expired(self, now: float) -> bool:
        """True once the lease no longer entitles the worker to the unit.

        Either cause suffices: the worker went silent for a full TTL
        (crash, wedge, heartbeat loss), or the unit has been running
        past its wall-clock budget even with dutiful heartbeats (the
        slow-loris case).
        """
        return now >= self.deadline or now >= self.unit_deadline

    def expiry_cause(self, now: float) -> str:
        if now >= self.unit_deadline:
            return "unit-timeout"
        if now >= self.deadline:
            return "heartbeat-silence"
        return "live"


class LeaseTable:
    """The live leases of a campaign: at most one per unit, clock-driven.

    ``clock`` defaults to :func:`time.monotonic` (lease arithmetic must
    never jump with wall-clock steps); tests inject a fake clock.
    """

    def __init__(
        self,
        *,
        ttl: float,
        unit_timeout: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if ttl <= 0:
            raise ConfigurationError("lease ttl must be > 0 seconds")
        if unit_timeout <= 0:
            raise ConfigurationError("unit timeout must be > 0 seconds")
        self.ttl = ttl
        self.unit_timeout = unit_timeout
        self._clock = clock
        self._by_unit: Dict[str, Lease] = {}

    def __len__(self) -> int:
        return len(self._by_unit)

    def __contains__(self, unit_key: str) -> bool:
        return unit_key in self._by_unit

    def holder(self, unit_key: str) -> Optional[Lease]:
        return self._by_unit.get(unit_key)

    def by_worker(self, worker: int) -> List[Lease]:
        return [
            lease for lease in self._by_unit.values() if lease.worker == worker
        ]

    def issue(self, unit_key: str, worker: int, attempt: int) -> Lease:
        """Grant ``worker`` a fresh lease on ``unit_key``.

        Refuses (loudly — this is a coordinator bug, not a race) while a
        lease on the unit is still live; the caller must ``revoke`` or
        observe expiry first.  That refusal is the no-double-execution
        guarantee the property tests pin.
        """
        existing = self._by_unit.get(unit_key)
        now = self._clock()
        if existing is not None and not existing.expired(now):
            raise ConfigurationError(
                f"unit {unit_key[:16]} is already leased to worker "
                f"{existing.worker} (attempt {existing.attempt})"
            )
        lease = Lease(
            unit_key=unit_key,
            worker=worker,
            attempt=attempt,
            issued_at=now,
            ttl=self.ttl,
            deadline=now + self.ttl,
            unit_deadline=now + self.unit_timeout,
        )
        self._by_unit[unit_key] = lease
        return lease

    def renew(self, unit_key: str, worker: int) -> bool:
        """Heartbeat: push the silence deadline forward one TTL.

        Returns ``False`` for stale heartbeats — no lease, a different
        holder, or a lease already past either deadline.  A renewal can
        never resurrect an expired lease nor extend the unit's hard
        wall-clock deadline.
        """
        lease = self._by_unit.get(unit_key)
        now = self._clock()
        if lease is None or lease.worker != worker or lease.expired(now):
            return False
        lease.deadline = min(now + self.ttl, lease.unit_deadline)
        return True

    def release(self, unit_key: str, worker: int) -> bool:
        """Completion: drop the lease if ``worker`` still holds it live.

        A stale release (expired lease, or the unit was re-issued to
        someone else) returns ``False`` and leaves the table untouched:
        the work itself is not wasted — records already streamed into
        the idempotent store — but the *protocol* credit goes to the
        live holder.
        """
        lease = self._by_unit.get(unit_key)
        if lease is None or lease.worker != worker:
            return False
        if lease.expired(self._clock()):
            return False
        del self._by_unit[unit_key]
        return True

    def revoke(self, unit_key: str) -> Optional[Lease]:
        """Forcibly drop a lease (worker death noticed out-of-band)."""
        return self._by_unit.pop(unit_key, None)

    def expired(self) -> List[Lease]:
        """Leases past either deadline, in issue order (not yet removed)."""
        now = self._clock()
        return [
            lease
            for lease in self._by_unit.values()
            if lease.expired(now)
        ]


# Unit lifecycle states (strings, not an enum: they go straight into
# ledger events and accounting dicts).
PENDING = "pending"
LEASED = "leased"
COMPLETED = "completed"
QUARANTINED = "quarantined"
CACHED = "cached"


@dataclass
class _UnitEntry:
    key: str
    index: int  # canonical order
    state: str = PENDING
    attempts: int = 0  # executions started (= leases issued)
    reissues: int = 0  # expiry-triggered re-issues
    available_at: float = 0.0  # backoff gate for the next issue
    last_cause: str = ""  # why the last lease ended early
    history: List[str] = field(default_factory=list)


class UnitTracker:
    """The campaign's unit state machine (pure, clock-injected).

    Drives ``pending -> leased -> completed`` with expiry looping a
    unit back to ``pending`` behind a deterministic backoff gate, until
    the retry budget (``max_retries`` re-issues *after* the first
    attempt) is spent and the unit is ``quarantined``.  ``cached`` is a
    terminal state for resume hits that never execute.

    The tracker owns no processes and does no I/O — the coordinator
    asks it what to do (:meth:`next_issuable`), tells it what happened
    (:meth:`on_*`), and the hypothesis suite drives it through
    adversarial schedules to pin the invariants.
    """

    def __init__(
        self,
        unit_keys: List[str],
        *,
        max_retries: int,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if len(set(unit_keys)) != len(unit_keys):
            raise ConfigurationError("duplicate work-unit keys in campaign")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._clock = clock
        self._units: Dict[str, _UnitEntry] = {
            key: _UnitEntry(key=key, index=index)
            for index, key in enumerate(unit_keys)
        }

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._units)

    def state(self, key: str) -> str:
        return self._units[key].state

    def attempts(self, key: str) -> int:
        return self._units[key].attempts

    def in_state(self, state: str) -> List[str]:
        """Unit keys in ``state``, in canonical order."""
        return [
            entry.key
            for entry in sorted(self._units.values(), key=lambda e: e.index)
            if entry.state == state
        ]

    @property
    def done(self) -> bool:
        """True once every unit reached a terminal state."""
        return all(
            entry.state in (COMPLETED, QUARANTINED, CACHED)
            for entry in self._units.values()
        )

    def next_issuable(self) -> Optional[str]:
        """The next pending unit whose backoff gate has opened.

        Canonical order among eligible units, so serial campaigns and
        undisturbed fleets issue in the same order.
        """
        now = self._clock()
        for entry in sorted(self._units.values(), key=lambda e: e.index):
            if entry.state == PENDING and entry.available_at <= now:
                return entry.key
        return None

    def next_available_at(self) -> Optional[float]:
        """Earliest backoff gate among pending units (None when empty)."""
        gates = [
            entry.available_at
            for entry in self._units.values()
            if entry.state == PENDING
        ]
        return min(gates) if gates else None

    # -- transitions ---------------------------------------------------------

    def _entry(self, key: str) -> _UnitEntry:
        try:
            return self._units[key]
        except KeyError:
            raise ConfigurationError(
                f"unknown work unit {key[:16]}"
            ) from None

    def on_cached(self, key: str) -> None:
        """Resume hit: the unit's artifact is already archived."""
        entry = self._entry(key)
        if entry.state != PENDING:
            raise ConfigurationError(
                f"unit {key[:16]} cannot be cached from state {entry.state}"
            )
        entry.state = CACHED
        entry.history.append(CACHED)

    def on_issue(self, key: str) -> int:
        """A lease was granted; returns the attempt number (1-based)."""
        entry = self._entry(key)
        if entry.state != PENDING:
            raise ConfigurationError(
                f"unit {key[:16]} cannot be issued from state {entry.state}"
            )
        entry.state = LEASED
        entry.attempts += 1
        entry.history.append(f"issue:{entry.attempts}")
        return entry.attempts

    def on_complete(self, key: str) -> None:
        """The live leaseholder finished the unit."""
        entry = self._entry(key)
        if entry.state != LEASED:
            raise ConfigurationError(
                f"unit {key[:16]} cannot complete from state {entry.state}"
            )
        entry.state = COMPLETED
        entry.history.append(COMPLETED)

    def on_expire(self, key: str, cause: str) -> str:
        """The lease ended without completion (expiry or worker death).

        Returns the unit's new state: ``pending`` (re-issue scheduled
        behind the backoff gate) or ``quarantined`` (budget spent).
        """
        entry = self._entry(key)
        if entry.state != LEASED:
            raise ConfigurationError(
                f"unit {key[:16]} cannot expire from state {entry.state}"
            )
        entry.last_cause = cause
        entry.history.append(f"expire:{cause}")
        if entry.attempts > self.max_retries:
            entry.state = QUARANTINED
            entry.history.append(QUARANTINED)
            return QUARANTINED
        entry.state = PENDING
        entry.available_at = self._clock() + backoff_delay(
            key,
            entry.attempts + 1,
            base=self.backoff_base,
            cap=self.backoff_cap,
        )
        entry.reissues += 1
        return PENDING

    # -- accounting ----------------------------------------------------------

    def counts(self) -> Dict[str, int]:
        """State histogram plus total re-issues (the campaign summary)."""
        counts = {
            PENDING: 0,
            LEASED: 0,
            COMPLETED: 0,
            QUARANTINED: 0,
            CACHED: 0,
        }
        reissues = 0
        for entry in self._units.values():
            counts[entry.state] += 1
            reissues += entry.reissues
        counts["reissues"] = reissues
        return counts

    def report(self, key: str) -> Dict[str, object]:
        """One unit's full lifecycle (quarantine artifacts embed this)."""
        entry = self._entry(key)
        return {
            "unit": key,
            "index": entry.index,
            "state": entry.state,
            "attempts": entry.attempts,
            "reissues": entry.reissues,
            "last_cause": entry.last_cause,
            "history": list(entry.history),
        }
