"""The declarative campaign description and its work-unit decomposition.

A :class:`CampaignSpec` wraps exactly one workload — a
:class:`~repro.experiments.sweep.SweepSpec` or a
:class:`~repro.fuzz.spec.FuzzSpec` — plus the fault-tolerance knobs
(worker count, lease TTL, per-unit wall-clock timeout, retry budget,
backoff shape).  Like every other spec in the codebase it is frozen,
JSON-round-trippable and content-hashed.

Two hashes matter:

* :meth:`CampaignSpec.work_hash` covers only the *work* (workload +
  shard count): it names the campaign ledger, so resuming with a
  different worker count or lease TTL continues the same campaign,
* :meth:`CampaignSpec.content_hash` covers everything, for exact
  replay of a specific configuration.

:meth:`CampaignSpec.build_units` flattens the workload into
spec-hash-keyed :class:`WorkUnit`\\ s in canonical order:

* a sweep becomes one unit per cell, keyed by the cell's
  ``ExperimentSpec`` content hash — exactly the key the
  :class:`~repro.store.jsonl.RunStore` archives under, so resume and
  byte-identity with serial sweeps hold by construction,
* a fuzz campaign becomes ``shards`` independent deterministic shard
  campaigns (the :func:`repro.fuzz.fuzzer.shard_specs` decomposition,
  shared with ``fuzz_parallel``), keyed by each shard's ``FuzzSpec``
  content hash.  The shard count is part of the work identity and
  deliberately *not* derived from the worker count: a 3-worker resume
  of a 16-worker campaign reuses every completed shard.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.experiments.sweep import SweepSpec, expand_cells
from repro.fuzz.spec import FuzzSpec

__all__ = ["CampaignSpec", "WorkUnit"]


@dataclass(frozen=True)
class WorkUnit:
    """One leased unit of campaign work (picklable, queue-crossable)."""

    key: str  # the unit's spec content hash — store key and lease key
    kind: str  # "cell" | "fuzz-shard"
    index: int  # canonical issue order
    label: str  # human-readable accounting name
    payload: Dict[str, object]  # the unit's own spec dict

    def to_dict(self) -> Dict[str, object]:
        return {
            "key": self.key,
            "kind": self.kind,
            "index": self.index,
            "label": self.label,
            "payload": self.payload,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "WorkUnit":
        return cls(
            key=data["key"],
            kind=data["kind"],
            index=int(data["index"]),
            label=data["label"],
            payload=data["payload"],
        )


@dataclass(frozen=True)
class CampaignSpec:
    """One fault-tolerant campaign, fully described and serialisable."""

    kind: str  # "sweep" | "fuzz"
    sweep: Optional[SweepSpec] = None
    fuzz: Optional[FuzzSpec] = None
    workers: int = 2
    lease_ttl: float = 10.0
    unit_timeout: float = 120.0
    max_retries: int = 3
    backoff_base: float = 0.5
    backoff_cap: float = 30.0
    shards: int = 4  # fuzz only; fixed so work identity ignores workers
    backend: str = "object"  # cell execution engine: "object" | "batch"

    def __post_init__(self) -> None:
        if self.backend not in ("object", "batch"):
            raise ConfigurationError(
                f"campaign backend must be 'object' or 'batch', "
                f"got {self.backend!r}"
            )
        if self.kind not in ("sweep", "fuzz"):
            raise ConfigurationError(
                f"campaign kind must be 'sweep' or 'fuzz', got {self.kind!r}"
            )
        if self.kind == "sweep" and self.sweep is None:
            raise ConfigurationError("sweep campaign needs a SweepSpec")
        if self.kind == "fuzz" and self.fuzz is None:
            raise ConfigurationError("fuzz campaign needs a FuzzSpec")
        if self.sweep is not None and self.fuzz is not None:
            raise ConfigurationError(
                "campaign wraps exactly one workload, not both"
            )
        if self.workers < 1:
            raise ConfigurationError("workers must be >= 1")
        if self.lease_ttl <= 0:
            raise ConfigurationError("lease_ttl must be > 0 seconds")
        if self.unit_timeout <= 0:
            raise ConfigurationError("unit_timeout must be > 0 seconds")
        if self.max_retries < 0:
            raise ConfigurationError("max_retries must be >= 0")
        if self.backoff_base <= 0 or self.backoff_cap < self.backoff_base:
            raise ConfigurationError(
                "backoff_base must be > 0 and backoff_cap >= backoff_base"
            )
        if self.shards < 1:
            raise ConfigurationError("shards must be >= 1")

    @property
    def heartbeat_interval(self) -> float:
        """Workers renew leases at a quarter TTL: three missed beats kill."""
        return max(0.02, self.lease_ttl / 4.0)

    def with_options(self, **changes) -> "CampaignSpec":
        return replace(self, **changes)

    # -- decomposition -------------------------------------------------------

    def build_units(self) -> List[WorkUnit]:
        """The campaign's work units in canonical order."""
        if self.kind == "sweep":
            units = []
            for index, cell in enumerate(expand_cells(self.sweep)):
                spec = cell.to_experiment_spec()
                units.append(
                    WorkUnit(
                        key=spec.content_hash(),
                        kind="cell",
                        index=index,
                        label=(
                            f"{cell.algorithm} {cell.ring_size}x"
                            f"{cell.agent_count} {cell.scheduler} "
                            f"trial {cell.trial}"
                        ),
                        payload={"spec": spec.to_dict()},
                    )
                )
            return units
        from repro.fuzz.fuzzer import shard_specs

        shards = shard_specs(self.fuzz, self.shards)
        return [
            WorkUnit(
                key=shard.content_hash(),
                kind="fuzz-shard",
                index=index,
                label=(
                    f"{shard.algorithm} fuzz shard {index + 1}/{len(shards)} "
                    f"(budget {shard.budget})"
                ),
                payload={"spec": shard.to_dict()},
            )
            for index, shard in enumerate(shards)
        ]

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        fleet: Dict[str, object] = {
            "workers": self.workers,
            "lease_ttl": self.lease_ttl,
            "unit_timeout": self.unit_timeout,
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_cap": self.backoff_cap,
            "shards": self.shards,
        }
        # The backend is a fleet knob, not part of the work (both engines
        # archive byte-identical records).  Emitted only when non-default
        # so pre-existing campaign content hashes stay stable.
        if self.backend != "object":
            fleet["backend"] = self.backend
        return {
            "kind": self.kind,
            "sweep": self.sweep.to_dict() if self.sweep else None,
            "fuzz": self.fuzz.to_dict() if self.fuzz else None,
            "fleet": fleet,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CampaignSpec":
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"campaign spec must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - {"kind", "sweep", "fuzz", "fleet"}
        if unknown:
            raise ConfigurationError(
                f"campaign spec has unknown keys {sorted(unknown)}"
            )
        fleet = data.get("fleet", {})
        if not isinstance(fleet, dict):
            raise ConfigurationError("campaign spec 'fleet' must be a dict")
        sweep_data = data.get("sweep")
        fuzz_data = data.get("fuzz")
        return cls(
            kind=data.get("kind", ""),
            sweep=SweepSpec.from_dict(sweep_data) if sweep_data else None,
            fuzz=FuzzSpec.from_dict(fuzz_data) if fuzz_data else None,
            workers=int(fleet.get("workers", 2)),
            lease_ttl=float(fleet.get("lease_ttl", 10.0)),
            unit_timeout=float(fleet.get("unit_timeout", 120.0)),
            max_retries=int(fleet.get("max_retries", 3)),
            backoff_base=float(fleet.get("backoff_base", 0.5)),
            backoff_cap=float(fleet.get("backoff_cap", 30.0)),
            shards=int(fleet.get("shards", 4)),
            backend=str(fleet.get("backend", "object")),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(
                f"campaign spec is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "CampaignSpec":
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as error:
            raise ConfigurationError(
                f"cannot read campaign spec {path!r}: {error}"
            ) from None

    # -- identity ------------------------------------------------------------

    def _hash_payload(self, data: Dict[str, object]) -> str:
        canonical = json.dumps(data, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def content_hash(self) -> str:
        """SHA-256 over the full spec (workload + fleet knobs)."""
        return self._hash_payload(self.to_dict())

    def work_hash(self) -> str:
        """SHA-256 over the *work* alone: workload + shard count.

        Names the campaign ledger; fleet knobs (workers, TTLs, retry
        budget) can change between resumes without orphaning progress.
        """
        return self._hash_payload(
            {
                "kind": self.kind,
                "sweep": self.sweep.to_dict() if self.sweep else None,
                "fuzz": self.fuzz.to_dict() if self.fuzz else None,
                "shards": self.shards,
            }
        )

    def describe(self) -> str:
        if self.kind == "sweep":
            workload = (
                f"sweep {len(self.sweep.algorithms)} algorithm(s) x "
                f"{len(self.sweep.grid)} size(s) x "
                f"{len(self.sweep.schedulers)} scheduler(s) x "
                f"{self.sweep.trials} trial(s)"
            )
        else:
            workload = (
                f"fuzz {self.fuzz.algorithm} budget {self.fuzz.budget} "
                f"in {self.shards} shard(s)"
            )
        return (
            f"{workload}; {self.workers} worker(s), lease ttl "
            f"{self.lease_ttl:g}s, unit timeout {self.unit_timeout:g}s, "
            f"max retries {self.max_retries}"
        )
