"""The declarative, serializable experiment description.

One :class:`ExperimentSpec` is everything a runner needs to reproduce an
experiment: the algorithm name, a declarative :class:`PlacementSpec`, a
scheduler spec string (see :mod:`repro.registry`), the engine options
and the run limits.  The same frozen value drives every entry point —
``run_experiment(spec)``, ``build_engine(spec)``, sweep cells
(:meth:`repro.experiments.sweep.SweepCell.to_experiment_spec`), the
model checker and the ``repro run --spec file.json`` / ``repro spec``
CLI commands — so a JSON file, a sweep cell and a command line all
denote experiments in exactly one vocabulary.

Contracts:

* **Lossless round trip** — ``ExperimentSpec.from_dict(spec.to_dict())
  == spec`` and likewise through :meth:`ExperimentSpec.to_json`; the
  test suite pins this with a Hypothesis strategy over specs.
* **Byte-identical replay** — building and running an engine from a
  spec produces the same ``activation_log``, ``Metrics`` and
  ``RunResult.row()`` as the equivalent keyword-argument calls.
* **Stable content hash** — :meth:`ExperimentSpec.content_hash` is the
  SHA-256 of the canonical JSON form: identical across processes,
  interpreter runs and platforms, usable for caching and for deriving
  per-cell seeds (:meth:`ExperimentSpec.derive_seed`).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, fields, replace
from typing import Dict, Optional, Tuple, Union

from repro.errors import ConfigurationError
from repro.registry import (
    SchedulerSpec,
    format_scheduler_spec,
    get_algorithm,
    parse_scheduler_spec,
)
from repro.ring.faults import LinkSpec
from repro.ring.placement import (
    Placement,
    equidistant_placement,
    placement_from_distances,
    quarter_packed_placement,
    random_placement,
)

__all__ = [
    "ExperimentSpec",
    "PlacementSpec",
    "run_spec",
]

#: Placement kinds and the fields each one requires.
_PLACEMENT_KINDS: Dict[str, Tuple[str, ...]] = {
    "random": ("ring_size", "agent_count", "seed"),
    "equidistant": ("ring_size", "agent_count"),
    "quarter": ("ring_size", "agent_count"),
    "distances": ("distances",),
    "homes": ("ring_size", "homes"),
}


@dataclass(frozen=True)
class PlacementSpec:
    """A declarative initial configuration (JSON-safe, buildable).

    ``kind`` selects the placement family; the other fields are required
    or forbidden per kind:

    * ``random`` — ``ring_size``, ``agent_count``, ``seed`` (uniformly
      random distinct homes via :func:`repro.ring.placement.random_placement`),
    * ``equidistant`` / ``quarter`` — ``ring_size``, ``agent_count``,
    * ``distances`` — an explicit distance sequence,
    * ``homes`` — ``ring_size`` plus explicit home nodes (the lossless
      image of any concrete :class:`~repro.ring.placement.Placement`).
    """

    kind: str = "random"
    ring_size: Optional[int] = None
    agent_count: Optional[int] = None
    seed: Optional[int] = None
    distances: Optional[Tuple[int, ...]] = None
    homes: Optional[Tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.kind not in _PLACEMENT_KINDS:
            raise ConfigurationError(
                f"unknown placement kind {self.kind!r}; "
                f"choose from {sorted(_PLACEMENT_KINDS)}"
            )
        for name in ("distances", "homes"):
            value = getattr(self, name)
            if value is not None:
                object.__setattr__(self, name, tuple(int(v) for v in value))
        required = _PLACEMENT_KINDS[self.kind]
        for spec_field in fields(self):
            if spec_field.name == "kind":
                continue
            value = getattr(self, spec_field.name)
            if spec_field.name in required:
                if value is None:
                    raise ConfigurationError(
                        f"placement kind {self.kind!r} requires "
                        f"{spec_field.name!r}"
                    )
            elif value is not None:
                raise ConfigurationError(
                    f"placement kind {self.kind!r} does not take "
                    f"{spec_field.name!r}"
                )

    @classmethod
    def from_placement(cls, placement: Placement) -> "PlacementSpec":
        """The lossless ``homes`` image of a concrete placement."""
        return cls(
            kind="homes",
            ring_size=placement.ring_size,
            homes=placement.homes,
        )

    def build(self) -> Placement:
        """Materialise the concrete :class:`Placement` this spec denotes."""
        if self.kind == "random":
            return random_placement(
                self.ring_size, self.agent_count, random.Random(self.seed)
            )
        if self.kind == "equidistant":
            return equidistant_placement(self.ring_size, self.agent_count)
        if self.kind == "quarter":
            return quarter_packed_placement(self.ring_size, self.agent_count)
        if self.kind == "distances":
            return placement_from_distances(self.distances)
        return Placement(ring_size=self.ring_size, homes=self.homes)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict carrying ``kind`` plus its required fields only."""
        out: Dict[str, object] = {"kind": self.kind}
        for name in _PLACEMENT_KINDS[self.kind]:
            value = getattr(self, name)
            out[name] = list(value) if isinstance(value, tuple) else value
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "PlacementSpec":
        """Inverse of :meth:`to_dict` (unknown keys are rejected)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"placement spec must be a dict, got {type(data).__name__}"
            )
        known = {spec_field.name for spec_field in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"placement spec has unknown keys {sorted(unknown)}"
            )
        return cls(**data)


def _coerce_scheduler(value: Union[str, SchedulerSpec]) -> str:
    """Normalise any accepted scheduler form to the canonical spec string."""
    return format_scheduler_spec(parse_scheduler_spec(value))


@dataclass(frozen=True)
class ExperimentSpec:
    """One experiment, fully described and JSON-serialisable.

    ``scheduler`` is stored as the *canonical* scheduler spec string
    (any accepted spelling — aliases, whitespace, a parsed
    :class:`~repro.registry.SchedulerSpec` — is normalised on
    construction), so equal experiments compare equal and hash equal.
    ``scheduler_seed`` is the context seed filling any seed parameter
    the spec string leaves unpinned.  Engine options and limits mirror
    :func:`repro.experiments.runner.build_engine`.

    ``links`` is the optional link-fault envelope
    (:class:`~repro.ring.faults.LinkSpec`).  ``None`` — and any
    *inactive* spec, which is normalised to ``None`` on construction —
    means reliable links: the serialised form then omits the field
    entirely, so the content hash of every pre-fault experiment is
    untouched.
    """

    algorithm: str
    placement: PlacementSpec
    scheduler: str = "sync"
    scheduler_seed: int = 0
    max_steps: Optional[int] = None
    memory_audit_interval: int = 16
    collect_metrics: bool = True
    validate_enabledness: bool = False
    record_views: bool = False
    links: Optional[LinkSpec] = None

    def __post_init__(self) -> None:
        get_algorithm(self.algorithm)  # raises on unknown names
        if not isinstance(self.placement, PlacementSpec):
            raise ConfigurationError(
                "placement must be a PlacementSpec, got "
                f"{type(self.placement).__name__} (use "
                "PlacementSpec.from_placement for concrete placements)"
            )
        object.__setattr__(self, "scheduler", _coerce_scheduler(self.scheduler))
        if self.links is not None:
            if not isinstance(self.links, LinkSpec):
                raise ConfigurationError(
                    f"links must be a LinkSpec, got {type(self.links).__name__}"
                )
            if not self.links.active:
                # Inactive spec == reliable links: normalise so equal
                # experiments compare, hash and serialise identically.
                object.__setattr__(self, "links", None)

    # -- construction helpers ------------------------------------------------

    @classmethod
    def for_placement(
        cls, algorithm: str, placement: Placement, **kwargs
    ) -> "ExperimentSpec":
        """Spec for a concrete placement (stored losslessly as homes)."""
        return cls(
            algorithm=algorithm,
            placement=PlacementSpec.from_placement(placement),
            **kwargs,
        )

    def with_options(self, **changes) -> "ExperimentSpec":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)

    # -- materialisation -----------------------------------------------------

    def build_placement(self) -> Placement:
        """The concrete placement this spec denotes."""
        return self.placement.build()

    def build_scheduler(self):
        """A fresh scheduler instance (unpinned seeds <- ``scheduler_seed``)."""
        return parse_scheduler_spec(self.scheduler).build(seed=self.scheduler_seed)

    def build_engine(self):
        """A fresh engine wired exactly as this spec describes."""
        from repro.experiments.runner import build_engine

        return build_engine(self)

    def run(self):
        """Run to quiescence and verify (see :func:`run_spec`)."""
        return run_spec(self)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-ready form: algorithm, placement, scheduler,
        engine options and limits as nested plain dicts."""
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "placement": self.placement.to_dict(),
            "scheduler": {"spec": self.scheduler, "seed": self.scheduler_seed},
            "engine": {
                "memory_audit_interval": self.memory_audit_interval,
                "collect_metrics": self.collect_metrics,
                "validate_enabledness": self.validate_enabledness,
                "record_views": self.record_views,
            },
            "limits": {"max_steps": self.max_steps},
        }
        if self.links is not None:
            # Emitted only when active: absent == reliable links, so
            # every archived content hash predating faults is unchanged.
            out["links"] = self.links.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ExperimentSpec":
        """Inverse of :meth:`to_dict`; missing sections take the defaults."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"experiment spec must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "algorithm", "placement", "scheduler", "engine", "limits", "links"
        }
        if unknown:
            raise ConfigurationError(
                f"experiment spec has unknown keys {sorted(unknown)}"
            )
        try:
            algorithm = data["algorithm"]
            placement = PlacementSpec.from_dict(data["placement"])
        except KeyError as missing:
            raise ConfigurationError(
                f"experiment spec is missing required key {missing}"
            ) from None
        scheduler = data.get("scheduler", {})
        engine = data.get("engine", {})
        limits = data.get("limits", {})
        for section_name, section in (
            ("scheduler", scheduler), ("engine", engine), ("limits", limits)
        ):
            if not isinstance(section, dict):
                raise ConfigurationError(
                    f"experiment spec section {section_name!r} must be a "
                    f"dict, got {type(section).__name__}"
                )
        links_data = data.get("links")
        links = None if links_data is None else LinkSpec.from_dict(links_data)
        return cls(
            algorithm=algorithm,
            placement=placement,
            scheduler=scheduler.get("spec", "sync"),
            scheduler_seed=int(scheduler.get("seed", 0)),
            max_steps=limits.get("max_steps"),
            memory_audit_interval=int(engine.get("memory_audit_interval", 16)),
            collect_metrics=bool(engine.get("collect_metrics", True)),
            validate_enabledness=bool(engine.get("validate_enabledness", False)),
            record_views=bool(engine.get("record_views", False)),
            links=links,
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec as a JSON document (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExperimentSpec":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"experiment spec is not valid JSON: {error}")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "ExperimentSpec":
        """Read a spec from a JSON file (the ``--spec file.json`` path)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as error:
            raise ConfigurationError(
                f"cannot read experiment spec {path!r}: {error}"
            ) from None

    # -- identity ------------------------------------------------------------

    def content_hash(self) -> str:
        """SHA-256 hex digest of the canonical JSON form.

        Stable across processes, runs and platforms — equal specs hash
        equal, any field change rehashes.  Use it as a cache key or to
        derive deterministic seeds (:meth:`derive_seed`).
        """
        canonical = json.dumps(
            self.to_dict(), sort_keys=True, separators=(",", ":")
        )
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def derive_seed(self, salt: Union[int, str] = 0) -> int:
        """A stable 63-bit seed derived from the content hash and ``salt``."""
        key = f"{self.content_hash()}|{salt}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


def run_spec(spec: ExperimentSpec):
    """Run a declarative spec to quiescence and verify it.

    Thin delegation to :func:`repro.experiments.runner.run_experiment`,
    which accepts specs natively; kept as a named entry point so callers
    reading JSON never need the kwargs API.
    """
    from repro.experiments.runner import run_experiment

    return run_experiment(spec)
