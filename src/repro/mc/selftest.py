"""A deliberately broken agent that only fails under rare schedules.

A model checker that has never found a bug proves nothing about itself.
:class:`WakeRaceAgent` is the Algorithms 2+3 (logspace) agent with one
scheduling race injected into the follower's walk toward the base node:
when the walk crosses a token node where some agent is staying, the
buggy follower concludes "an agent already deployed here" and halts on
the spot.

The only agent that can legitimately be staying at such a node is
another follower that has been *woken* by the leader's notice but not
yet *scheduled* to depart — a pure activation-order race.  Under the
synchronous round-robin every woken follower departs on the very next
round, one full round before any trailing follower can reach its home,
so the defect never fires; the repo's sampled adversaries (random
seeds, burst, chaos, laggard) also miss it on suitable placements.
Only schedules that starve a woken follower just long enough for the
trailing follower to walk past expose the bug — e.g. on the ring
``n=8, homes=(0, 1, 3)``, where every sampled scheduler deploys
uniformly and only exhaustive exploration finds the violating
interleaving.

That is exactly the class of defect one sampled schedule per
configuration can never rule out and the exhaustive checker finds by
construction — the self-test in ``tests/test_model_checker.py``
asserts the sampled schedulers pass, that the checker produces a
counterexample schedule, and that replaying the schedule reproduces
the same violation deterministically.
"""

from __future__ import annotations

from typing import List

from repro.core.known_k_logspace import KnownKLogSpaceAgent
from repro.core.messages import LeaderNotice
from repro.core.targets import hop_to_next_target
from repro.registry import register_algorithm
from repro.sim.actions import Action
from repro.sim.agent import AgentProtocol

__all__ = ["WakeRaceAgent", "wake_race_agents"]


@register_algorithm(
    "wake_race",
    build=lambda cls, k, n: cls(k),
    halts=True,
    knowledge="k",
    memory_bound="O(log n)",
    time_bound="O(n log k)",
    table1_row="selftest (broken Algorithms 2+3)",
    description=(
        "model-checker self-test: Algorithms 2+3 with an injected "
        "follower wake-race bug"
    ),
    selftest=True,
)
class WakeRaceAgent(KnownKLogSpaceAgent):
    """Algorithms 2+3 with a schedule-dependent follower bug injected."""

    def _follower_deployment(self) -> AgentProtocol:
        # Identical to the correct follower (Algorithm 3, lines 15-21)
        # except for the marked defect in the walk toward the base.
        notice = None
        while notice is None:
            view = yield Action.suspend_here()
            for message in view.messages:
                if isinstance(message, LeaderNotice):
                    notice = message
                    break
        self.t_base = notice.t_base
        self.b = self.k // (notice.f_num + 1)
        self.tokens_seen = 0
        while self.tokens_seen < self.t_base:
            view = yield Action.move_forward()
            if view.tokens > 0:
                self.tokens_seen += 1
                # BUG: "a token node with a staying agent must already be
                # deployed" — but a staying agent here can only be a
                # woken follower the scheduler has not yet let depart.
                # Fires only when the activation order starves that
                # follower long enough for this one to catch up.
                if view.agents_present > 0 and self.tokens_seen < self.t_base:
                    yield Action.halt_here()
                    return
        self.target_index = 0
        while True:
            step, self.target_index = hop_to_next_target(
                self.target_index, self.n, self.k, self.b
            )
            self.hops = step
            while self.hops > 0:
                self.hops -= 1
                view = yield Action.move_forward()
            if view.agents_present == 0:
                yield Action.halt_here()
                return


def wake_race_agents(agent_count: int) -> List[WakeRaceAgent]:
    """Factory for :func:`repro.mc.checker.check_interleavings`."""
    return [WakeRaceAgent(agent_count) for _ in range(agent_count)]
