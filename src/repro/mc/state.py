"""Search-state bookkeeping for the interleaving model checker.

The checker explores the directed graph whose vertices are engine
states (quotiented by the ring-rotation / agent-relabelling symmetry of
:meth:`repro.ring.configuration.Configuration.canonical`) and whose
edges are single atomic actions of enabled agents.  This module holds
the small value objects that exploration threads through:

* :class:`PreState` — the lightweight pre-transition observation
  (token vector + queue contents) that edge-level safety properties
  compare against the post-transition engine,
* :class:`SearchStats` — the exploration counters reported to the user
  (explored / transitions / deduped / terminals / max depth),
* :class:`Frame` — one depth-first stack entry: a live engine, the
  schedule prefix that reached it and the untried enabled choices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set, Tuple, Union

from repro.sim.engine import Engine

__all__ = ["PreState", "SearchStats", "Frame", "capture_pre_state"]


@dataclass(frozen=True)
class PreState:
    """What edge properties need to know about the source state.

    Kept deliberately tiny — it is captured once per explored edge —
    and read-only: ``tokens`` is the node token vector, ``queues`` the
    per-node link queue contents (head first).
    """

    tokens: Tuple[int, ...]
    queues: Tuple[Tuple[int, ...], ...]


def capture_pre_state(engine: Engine) -> PreState:
    """Snapshot the transition-relevant passive state of ``engine``."""
    ring = engine.ring
    return PreState(
        tokens=ring.token_counts,
        queues=tuple(ring.queue_contents(node) for node in range(ring.size)),
    )


@dataclass
class SearchStats:
    """Mutable exploration counters, reported in :class:`MCResult`.

    * ``explored`` — distinct canonical states visited (root included),
    * ``transitions`` — atomic actions executed during the search,
    * ``deduped`` — transitions that landed on an already-visited
      canonical state (the memoisation hit count),
    * ``terminals`` — quiescent states reached (each checked once),
    * ``max_depth`` — longest schedule prefix explored,
    * ``truncated`` — states left unexpanded by ``depth_limit``,
    * ``por_skipped`` — enabled transitions pruned by the sleep-set
      partial-order reduction (redundant interleavings never executed),
    * ``memo_bytes`` — approximate visited-memo footprint: 16-byte
      blake2b keys plus the stored canonical sleep slots.
    """

    explored: int = 0
    transitions: int = 0
    deduped: int = 0
    terminals: int = 0
    max_depth: int = 0
    truncated: int = 0
    por_skipped: int = 0
    memo_bytes: int = 0

    def describe(self) -> str:
        return (
            f"{self.explored} states, {self.transitions} transitions, "
            f"{self.deduped} deduped, {self.por_skipped} por-skipped, "
            f"{self.terminals} terminal, max depth {self.max_depth}"
        )


@dataclass
class Frame:
    """One DFS stack level: a state plus its unexplored outgoing edges.

    ``engine`` is a live engine *at* this state.  It is consumed (moved
    into the child instead of forked) when the last untried choice is
    taken — the copy-on-branch optimisation that saves one fork per
    fully-expanded state.  ``key`` is the state's canonical key (packed
    blake2b digest, used to maintain the on-path set for cycle
    detection) and ``schedule`` the activation prefix that first reached
    it.  ``slept`` is the sleep set of the partial-order reduction:
    agents (by concrete id) whose transition from this state is already
    covered elsewhere — inherited sleepers plus the siblings whose
    subtrees completed before the current choice.
    """

    engine: Optional[Engine]
    key: Union[bytes, Tuple[object, ...]]
    schedule: Tuple[int, ...]
    choices: List[int] = field(default_factory=list)
    slept: Set[int] = field(default_factory=set)

    def take_engine(self) -> Engine:
        """Fork the frame's engine, or move it out on the last choice."""
        if self.engine is None:
            raise RuntimeError("frame engine already consumed")
        if self.choices:
            return self.engine.fork()
        engine = self.engine
        self.engine = None
        return engine
