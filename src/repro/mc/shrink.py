"""Delta-debugging schedule minimisation (ddmin over activation logs).

A fuzzer-found violating schedule is hundreds of actions long, most of
them irrelevant.  :func:`shrink_schedule` reduces it to a *1-minimal*
schedule — removing any single remaining entry no longer reproduces the
defect — using the classic ddmin strategy (Zeller & Hildebrandt):
remove progressively finer chunks, restarting coarse whenever a removal
succeeds.

The caller supplies the oracle ``still_fails(candidate) -> bool``; in
this repo that is an oracle-checked replay
(:func:`repro.mc.oracle.drive_schedule` on a
:meth:`~repro.mc.oracle.PropertyOracle.fork_root` engine) asserting the
same property fails the same way.  Because replay semantics pad an
exhausted log with the lowest-id enabled agent, aggressive truncation
usually succeeds immediately: a prefix that merely *sets up* the race
still runs to the violation under the deterministic fallback.

``max_evals`` bounds the number of oracle calls so pathological
schedules cannot stall a fuzzing campaign; the result is still a valid
(possibly non-minimal) failing schedule when the budget runs out.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Tuple

__all__ = ["shrink_schedule"]


def shrink_schedule(
    schedule: Sequence[int],
    still_fails: Callable[[Tuple[int, ...]], bool],
    *,
    max_evals: int = 2000,
) -> Tuple[int, ...]:
    """Minimise ``schedule`` while ``still_fails`` keeps returning True.

    Returns a subsequence of ``schedule`` (possibly the input itself
    when nothing can be removed) that still fails.  The input itself is
    assumed to fail and is never re-checked.  Within ``max_evals``
    oracle calls the result is 1-minimal; beyond it the best schedule
    found so far is returned.
    """
    current: List[int] = list(schedule)
    evals = 0

    def fails(candidate: List[int]) -> bool:
        nonlocal evals
        evals += 1
        return still_fails(tuple(candidate))

    # The replay fallback often finishes the run on its own: probe the
    # empty schedule first, then binary-search the shortest failing
    # prefix — a cheap O(log n) start that typically removes the bulk.
    if current and evals < max_evals and fails([]):
        return ()
    low, high = 0, len(current)  # prefix of length `high` is known to fail
    while low + 1 < high and evals < max_evals:
        mid = (low + high) // 2
        if fails(current[:mid]):
            high = mid
        else:
            low = mid
    current = current[:high]

    granularity = 2
    while len(current) >= 2 and evals < max_evals:
        chunk = max(1, len(current) // granularity)
        removed_any = False
        start = 0
        while start < len(current) and evals < max_evals:
            candidate = current[:start] + current[start + chunk:]
            if candidate and fails(candidate):
                current = candidate
                removed_any = True
                # Do not advance: the next chunk shifted into `start`.
            else:
                start += chunk
        if removed_any:
            granularity = max(granularity - 1, 2)
        elif chunk == 1:
            break  # 1-minimal: no single entry can be removed
        else:
            granularity = min(len(current), granularity * 2)
    return tuple(current)
