"""Parallel model checking: wave-synchronous frontier + placement pool.

Two orthogonal parallelisation axes over :mod:`repro.mc.checker`:

* :func:`check_placements_pool` — the embarrassingly parallel axis:
  whole placements of an ``(n, k)`` grid fan across a process pool,
  each worker running the ordinary serial DFS.  Results keep placement
  order, so the output is byte-identical to the serial grid.

* :func:`check_frontier` — intra-placement parallelism: a
  wave-synchronous (lockstep) breadth-first driver.  Each wave, the
  open frontier is partitioned by *memo ownership* — a state's owner
  shard is ``int(key) % jobs``, so exactly one shard ever stores a
  given canonical key — and the per-owner buckets are expanded by a
  process pool.  The master merges children in globally sorted
  ``(key, schedule)`` order, which makes every counter and the final
  verdict deterministic *and invariant in* ``jobs``: the ``--jobs 2``
  run reports the same numbers as ``--jobs 1`` (pinned by tests).

Engines cannot cross process boundaries (agent protocols are live
generators), so workers rebuild states by replaying the item's
activation schedule on a per-process root engine — the same
view-replay mechanism :meth:`Engine.fork` uses in-process.  That costs
``O(depth)`` steps per expanded state, the price of a frontier that
can also be spilled to disk and resumed (:mod:`repro.mc.frontier`):
with ``store_root`` set, every wave is committed to an append-only
journal and a killed check resumes from the last commit with identical
cumulative stats.

The breadth-first driver retains every guarantee of the DFS *except*
livelock-cycle detection (there is no DFS path to find a back-edge
onto); the four paper algorithms and the selftest bug are cycle-free,
and the serial DFS remains the default for plain ``repro mc``.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, List, Optional, Sequence, Tuple

from repro.mc.checker import (
    AgentsFactory,
    Counterexample,
    MCResult,
    _make_engine,
    check_interleavings,
)
from repro.mc.frontier import FrontierItem, FrontierSpill, ResumeState, check_spec
from repro.mc.por import agents_of_slots, sleep_after, slots_of_agents
from repro.mc.properties import (
    SafetyProperty,
    TerminalProperty,
    default_safety_properties,
    resolve_terminal,
)
from repro.mc.state import SearchStats, capture_pre_state
from repro.ring.faults import LinkSpec
from repro.ring.placement import Placement
from repro.sim.engine import Engine

__all__ = ["check_frontier", "check_placements_pool"]


# ----------------------------------------------------------------------
# Placement-level pool (grids)
# ----------------------------------------------------------------------


def _check_placement_task(payload: tuple) -> MCResult:
    algorithm, placement, kwargs = payload
    return check_interleavings(algorithm, placement, **kwargs)


def check_placements_pool(
    algorithm: str,
    placements: Sequence[Placement],
    *,
    jobs: int,
    **kwargs,
) -> List[MCResult]:
    """Fan whole placements across a process pool, preserving order.

    Requires a registered ``algorithm`` name: ``factory`` callables and
    ``progress`` hooks cannot cross process boundaries.
    """
    if kwargs.get("factory") is not None:
        raise ValueError(
            "check_placements_pool needs a registered algorithm name; "
            "agent factories do not cross process boundaries"
        )
    kwargs.pop("factory", None)
    kwargs.pop("progress", None)
    placements = list(placements)
    if jobs <= 1 or len(placements) <= 1:
        return [
            check_interleavings(algorithm, placement, **kwargs)
            for placement in placements
        ]
    payloads = [(algorithm, placement, kwargs) for placement in placements]
    with multiprocessing.Pool(processes=min(jobs, len(placements))) as pool:
        return pool.map(_check_placement_task, payloads)


# ----------------------------------------------------------------------
# Wave-synchronous frontier driver
# ----------------------------------------------------------------------

#: Child record produced by a worker: (canonical key, schedule, sleep
#: slots, quiescent flag, terminal violation or None).
_Child = Tuple[bytes, Tuple[int, ...], frozenset, bool, Optional[Tuple[str, str]]]


class _FrontierWorker:
    """Per-process expansion state: a pristine root engine + properties."""

    def __init__(
        self,
        root: Engine,
        safety_props: Tuple[SafetyProperty, ...],
        terminal_props: Tuple[TerminalProperty, ...],
        por: bool,
        ring_size: int,
    ) -> None:
        self.root = root
        self.safety = safety_props
        self.terminal = terminal_props
        self.por = por
        self.ring_size = ring_size

    def _rebuild(self, schedule: Tuple[int, ...]) -> Engine:
        engine = self.root.fork()
        for agent_id in schedule:
            engine.step(agent_id)
        return engine

    def expand(
        self, item: FrontierItem
    ) -> Tuple[int, int, List[_Child], List[dict]]:
        """Expand one frontier state; return (transitions, por_skipped,
        children, violations)."""
        engine = self._rebuild(item.schedule)
        enabled = engine.enabled_agents()
        snapshot = engine.snapshot()
        layout = snapshot.packed_layout()[1]
        if item.restrict is not None:
            targets = sorted(layout[slot] for slot in item.restrict)
            slept = set(enabled) - set(targets)
            por_skipped = 0
        else:
            sleeping = {layout[slot] for slot in item.sleep}
            targets = [a for a in enabled if a not in sleeping]
            slept = set(sleeping)
            por_skipped = len(enabled) - len(targets)
        transitions = 0
        children: List[_Child] = []
        violations: List[dict] = []
        for index, agent_id in enumerate(targets):
            child = engine.fork() if index < len(targets) - 1 else engine
            if self.por and slept:
                child_sleep = sleep_after(child, slept, agent_id, self.ring_size)
            else:
                child_sleep = set()
            pre = capture_pre_state(child)
            child.step(agent_id)
            transitions += 1
            schedule = item.schedule + (agent_id,)
            child_snapshot = child.snapshot()
            broken = False
            for prop in self.safety:
                message = prop.check(pre, child, child_snapshot, agent_id)
                if message is not None:
                    violations.append(
                        {
                            "t": "x",
                            "kind": "safety",
                            "name": prop.name,
                            "msg": message,
                            "sch": list(schedule),
                        }
                    )
                    broken = True
                    break
            if broken:
                continue  # never explore past a violating state
            key = child_snapshot.canonical_key()
            sleep_slots = slots_of_agents(child_snapshot, child_sleep)
            quiescent = child.quiescent
            term: Optional[Tuple[str, str]] = None
            if quiescent:
                for prop in self.terminal:
                    message = prop.check(child, child_snapshot)
                    if message is not None:
                        term = (prop.name, message)
                        break
            children.append((key, schedule, sleep_slots, quiescent, term))
            slept.add(agent_id)
        return transitions, por_skipped, children, violations


_WORKER: Optional[_FrontierWorker] = None


def _init_frontier_worker(
    algorithm: str,
    placement: Placement,
    por: bool,
    safety_props: Tuple[SafetyProperty, ...],
    terminal_props: Tuple[TerminalProperty, ...],
    links: Optional[LinkSpec] = None,
) -> None:
    global _WORKER
    root = _make_engine(algorithm, placement, None, links)
    _WORKER = _FrontierWorker(
        root, safety_props, terminal_props, por, placement.ring_size
    )


def _expand_batch(
    items: List[FrontierItem],
) -> Tuple[int, int, List[_Child], List[dict]]:
    assert _WORKER is not None
    transitions = 0
    por_skipped = 0
    children: List[_Child] = []
    violations: List[dict] = []
    for item in items:
        t, p, c, v = _WORKER.expand(item)
        transitions += t
        por_skipped += p
        children.extend(c)
        violations.extend(v)
    return transitions, por_skipped, children, violations


def _owner(key: bytes, jobs: int) -> int:
    return int.from_bytes(key[:8], "big") % jobs


def check_frontier(
    algorithm: str,
    placement: Placement,
    *,
    jobs: int = 1,
    por: bool = True,
    store_root: Optional[str] = None,
    resume: bool = False,
    factory: Optional[AgentsFactory] = None,
    require_halted: Optional[bool] = None,
    require_suspended: Optional[bool] = None,
    safety: Optional[Sequence[SafetyProperty]] = None,
    terminal: Optional[Sequence[TerminalProperty]] = None,
    depth_limit: Optional[int] = None,
    max_states: Optional[int] = None,
    stop_at_first: bool = True,
    links: Optional[LinkSpec] = None,
    progress: Optional[Callable[[SearchStats], None]] = None,
) -> MCResult:
    """Breadth-first, optionally parallel and disk-spilled exploration.

    Semantics match :func:`check_interleavings` (same properties, same
    POR, same verdicts) except that livelock cycles are not detected
    and ``stop_at_first`` stops at wave granularity.  ``jobs > 1``
    requires a registered ``algorithm`` name; ``store_root`` spills
    every wave to ``<store_root>/mc/<check-hash>/`` and ``resume=True``
    continues a previously killed run (a completed run's stored result
    is returned directly).  ``links`` behaves as in
    :func:`check_interleavings`: fault-aware properties, link-actor
    branches, and sleep sets forced off (see :mod:`repro.mc.por`); the
    wave-merge discipline keeps the verdict ``jobs``-invariant on
    faulty instances exactly as on reliable ones.
    """
    if jobs > 1 and factory is not None:
        raise ValueError(
            "check_frontier(jobs>1) needs a registered algorithm name; "
            "agent factories do not cross process boundaries"
        )
    n, k = placement.ring_size, placement.agent_count
    if links is not None and not links.active:
        links = None
    if links is not None:
        por = False  # agent moves stop commuting: shared draw stream
    safety_props: Tuple[SafetyProperty, ...] = tuple(
        default_safety_properties(n, k, links) if safety is None else safety
    )
    terminal_props: Tuple[TerminalProperty, ...] = (
        (resolve_terminal(algorithm, require_halted, require_suspended),)
        if terminal is None
        else tuple(terminal)
    )

    spill: Optional[FrontierSpill] = None
    resumed: Optional[ResumeState] = None
    if store_root is not None:
        spec = check_spec(
            algorithm,
            placement,
            por=por,
            depth_limit=depth_limit,
            max_states=max_states,
            stop_at_first=stop_at_first,
            safety_props=safety_props,
            terminal_props=terminal_props,
            links=links,
        )
        spill = FrontierSpill(store_root, spec)
        if resume:
            stored = spill.load_result()
            if stored is not None:
                return _result_from_dict(algorithm, placement, stored)
            resumed = spill.resume_state()

    def record_violation(entry: dict) -> Counterexample:
        return Counterexample(
            algorithm=algorithm,
            placement=placement,
            schedule=tuple(entry["sch"]),
            kind=entry["kind"],
            property_name=entry["name"],
            message=entry["msg"],
        )

    if resumed is not None:
        wave = resumed.wave
        visited = resumed.visited
        frontier = resumed.frontier
        stats = resumed.stats
        violation_records = list(resumed.violations)
        terminal_keys = list(resumed.terminal_keys)
        if violation_records and stop_at_first:
            # The killed run had already found its violation; don't
            # explore further, just finalise the stored state.
            frontier = []
    else:
        root = _make_engine(algorithm, placement, factory, links)
        root_key = root.snapshot().canonical_key()
        wave = 0
        visited = {root_key: frozenset()}
        frontier = [FrontierItem(key=root_key, schedule=())]
        stats = SearchStats(explored=1)
        violation_records = []
        terminal_keys = []
        if spill is not None:
            spill.start_fresh()
            spill.append_wave(
                0, [(root_key, frozenset())], frontier, [], [], stats
            )

    complete = not stats.truncated
    pool = None
    local_worker: Optional[_FrontierWorker] = None
    if jobs > 1:
        pool = multiprocessing.Pool(
            processes=jobs,
            initializer=_init_frontier_worker,
            initargs=(
                algorithm,
                placement,
                por,
                safety_props,
                terminal_props,
                links,
            ),
        )
    else:
        local_worker = _FrontierWorker(
            _make_engine(algorithm, placement, factory, links),
            safety_props,
            terminal_props,
            por,
            n,
        )

    try:
        while frontier:
            if max_states is not None and stats.explored >= max_states:
                complete = False
                break
            buckets: List[List[FrontierItem]] = [[] for _ in range(max(jobs, 1))]
            for item in frontier:
                buckets[_owner(item.key, max(jobs, 1))].append(item)
            for bucket in buckets:
                bucket.sort(key=lambda item: (item.key, item.schedule))
            occupied = [bucket for bucket in buckets if bucket]
            if pool is not None:
                parts = pool.map(_expand_batch, occupied)
            else:
                parts = [_expand_batch_local(local_worker, b) for b in occupied]

            wave_violations: List[dict] = []
            children: List[_Child] = []
            for transitions, por_skipped, part_children, part_violations in parts:
                stats.transitions += transitions
                stats.por_skipped += por_skipped
                children.extend(part_children)
                wave_violations.extend(part_violations)
            children.sort(key=lambda child: (child[0], child[1]))

            wave_terminal_keys: List[str] = []
            visited_delta: List[Tuple[bytes, frozenset]] = []
            next_frontier: List[FrontierItem] = []
            hit_max_states = False
            for key, schedule, sleep_slots, quiescent, term in children:
                if len(schedule) > stats.max_depth:
                    stats.max_depth = len(schedule)
                stored = visited.get(key)
                if stored is not None:
                    if stored <= sleep_slots:
                        stats.deduped += 1
                        continue
                    # Sleep-set revisit rule: re-expand exactly what the
                    # stored visit slept through but this path does not.
                    reopen = stored - sleep_slots
                    merged = stored & sleep_slots
                    visited[key] = merged
                    visited_delta.append((key, merged))
                    stats.deduped += 1
                    next_frontier.append(
                        FrontierItem(
                            key=key,
                            schedule=schedule,
                            sleep=merged,
                            restrict=tuple(sorted(reopen)),
                        )
                    )
                    continue
                visited[key] = sleep_slots
                visited_delta.append((key, sleep_slots))
                stats.explored += 1
                if quiescent:
                    stats.terminals += 1
                    wave_terminal_keys.append(key.hex())
                    if term is not None:
                        wave_violations.append(
                            {
                                "t": "x",
                                "kind": "terminal",
                                "name": term[0],
                                "msg": term[1],
                                "sch": list(schedule),
                            }
                        )
                    continue
                if depth_limit is not None and len(schedule) >= depth_limit:
                    stats.truncated += 1
                    complete = False
                    continue
                if max_states is not None and stats.explored >= max_states:
                    hit_max_states = True
                    break
                next_frontier.append(
                    FrontierItem(key=key, schedule=schedule, sleep=sleep_slots)
                )

            terminal_keys.extend(wave_terminal_keys)
            violation_records.extend(wave_violations)
            wave += 1
            if spill is not None:
                spill.append_wave(
                    wave,
                    visited_delta,
                    next_frontier,
                    wave_violations,
                    wave_terminal_keys,
                    stats,
                )
            frontier = next_frontier
            if progress is not None:
                progress(stats)
            if hit_max_states:
                complete = False
                break
            if wave_violations and stop_at_first:
                break
    finally:
        if pool is not None:
            pool.close()
            pool.join()

    violations = tuple(record_violation(entry) for entry in violation_records)
    if stop_at_first and violations:
        complete = False
    stats.memo_bytes = sum(16 + 8 * len(slots) for slots in visited.values())
    result = MCResult(
        algorithm=algorithm,
        placement=placement,
        explored=stats.explored,
        transitions=stats.transitions,
        deduped=stats.deduped,
        terminals=stats.terminals,
        max_depth=stats.max_depth,
        complete=complete,
        violations=violations,
        por_skipped=stats.por_skipped,
        memo_bytes=stats.memo_bytes,
        terminal_keys=tuple(sorted(terminal_keys)),
    )
    if spill is not None:
        spill.finish(result.to_dict())
    return result


def _expand_batch_local(
    worker: Optional[_FrontierWorker], items: List[FrontierItem]
) -> Tuple[int, int, List[_Child], List[dict]]:
    assert worker is not None
    transitions = 0
    por_skipped = 0
    children: List[_Child] = []
    violations: List[dict] = []
    for item in items:
        t, p, c, v = worker.expand(item)
        transitions += t
        por_skipped += p
        children.extend(c)
        violations.extend(v)
    return transitions, por_skipped, children, violations


def _result_from_dict(
    algorithm: str, placement: Placement, stored: dict
) -> MCResult:
    """Rebuild an :class:`MCResult` from a spilled ``result.json``."""
    violations = tuple(
        Counterexample(
            algorithm=algorithm,
            placement=placement,
            schedule=tuple(entry["schedule"]),
            kind=entry["kind"],
            property_name=entry["property"],
            message=entry["message"],
        )
        for entry in stored.get("violations", [])
    )
    return MCResult(
        algorithm=algorithm,
        placement=placement,
        explored=stored["explored"],
        transitions=stored["transitions"],
        deduped=stored["deduped"],
        terminals=stored["terminals"],
        max_depth=stored["max_depth"],
        complete=stored["complete"],
        violations=violations,
        por_skipped=stored.get("por_skipped", 0),
        memo_bytes=stored.get("memo_bytes", 0),
        terminal_keys=tuple(stored.get("terminal_keys", ())),
    )
