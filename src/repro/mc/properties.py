"""Safety and terminal properties checked at every explored state.

Two property shapes:

* :class:`SafetyProperty` — checked on every *edge* of the state graph
  (after every atomic action, at every depth).  Receives the
  pre-transition :class:`~repro.mc.state.PreState`, the post-transition
  engine + snapshot and the acting agent, and returns ``None`` (holds)
  or a human-readable violation message.
* :class:`TerminalProperty` — checked on every *quiescent* state the
  search reaches.  Because the checker explores every enabled choice at
  every state, the set of terminal states it visits is exactly the set
  of outcomes of all maximal executions — so a terminal property is a
  liveness claim over every fair schedule ("every maximal execution
  ends uniformly deployed"), verified exhaustively at these sizes.

The built-ins cover the paper's claims:

* :class:`StructuralIntegrity` — conservation laws of the 5-tuple
  (every agent in exactly one place, consistent inbox accounting),
* :class:`FifoLinkIntegrity` — link queues change only by the actor
  leaving a head and/or entering a tail (the no-overtaking property),
* :class:`TokenMonotonicity` — token counters never decrease and at
  most one token appears per action,
* :class:`MemoryBound` — audited agent memory stays under an
  O(k log n)-shaped ceiling (catches unbounded state growth),
* :class:`UniformTerminal` — Definitions 1/2: every terminal state is
  a uniform deployment with the right terminal agent states.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.verification import audit_configuration, verify_uniform_deployment
from repro.errors import ConfigurationError, SimulationError
from repro.mc.state import PreState
from repro.ring.configuration import Configuration
from repro.sim.engine import Engine

__all__ = [
    "SafetyProperty",
    "TerminalProperty",
    "StructuralIntegrity",
    "FifoLinkIntegrity",
    "TokenMonotonicity",
    "MemoryBound",
    "EnabledSetConsistency",
    "UniformTerminal",
    "default_memory_limit",
    "default_safety_properties",
    "resolve_terminal",
]


class SafetyProperty:
    """Edge-level property: must hold after every atomic action."""

    name = "safety"

    def check(
        self,
        pre: PreState,
        engine: Engine,
        snapshot: Configuration,
        acted: int,
    ) -> Optional[str]:
        """Return ``None`` when the property holds, else a description."""
        raise NotImplementedError


class TerminalProperty:
    """State-level property checked at every quiescent state."""

    name = "terminal"

    def check(self, engine: Engine, snapshot: Configuration) -> Optional[str]:
        raise NotImplementedError


class StructuralIntegrity(SafetyProperty):
    """Conservation laws of the configuration 5-tuple."""

    name = "structural-integrity"

    def check(self, pre, engine, snapshot, acted):
        failures = audit_configuration(snapshot)
        if failures:
            return "; ".join(failures)
        return None


class FifoLinkIntegrity(SafetyProperty):
    """Queues are strictly FIFO and only the actor touches them.

    One atomic action of agent ``a`` may change the link queues in at
    most two ways: ``a`` leaves the *head* of its arrival queue, and/or
    ``a`` enters the *tail* of the destination queue.  Any other delta —
    a reorder, a removal from the middle, a foreign agent appearing —
    is an overtake or a corruption the model forbids.
    """

    name = "fifo-link-integrity"

    def check(self, pre, engine, snapshot, acted):
        ring = engine.ring
        for node in range(ring.size):
            before = pre.queues[node]
            after = ring.queue_contents(node)
            if after == before:
                continue
            popped = before[1:] if before and before[0] == acted else None
            if after == popped:
                continue  # the actor arrived from this queue's head
            if after == before + (acted,):
                continue  # the actor entered this queue's tail
            if popped is not None and after == popped + (acted,):
                continue  # n == 1: left the head and re-entered the tail
            return (
                f"queue into node {node} changed {before} -> {after} "
                f"by agent {acted}: not a head-leave/tail-enter"
            )
        return None


class TokenMonotonicity(SafetyProperty):
    """Tokens are never removed; one action releases at most one."""

    name = "token-monotonicity"

    def check(self, pre, engine, snapshot, acted):
        after = engine.ring.token_counts
        if any(now < was for was, now in zip(pre.tokens, after)):
            return f"token count decreased: {pre.tokens} -> {after}"
        if sum(after) - sum(pre.tokens) > 1:
            return f"more than one token released in one action: {pre.tokens} -> {after}"
        return None


class MemoryBound(SafetyProperty):
    """The acting agent's audited memory stays under ``limit_bits``."""

    name = "memory-bound"

    def __init__(self, limit_bits: int) -> None:
        self.limit_bits = limit_bits

    def check(self, pre, engine, snapshot, acted):
        bits = engine.agent(acted).memory_bits()
        if bits > self.limit_bits:
            return (
                f"agent {acted} uses {bits} bits of state "
                f"(limit {self.limit_bits})"
            )
        return None


class EnabledSetConsistency(SafetyProperty):
    """The incremental enabled set matches the O(k) recompute oracle."""

    name = "enabled-set-consistency"

    def check(self, pre, engine, snapshot, acted):
        try:
            engine.check_enabledness_invariant()
        except SimulationError as error:
            return str(error)
        return None


class UniformTerminal(TerminalProperty):
    """Every quiescent state is a uniform deployment (Definitions 1/2)."""

    name = "uniform-terminal"

    def __init__(self, require_halted: bool, require_suspended: bool) -> None:
        self.require_halted = require_halted
        self.require_suspended = require_suspended

    def check(self, engine, snapshot):
        report = verify_uniform_deployment(
            engine,
            require_halted=self.require_halted,
            require_suspended=self.require_suspended,
        )
        if not report:
            return report.describe()
        return None


def resolve_terminal(
    algorithm: str,
    require_halted: "Optional[bool]" = None,
    require_suspended: "Optional[bool]" = None,
) -> UniformTerminal:
    """The terminal requirement an instance of ``algorithm`` must meet.

    With explicit ``require_halted`` / ``require_suspended`` those win;
    otherwise the registered algorithm's ``halts`` flag decides
    (termination-detecting algorithms must halt, the relaxed algorithm
    must suspend).  Unregistered names without explicit requirements are
    a :class:`~repro.errors.ConfigurationError` — shared by the model
    checker and the schedule fuzzer.
    """
    if require_halted is None and require_suspended is None:
        from repro.registry import get_algorithm

        try:
            halts = get_algorithm(algorithm).halts
        except ConfigurationError:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r} and no explicit terminal "
                "requirements; pass require_halted/require_suspended"
            ) from None
        require_halted, require_suspended = halts, not halts
    return UniformTerminal(
        require_halted=bool(require_halted),
        require_suspended=bool(require_suspended),
    )


def default_memory_limit(ring_size: int, agent_count: int) -> int:
    """A generous O(k log n)-shaped ceiling on audited agent memory.

    Every algorithm in the paper is O(k log n) bits or better; 64 bits
    per stored quantity leaves ample constant-factor slack while still
    tripping on genuinely unbounded state growth within a few actions.
    """
    return 64 * (agent_count + 2) * (max(2, ring_size).bit_length() + 2)


def default_safety_properties(
    ring_size: int, agent_count: int
) -> Tuple[SafetyProperty, ...]:
    """The standard per-edge property suite for one instance size."""
    return (
        StructuralIntegrity(),
        FifoLinkIntegrity(),
        TokenMonotonicity(),
        MemoryBound(default_memory_limit(ring_size, agent_count)),
        EnabledSetConsistency(),
    )
