"""Safety and terminal properties checked at every explored state.

Two property shapes:

* :class:`SafetyProperty` — checked on every *edge* of the state graph
  (after every atomic action, at every depth).  Receives the
  pre-transition :class:`~repro.mc.state.PreState`, the post-transition
  engine + snapshot and the acting agent, and returns ``None`` (holds)
  or a human-readable violation message.
* :class:`TerminalProperty` — checked on every *quiescent* state the
  search reaches.  Because the checker explores every enabled choice at
  every state, the set of terminal states it visits is exactly the set
  of outcomes of all maximal executions — so a terminal property is a
  liveness claim over every fair schedule ("every maximal execution
  ends uniformly deployed"), verified exhaustively at these sizes.

The built-ins cover the paper's claims:

* :class:`StructuralIntegrity` — conservation laws of the 5-tuple
  (every agent in exactly one place, consistent inbox accounting),
* :class:`FifoLinkIntegrity` — link queues change only by the actor
  leaving a head and/or entering a tail (the no-overtaking property),
* :class:`TokenMonotonicity` — token counters never decrease and at
  most one token appears per action,
* :class:`MemoryBound` — audited agent memory stays under an
  O(k log n)-shaped ceiling (catches unbounded state growth),
* :class:`UniformTerminal` — Definitions 1/2: every terminal state is
  a uniform deployment with the right terminal agent states.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.analysis.verification import audit_configuration, verify_uniform_deployment
from repro.errors import ConfigurationError, SimulationError
from repro.mc.state import PreState
from repro.ring.configuration import Configuration
from repro.ring.faults import PHANTOM, LinkSpec
from repro.sim.engine import Engine

__all__ = [
    "SafetyProperty",
    "TerminalProperty",
    "StructuralIntegrity",
    "FifoLinkIntegrity",
    "TokenMonotonicity",
    "MemoryBound",
    "EnabledSetConsistency",
    "FaultBudgetBound",
    "UniformTerminal",
    "default_memory_limit",
    "default_safety_properties",
    "resolve_terminal",
]


class SafetyProperty:
    """Edge-level property: must hold after every atomic action."""

    name = "safety"

    def check(
        self,
        pre: PreState,
        engine: Engine,
        snapshot: Configuration,
        acted: int,
    ) -> Optional[str]:
        """Return ``None`` when the property holds, else a description."""
        raise NotImplementedError


class TerminalProperty:
    """State-level property checked at every quiescent state."""

    name = "terminal"

    def check(self, engine: Engine, snapshot: Configuration) -> Optional[str]:
        raise NotImplementedError


class StructuralIntegrity(SafetyProperty):
    """Conservation laws of the configuration 5-tuple."""

    name = "structural-integrity"

    def check(self, pre, engine, snapshot, acted):
        failures = audit_configuration(snapshot)
        if failures:
            return "; ".join(failures)
        return None


class FifoLinkIntegrity(SafetyProperty):
    """Queues are strictly FIFO and only the actor touches them.

    One atomic action of agent ``a`` may change the link queues in at
    most two ways: ``a`` leaves the *head* of its arrival queue, and/or
    ``a`` enters the *tail* of the destination queue.  Any other delta —
    a reorder, a removal from the middle, a foreign agent appearing —
    is an overtake or a corruption the model forbids.

    Under an active :class:`~repro.ring.faults.LinkSpec` the invariant
    is *preserved under pure delay* and relaxed only where duplication
    shows: the tail-enter may carry a trailing phantom (a duplicated
    delivery rides immediately behind its original), a moving agent may
    touch no queue at all (held in a delay buffer, or lost in transit),
    and a *link actor* may pop a phantom from its own queue's head or
    deliver one buffered payload to its own queue's tail (send order —
    the delay buffer is itself FIFO).  Everything else — reorders,
    foreign queues, mid-queue edits — stays forbidden.
    """

    name = "fifo-link-integrity"

    def check(self, pre, engine, snapshot, acted):
        ring = engine.ring
        faulty = ring.faults is not None
        for node in range(ring.size):
            before = pre.queues[node]
            after = ring.queue_contents(node)
            if after == before:
                continue
            if acted < 0:
                # Link actor: may only touch the queue of its own link.
                if node != -acted - 1:
                    return (
                        f"queue into node {node} changed {before} -> {after} "
                        f"by link actor {acted} of another link"
                    )
                if before and before[0] == PHANTOM and after == before[1:]:
                    continue  # phantom consumed at the head
                if len(after) == len(before) + 1 and after[: len(before)] == before:
                    continue  # one buffered payload delivered to the tail
                return (
                    f"queue into node {node} changed {before} -> {after} "
                    f"by link actor {acted}: not a phantom-pop/buffer-delivery"
                )
            popped = before[1:] if before and before[0] == acted else None
            if after == popped:
                continue  # the actor arrived from this queue's head
            if after == before + (acted,):
                continue  # the actor entered this queue's tail
            if popped is not None and after == popped + (acted,):
                continue  # n == 1: left the head and re-entered the tail
            if faulty:
                # Duplication: the phantom copy enters directly behind.
                if after == before + (acted, PHANTOM):
                    continue
                if popped is not None and after == popped + (acted, PHANTOM):
                    continue
            return (
                f"queue into node {node} changed {before} -> {after} "
                f"by agent {acted}: not a head-leave/tail-enter"
            )
        return None


class TokenMonotonicity(SafetyProperty):
    """Tokens are never removed; one action releases at most one."""

    name = "token-monotonicity"

    def check(self, pre, engine, snapshot, acted):
        after = engine.ring.token_counts
        if any(now < was for was, now in zip(pre.tokens, after)):
            return f"token count decreased: {pre.tokens} -> {after}"
        if sum(after) - sum(pre.tokens) > 1:
            return f"more than one token released in one action: {pre.tokens} -> {after}"
        return None


class MemoryBound(SafetyProperty):
    """The acting agent's audited memory stays under ``limit_bits``."""

    name = "memory-bound"

    def __init__(self, limit_bits: int) -> None:
        self.limit_bits = limit_bits

    def check(self, pre, engine, snapshot, acted):
        if acted < 0:
            return None  # link actors have no agent memory
        bits = engine.agent(acted).memory_bits()
        if bits > self.limit_bits:
            return (
                f"agent {acted} uses {bits} bits of state "
                f"(limit {self.limit_bits})"
            )
        return None


class EnabledSetConsistency(SafetyProperty):
    """The incremental enabled set matches the O(k) recompute oracle."""

    name = "enabled-set-consistency"

    def check(self, pre, engine, snapshot, acted):
        try:
            engine.check_enabledness_invariant()
        except SimulationError as error:
            return str(error)
        return None


class FaultBudgetBound(SafetyProperty):
    """Conservation modulo the declared fault budgets.

    Agents may only disappear into the declared loss budget (never more
    than ``loss`` dropped, and every drop accounted in the lost set —
    :class:`StructuralIntegrity` checks the set/counter agreement),
    phantoms may only appear inside the ``dup`` budget, and no delivery
    is ever held longer than ``delay`` link actions.  Together with the
    structural audit this is the faulty ring's conservation law: the
    reliable law (nothing appears, nothing disappears) weakened by
    exactly the declared envelope and nothing else.
    """

    name = "fault-budget-bound"

    def __init__(self, links: LinkSpec) -> None:
        # Stored as scalars (not the spec object) so the property's
        # ``vars()`` stay hashable primitives for check-spec fingerprints.
        self.delay = links.delay
        self.loss = links.loss
        self.dup = links.dup

    def check(self, pre, engine, snapshot, acted):
        faults = engine.ring.faults
        if faults is None:
            return "fault-budget property attached to a reliable engine"
        if faults.loss_used > self.loss:
            return (
                f"{faults.loss_used} agents lost, budget allows {self.loss}"
            )
        if faults.dup_used > self.dup:
            return (
                f"{faults.dup_used} phantoms spawned, budget allows {self.dup}"
            )
        for node, buffer in enumerate(faults.buffers):
            for payload, remaining in buffer:
                if remaining > self.delay:
                    return (
                        f"payload {payload} held {remaining} ticks on the "
                        f"link into {node}, bound is {self.delay}"
                    )
        return None


class UniformTerminal(TerminalProperty):
    """Every quiescent state is a uniform deployment (Definitions 1/2).

    Under link faults with a spent loss budget the claim is vacuous:
    fewer than ``k`` agents survive, so no placement of the survivors
    can satisfy the k-agent spacing condition and the algorithm cannot
    be blamed for it.  Delay and duplication change nothing here — at
    quiescence every buffer has drained and every phantom is consumed
    (a pending one would keep its link actor enabled), so the full
    check applies.
    """

    name = "uniform-terminal"

    def __init__(self, require_halted: bool, require_suspended: bool) -> None:
        self.require_halted = require_halted
        self.require_suspended = require_suspended

    def check(self, engine, snapshot):
        faults = engine.ring.faults
        if faults is not None and faults.lost:
            return None  # vacuous: the declared loss ate an agent
        report = verify_uniform_deployment(
            engine,
            require_halted=self.require_halted,
            require_suspended=self.require_suspended,
        )
        if not report:
            return report.describe()
        return None


def resolve_terminal(
    algorithm: str,
    require_halted: "Optional[bool]" = None,
    require_suspended: "Optional[bool]" = None,
) -> UniformTerminal:
    """The terminal requirement an instance of ``algorithm`` must meet.

    With explicit ``require_halted`` / ``require_suspended`` those win;
    otherwise the registered algorithm's ``halts`` flag decides
    (termination-detecting algorithms must halt, the relaxed algorithm
    must suspend).  Unregistered names without explicit requirements are
    a :class:`~repro.errors.ConfigurationError` — shared by the model
    checker and the schedule fuzzer.
    """
    if require_halted is None and require_suspended is None:
        from repro.registry import get_algorithm

        try:
            halts = get_algorithm(algorithm).halts
        except ConfigurationError:
            raise ConfigurationError(
                f"unknown algorithm {algorithm!r} and no explicit terminal "
                "requirements; pass require_halted/require_suspended"
            ) from None
        require_halted, require_suspended = halts, not halts
    return UniformTerminal(
        require_halted=bool(require_halted),
        require_suspended=bool(require_suspended),
    )


def default_memory_limit(ring_size: int, agent_count: int) -> int:
    """A generous O(k log n)-shaped ceiling on audited agent memory.

    Every algorithm in the paper is O(k log n) bits or better; 64 bits
    per stored quantity leaves ample constant-factor slack while still
    tripping on genuinely unbounded state growth within a few actions.
    """
    return 64 * (agent_count + 2) * (max(2, ring_size).bit_length() + 2)


def default_safety_properties(
    ring_size: int,
    agent_count: int,
    links: "Optional[LinkSpec]" = None,
) -> Tuple[SafetyProperty, ...]:
    """The standard per-edge property suite for one instance size.

    With an active ``links`` spec the suite additionally enforces the
    fault-budget conservation law (:class:`FaultBudgetBound`); the
    other properties are fault-aware by construction.
    """
    properties: Tuple[SafetyProperty, ...] = (
        StructuralIntegrity(),
        FifoLinkIntegrity(),
        TokenMonotonicity(),
        MemoryBound(default_memory_limit(ring_size, agent_count)),
        EnabledSetConsistency(),
    )
    if links is not None and links.active:
        properties = properties + (FaultBudgetBound(links),)
    return properties
