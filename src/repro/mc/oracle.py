"""Shared property oracles: one bundle, checked online, any driver.

The exhaustive checker, the counterexample replayer and the schedule
fuzzer all need the same thing: "run this instance one atomic action at
a time and tell me the moment a property breaks".  This module factors
that out of :mod:`repro.mc.checker` so randomized drivers get exactly
the oracles the exhaustive search uses:

* :class:`Violation` — one property failure, as plain data (kind,
  property name, message) without the schedule attached, so drivers can
  pair it with whatever execution context they hold,
* :class:`PropertyOracle` — the safety + terminal property suites of
  one ``(algorithm, placement)`` instance, with engine construction
  (including the ``factory`` injection hook the self-tests use) and a
  cached ``record_views=True`` root engine for cheap
  :meth:`~repro.sim.engine.Engine.fork`-based replays,
* :func:`drive_schedule` — replay a recorded schedule with exactly
  :class:`~repro.sim.scheduler.ReplayScheduler` semantics (disabled
  entries skipped permanently, lowest-id enabled fallback after
  exhaustion) while checking every property on every step.

``drive_schedule`` is the oracle the delta-debugging shrinker
(:mod:`repro.mc.shrink`) minimises against, and the final arbiter of
"does this schedule still reproduce the violation".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple

from repro.mc.properties import (
    SafetyProperty,
    TerminalProperty,
    default_safety_properties,
    resolve_terminal,
)
from repro.mc.state import capture_pre_state
from repro.ring.faults import LinkSpec
from repro.ring.placement import Placement
from repro.sim.agent import Agent
from repro.sim.engine import Engine

__all__ = ["Violation", "PropertyOracle", "ReplayOutcome", "drive_schedule"]

AgentsFactory = Callable[[], Sequence[Agent]]


@dataclass(frozen=True)
class Violation:
    """One property failure observed by an oracle-checked driver."""

    kind: str  # "safety" or "terminal"
    property_name: str
    message: str

    def describe(self) -> str:
        return f"[{self.kind}:{self.property_name}] {self.message}"

    def same_defect(self, other: Optional["Violation"]) -> bool:
        """Whether ``other`` is the same defect class (kind + property).

        Messages carry incidental detail (agent ids, positions) that a
        shrunk schedule legitimately changes; the shrinker only demands
        the same property to fail the same way.
        """
        return (
            other is not None
            and self.kind == other.kind
            and self.property_name == other.property_name
        )


class PropertyOracle:
    """The property suite of one instance, plus engine construction.

    ``factory`` overrides agent construction exactly as in
    :func:`repro.mc.checker.check_interleavings` (used to inject broken
    agent variants); ``require_halted`` / ``require_suspended``
    override the terminal requirement when ``algorithm`` is not a
    registered name.
    """

    def __init__(
        self,
        algorithm: str,
        placement: Placement,
        *,
        factory: Optional[AgentsFactory] = None,
        safety: Optional[Sequence[SafetyProperty]] = None,
        terminal: Optional[Sequence[TerminalProperty]] = None,
        require_halted: Optional[bool] = None,
        require_suspended: Optional[bool] = None,
        links: Optional[LinkSpec] = None,
    ) -> None:
        self.algorithm = algorithm
        self.placement = placement
        if links is not None and not links.active:
            links = None
        self.links = links
        n, k = placement.ring_size, placement.agent_count
        self.safety: Tuple[SafetyProperty, ...] = tuple(
            default_safety_properties(n, k, links) if safety is None else safety
        )
        self.terminal: Tuple[TerminalProperty, ...] = (
            (resolve_terminal(algorithm, require_halted, require_suspended),)
            if terminal is None
            else tuple(terminal)
        )
        self._factory = factory
        self._root: Optional[Engine] = None

    # -- engines -------------------------------------------------------------

    def fresh_engine(self, *, record_views: bool = False) -> Engine:
        """A brand new engine for this instance (metrics off)."""
        if self._factory is not None:
            return Engine(
                placement=self.placement,
                agents=list(self._factory()),
                collect_metrics=False,
                record_views=record_views,
                links=self.links,
            )
        from repro.experiments.runner import build_engine

        return build_engine(
            self.algorithm,
            self.placement,
            collect_metrics=False,
            record_views=record_views,
            links=self.links,
        )

    def fork_root(self) -> Engine:
        """A pristine initial-state engine via copy-on-branch ``fork()``.

        The first call builds (and caches) a ``record_views=True`` root;
        every call returns an independent fork of it, so replay-heavy
        callers (the shrinker evaluates hundreds of candidate schedules)
        skip repeated agent construction.
        """
        if self._root is None:
            self._root = self.fresh_engine(record_views=True)
        return self._root.fork()

    # -- checks --------------------------------------------------------------

    def check_step(self, pre, engine, snapshot, acted: int) -> Optional[Violation]:
        """Run every safety property on one executed edge."""
        for prop in self.safety:
            message = prop.check(pre, engine, snapshot, acted)
            if message is not None:
                return Violation(
                    kind="safety", property_name=prop.name, message=message
                )
        return None

    def check_terminal(self, engine, snapshot) -> Optional[Violation]:
        """Run every terminal property on one quiescent state."""
        for prop in self.terminal:
            message = prop.check(engine, snapshot)
            if message is not None:
                return Violation(
                    kind="terminal", property_name=prop.name, message=message
                )
        return None


@dataclass(frozen=True)
class ReplayOutcome:
    """What one oracle-checked schedule replay did."""

    executed: Tuple[int, ...]
    steps: int
    quiesced: bool
    violation: Optional[Violation]

    @property
    def ok(self) -> bool:
        """True when the replay quiesced with every property holding."""
        return self.quiesced and self.violation is None


def drive_schedule(
    oracle: PropertyOracle,
    schedule: Sequence[int],
    *,
    max_steps: int,
    engine: Optional[Engine] = None,
) -> ReplayOutcome:
    """Replay ``schedule`` with property checks on every atomic action.

    Semantics match :class:`~repro.sim.scheduler.ReplayScheduler`
    exactly: entries naming a currently-disabled (or unknown) agent are
    skipped permanently, and once the log is exhausted the lowest-id
    enabled agent runs, so the replay is a total, deterministic function
    of ``(initial state, schedule)``.  The replay stops at the first
    violation, at quiescence (after the terminal properties run), or at
    ``max_steps`` — whichever comes first.

    Pass ``engine=oracle.fork_root()`` to amortise engine construction
    across many replays of the same instance (the shrinker's hot path).
    """
    if engine is None:
        engine = oracle.fresh_engine()
    cursor = 0
    executed: List[int] = []
    violation: Optional[Violation] = None
    quiesced = False
    while len(executed) < max_steps:
        enabled = engine.enabled_agents()
        if not enabled:
            quiesced = True
            violation = oracle.check_terminal(engine, engine.snapshot())
            break
        agent: Optional[int] = None
        while cursor < len(schedule):
            candidate = schedule[cursor]
            cursor += 1
            if candidate in enabled:
                agent = candidate
                break
        if agent is None:
            agent = enabled[0]
        pre = capture_pre_state(engine)
        engine.step(agent)
        executed.append(agent)
        violation = oracle.check_step(pre, engine, engine.snapshot(), agent)
        if violation is not None:
            break
    return ReplayOutcome(
        executed=tuple(executed),
        steps=len(executed),
        quiesced=quiesced,
        violation=violation,
    )
