"""Exhaustive interleaving exploration with replayable counterexamples.

:func:`check_interleavings` performs a depth-first search over *every*
enabled-agent choice from one initial configuration: at each reachable
state it branches on each enabled agent, executing one atomic action per
branch on a copy-on-branch engine fork.  Visited states are memoised on
the canonical :class:`~repro.ring.configuration.Configuration` (states
equal up to ring rotation and agent relabelling are explored once —
sound, because the engine's transition relation is equivariant under
both symmetries).  Safety properties run on every edge, terminal
properties on every quiescent state, and a back-edge onto the current
DFS path is reported as a livelock cycle.

Because the search is exhaustive, a clean result at one size is a
*proof* of the paper's claim at that size: no fair asynchronous schedule
from that initial configuration can violate the property.  This is the
leap stateless model checkers (CHESS, SPIN) make for concurrent code,
applied to the paper's agent model.

Every violation is emitted as a :class:`Counterexample` whose
``schedule`` is the exact activation prefix from the initial state —
feed it to :class:`repro.sim.scheduler.ReplayScheduler` (or
:func:`replay_counterexample`) to reproduce the violation
deterministically, event for event.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import (
    Callable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.mc.por import agents_of_slots, sleep_after, slots_of_agents
from repro.mc.properties import (
    SafetyProperty,
    TerminalProperty,
    default_safety_properties,
    resolve_terminal,
)
from repro.mc.state import Frame, SearchStats, capture_pre_state
from repro.ring.faults import LinkSpec
from repro.ring.placement import Placement
from repro.sim.agent import Agent
from repro.sim.engine import Engine

__all__ = [
    "Counterexample",
    "MCResult",
    "check_interleavings",
    "exhaust_placements",
    "all_placements",
    "replay_counterexample",
]

AgentsFactory = Callable[[], Sequence[Agent]]


@dataclass(frozen=True)
class Counterexample:
    """A violating execution, pinned down to a replayable schedule.

    ``schedule`` is the agent-activation prefix from the initial
    configuration up to and including the violating action (for
    ``terminal`` violations it runs all the way to quiescence).  The
    kinds are ``safety`` (an edge property failed), ``terminal`` (a
    quiescent state is not a uniform deployment) and ``cycle`` (the
    search returned to a state on its own path — a livelock schedule).
    """

    algorithm: str
    placement: Placement
    schedule: Tuple[int, ...]
    kind: str
    property_name: str
    message: str

    def describe(self) -> str:
        return (
            f"[{self.kind}:{self.property_name}] {self.message} | "
            f"{self.placement.describe()} | schedule={list(self.schedule)}"
        )

    def replay_line(self) -> str:
        """A one-line reproduction recipe for bug reports and tests."""
        return (
            f"ReplayScheduler({list(self.schedule)}) on "
            f"Placement(ring_size={self.placement.ring_size}, "
            f"homes={self.placement.homes}) with {self.algorithm!r}"
        )


@dataclass(frozen=True)
class MCResult:
    """Outcome of one exhaustive check of one initial configuration.

    ``por_skipped`` counts enabled transitions the sleep-set reduction
    proved redundant and never executed; ``memo_bytes`` approximates the
    peak visited-memo footprint; ``terminal_keys`` are the canonical
    keys (hex) of every quiescent state reached — the differential POR
    gate compares them against full expansion.
    """

    algorithm: str
    placement: Placement
    explored: int
    transitions: int
    deduped: int
    terminals: int
    max_depth: int
    complete: bool
    violations: Tuple[Counterexample, ...]
    por_skipped: int = 0
    memo_bytes: int = 0
    terminal_keys: Tuple[str, ...] = ()

    @property
    def ok(self) -> bool:
        """True when the schedule space was exhausted with no violation."""
        return self.complete and not self.violations

    @property
    def verdict(self) -> str:
        """``ok`` / ``violation`` / ``truncated`` — the one-word outcome."""
        if self.violations:
            return "violation"
        return "ok" if self.complete else "truncated"

    def describe(self) -> str:
        status = "EXHAUSTED" if self.complete else "TRUNCATED"
        verdict = "ok" if not self.violations else f"{len(self.violations)} VIOLATIONS"
        return (
            f"{status} {self.algorithm} {self.placement.describe()}: "
            f"{self.explored} states, {self.transitions} transitions, "
            f"{self.deduped} deduped, {self.por_skipped} por-skipped, "
            f"{self.terminals} terminal, "
            f"max depth {self.max_depth} -> {verdict}"
        )

    def to_dict(self) -> dict:
        """A JSON-serialisable record (``repro mc --json``, CI artifacts)."""
        return {
            "algorithm": self.algorithm,
            "placement": {
                "ring_size": self.placement.ring_size,
                "homes": list(self.placement.homes),
            },
            "verdict": self.verdict,
            "ok": self.ok,
            "complete": self.complete,
            "explored": self.explored,
            "transitions": self.transitions,
            "deduped": self.deduped,
            "por_skipped": self.por_skipped,
            "terminals": self.terminals,
            "max_depth": self.max_depth,
            "memo_bytes": self.memo_bytes,
            "terminal_keys": list(self.terminal_keys),
            "violations": [
                {
                    "kind": violation.kind,
                    "property": violation.property_name,
                    "message": violation.message,
                    "schedule": list(violation.schedule),
                }
                for violation in self.violations
            ],
        }


def _cycle_message(depth: int) -> str:
    """The livelock-cycle violation text (shared with the replay check)."""
    return (
        "schedule returns to a state already on its own path "
        f"after {depth} actions"
    )


def _make_engine(
    algorithm: str,
    placement: Placement,
    factory: Optional[AgentsFactory],
    links: Optional[LinkSpec] = None,
) -> Engine:
    if factory is not None:
        return Engine(
            placement=placement,
            agents=list(factory()),
            collect_metrics=False,
            record_views=True,
            links=links,
        )
    from repro.experiments.runner import build_engine

    return build_engine(
        algorithm,
        placement,
        collect_metrics=False,
        record_views=True,
        links=links,
    )


def check_interleavings(
    algorithm: str,
    placement: Placement,
    *,
    factory: Optional[AgentsFactory] = None,
    require_halted: Optional[bool] = None,
    require_suspended: Optional[bool] = None,
    safety: Optional[Sequence[SafetyProperty]] = None,
    terminal: Optional[Sequence[TerminalProperty]] = None,
    depth_limit: Optional[int] = None,
    max_states: Optional[int] = None,
    stop_at_first: bool = True,
    por: bool = True,
    links: Optional[LinkSpec] = None,
    progress: Optional[Callable[[SearchStats], None]] = None,
    progress_every: int = 5000,
) -> MCResult:
    """Exhaust every fair interleaving from ``placement`` under ``algorithm``.

    ``factory`` overrides agent construction (used to inject broken
    variants); ``algorithm`` then only labels the result, and the
    terminal requirement must be derivable (registered name) or given
    explicitly via ``require_halted`` / ``require_suspended``.

    ``depth_limit`` bounds the schedule prefix length and ``max_states``
    the visited-state count; hitting either leaves ``complete=False``
    (the result is then a bounded check, not a proof).  With
    ``stop_at_first=False`` the search records every violation but never
    explores past a violating state.

    ``por=True`` (the default) applies the sleep-set partial-order
    reduction of :mod:`repro.mc.por`: redundant interleavings of
    commuting agent actions are pruned *without* losing any reachable
    state, so verdicts, explored-state counts and terminal-state sets
    are identical to full expansion while the executed-transition count
    drops.  ``por=False`` restores plain full expansion.

    ``links`` injects a :class:`~repro.ring.faults.LinkSpec`: the state
    graph gains link-actor branches (delayed deliveries, phantom
    consumption) and the default safety suite switches to its
    fault-aware variants.  Sleep sets are unsound under the shared
    fault-draw stream (see :mod:`repro.mc.por`), so an active spec
    forces full expansion regardless of ``por``.
    """
    n, k = placement.ring_size, placement.agent_count
    if links is not None and not links.active:
        links = None
    if links is not None:
        por = False  # agent moves stop commuting: shared draw stream
    safety_props: Tuple[SafetyProperty, ...] = tuple(
        default_safety_properties(n, k, links) if safety is None else safety
    )
    terminal_props: Tuple[TerminalProperty, ...] = (
        (resolve_terminal(algorithm, require_halted, require_suspended),)
        if terminal is None
        else tuple(terminal)
    )

    root = _make_engine(algorithm, placement, factory, links)
    root_key = root.snapshot().canonical_key()
    stats = SearchStats(explored=1)
    # visited maps canonical key -> sleep slots the state was (last)
    # explored under; an empty set means it was fully expanded.
    visited: dict = {root_key: frozenset()}
    on_path = {root_key}
    terminal_keys: List[str] = []
    violations: List[Counterexample] = []
    complete = True

    def record(kind: str, name: str, message: str, schedule: Tuple[int, ...]) -> None:
        violations.append(
            Counterexample(
                algorithm=algorithm,
                placement=placement,
                schedule=schedule,
                kind=kind,
                property_name=name,
                message=message,
            )
        )

    stack: List[Frame] = [
        Frame(
            engine=root,
            key=root_key,
            schedule=(),
            choices=list(reversed(root.enabled_agents())),
        )
    ]

    while stack:
        frame = stack[-1]
        if not frame.choices:
            on_path.discard(frame.key)
            stack.pop()
            continue
        agent_id = frame.choices.pop()
        child = frame.take_engine()
        # Sleep inheritance is decided against the *source* state's agent
        # locations, so compute it before the child engine steps.
        if por and frame.slept:
            child_sleep = sleep_after(child, frame.slept, agent_id, n)
        else:
            child_sleep = set()
        pre = capture_pre_state(child)
        child.step(agent_id)
        schedule = frame.schedule + (agent_id,)
        stats.transitions += 1
        if len(schedule) > stats.max_depth:
            stats.max_depth = len(schedule)
        if progress is not None and stats.transitions % progress_every == 0:
            progress(stats)

        snapshot = child.snapshot()
        broken = False
        for prop in safety_props:
            message = prop.check(pre, child, snapshot, agent_id)
            if message is not None:
                record("safety", prop.name, message, schedule)
                broken = True
                break
        if broken:
            if stop_at_first:
                break
            continue  # never explore past a violating state

        key = snapshot.canonical_key()
        if key in on_path:
            record(
                "cycle",
                "livelock-cycle",
                _cycle_message(len(schedule)),
                schedule,
            )
            if stop_at_first:
                break
            continue
        stored = visited.get(key)
        if stored is not None:
            sleep_slots = slots_of_agents(snapshot, child_sleep)
            if stored <= sleep_slots:
                # Everything the first visit slept through is slept here
                # too — the revisit adds nothing.  Pure memo hit.
                stats.deduped += 1
                frame.slept.add(agent_id)
                continue
            # Revisit under a smaller sleep set: transitions the stored
            # visit slept through are no longer covered on this path.
            # Re-expand exactly the difference (stored sets shrink
            # monotonically, so this terminates).
            reopen = stored - sleep_slots
            visited[key] = stored & sleep_slots
            stats.deduped += 1
            reopen_agents = sorted(agents_of_slots(snapshot, reopen))
            enabled = child.enabled_agents()
            stack.append(
                Frame(
                    engine=child,
                    key=key,
                    schedule=schedule,
                    choices=list(reversed(reopen_agents)),
                    slept=set(enabled) - set(reopen_agents),
                )
            )
            on_path.add(key)
            frame.slept.add(agent_id)
            continue
        sleep_slots = slots_of_agents(snapshot, child_sleep)
        visited[key] = sleep_slots
        stats.explored += 1

        if child.quiescent:
            stats.terminals += 1
            terminal_keys.append(key.hex())
            for prop in terminal_props:
                message = prop.check(child, snapshot)
                if message is not None:
                    record("terminal", prop.name, message, schedule)
                    broken = True
                    break
            if broken and stop_at_first:
                break
            frame.slept.add(agent_id)
            continue
        if depth_limit is not None and len(schedule) >= depth_limit:
            stats.truncated += 1
            complete = False
            continue
        if max_states is not None and stats.explored >= max_states:
            complete = False
            break

        enabled = child.enabled_agents()
        if child_sleep:
            choices = [a for a in enabled if a not in child_sleep]
            stats.por_skipped += len(enabled) - len(choices)
        else:
            choices = list(enabled)
        stack.append(
            Frame(
                engine=child,
                key=key,
                schedule=schedule,
                choices=list(reversed(choices)),
                slept=set(child_sleep),
            )
        )
        on_path.add(key)
        frame.slept.add(agent_id)

    if stop_at_first and violations:
        complete = False  # the search stopped early by design

    stats.memo_bytes = sum(16 + 8 * len(slots) for slots in visited.values())
    return MCResult(
        algorithm=algorithm,
        placement=placement,
        explored=stats.explored,
        transitions=stats.transitions,
        deduped=stats.deduped,
        terminals=stats.terminals,
        max_depth=stats.max_depth,
        complete=complete,
        violations=tuple(violations),
        por_skipped=stats.por_skipped,
        memo_bytes=stats.memo_bytes,
        terminal_keys=tuple(sorted(terminal_keys)),
    )


def all_placements(
    ring_size: int, agent_count: int, *, dedupe_rotations: bool = True
) -> Iterator[Placement]:
    """Every initial configuration with one home fixed at node 0.

    The ring is anonymous, so fixing one home at node 0 enumerates all
    configurations up to rotation *of the node labels*.  Two placements
    whose distance sequences are rotations of each other are still the
    same anonymous configuration, though — agent ids carry no meaning —
    so with ``dedupe_rotations`` (the default) only one representative
    per necklace class is yielded: the verification grid never
    re-verifies a symmetric initial configuration.  Pass
    ``dedupe_rotations=False`` to recover the raw ``C(n-1, k-1)``
    enumeration.
    """
    seen = set()
    for others in itertools.combinations(range(1, ring_size), agent_count - 1):
        placement = Placement(ring_size=ring_size, homes=(0,) + others)
        if dedupe_rotations:
            distances = placement.distances
            necklace = min(
                distances[i:] + distances[:i] for i in range(len(distances))
            )
            if necklace in seen:
                continue
            seen.add(necklace)
        yield placement


def exhaust_placements(
    algorithm: str,
    ring_size: int,
    agent_count: int,
    *,
    dedupe_rotations: bool = True,
    jobs: int = 1,
    **kwargs,
) -> List[MCResult]:
    """Run :func:`check_interleavings` on every placement of ``(n, k)``.

    ``jobs > 1`` fans whole placements across a process pool (results
    keep placement order, so the output is identical to the serial run);
    it requires a registered ``algorithm`` name — ``factory`` callables
    and ``progress`` hooks do not cross process boundaries.
    """
    placements = list(
        all_placements(ring_size, agent_count, dedupe_rotations=dedupe_rotations)
    )
    if jobs > 1:
        from repro.mc.parallel import check_placements_pool

        return check_placements_pool(algorithm, placements, jobs=jobs, **kwargs)
    return [
        check_interleavings(algorithm, placement, **kwargs)
        for placement in placements
    ]


def replay_counterexample(
    counterexample: Counterexample,
    *,
    factory: Optional[AgentsFactory] = None,
    require_halted: Optional[bool] = None,
    require_suspended: Optional[bool] = None,
    safety: Optional[Sequence[SafetyProperty]] = None,
    terminal: Optional[Sequence[TerminalProperty]] = None,
    links: Optional[LinkSpec] = None,
) -> Tuple[Engine, List[str]]:
    """Re-drive a counterexample schedule and re-check its properties.

    Rebuilds a fresh engine for the counterexample's algorithm and
    placement, executes the recorded schedule step by step, and runs
    the same property suite along the way.  Returns the final engine
    and every violation message observed — a deterministic replay of
    the original search's finding (the test suite asserts the original
    message is reproduced verbatim).  A counterexample found under a
    :class:`~repro.ring.faults.LinkSpec` must be replayed under the
    same ``links`` value — the schedule's link-actor entries only exist
    on a faulty engine.
    """
    placement = counterexample.placement
    n, k = placement.ring_size, placement.agent_count
    if links is not None and not links.active:
        links = None
    safety_props = tuple(
        default_safety_properties(n, k, links) if safety is None else safety
    )
    engine = _make_engine(counterexample.algorithm, placement, factory, links)
    messages: List[str] = []
    path_keys = {engine.snapshot().canonical_key()}
    for agent_id in counterexample.schedule:
        pre = capture_pre_state(engine)
        engine.step(agent_id)
        snapshot = engine.snapshot()
        for prop in safety_props:
            message = prop.check(pre, engine, snapshot, agent_id)
            if message is not None:
                messages.append(message)
        path_keys.add(snapshot.canonical_key())
    if counterexample.kind == "cycle":
        # A livelock schedule must land on a state it already visited:
        # the set of distinct canonical states along the path is then
        # strictly smaller than the number of path positions.
        if len(path_keys) <= len(counterexample.schedule):
            messages.append(_cycle_message(len(counterexample.schedule)))
    if counterexample.kind == "terminal":
        terminal_props: Tuple[TerminalProperty, ...] = (
            (
                resolve_terminal(
                    counterexample.algorithm, require_halted, require_suspended
                ),
            )
            if terminal is None
            else tuple(terminal)
        )
        snapshot = engine.snapshot()
        for prop in terminal_props:
            message = prop.check(engine, snapshot)
            if message is not None:
                messages.append(message)
    return engine, messages
