"""Partial-order reduction for the interleaving checker (sleep sets).

Why sleep sets and not ample/stubborn sets
------------------------------------------

The classic ample-set condition C1 ("no action outside the ample set
that is dependent on an ample action can execute before an ample
action") is global: it quantifies over whole future paths.  In this
model a distant agent can *travel* — each hop is independent of an
agent ``a`` picked as the ample singleton — until it reaches ``a``'s
node and broadcasts into ``a``'s inbox, changing what ``a``'s next
action does.  Every enabled agent can be reached that way, so a sound
ample set degenerates to full expansion and a locally-checked one is
unsound (it would prune interleavings that lead to *different* terminal
states, which the differential gate in ``tests/test_mc_por.py`` would
catch).

Sleep sets (Godefroid) sidestep the problem: they never prune *states*,
only redundant *transitions* into states whose exploration is already
covered through a commuting sibling.  Every reachable state is still
reached, so verdicts, terminal-state sets and counterexample
reachability are bit-identical to full expansion — exactly the
guarantee the checker advertises — while the executed-transition count
drops (roughly 2x on the k=3 grid cells; see ``benchmarks/bench_mc.py``).

Independence relation
---------------------

An enabled agent's atomic action is centred on its *action node* ``v``:
the node it is staying at, or the node its link queue feeds.  Its read
set is node-``v``-local (tokens, staying agents, its own inbox — agents
in transit are invisible), and its write set is node ``v`` (dequeue
from ``q_v``, settle, token release, broadcast into same-node inboxes,
suspension wake) plus at most a *tail enqueue* into the outgoing link
``q_{v+1}`` when it moves on.  Two enabled agents with *distinct*
action nodes therefore commute:

* their node read/write sets are disjoint — every enable, disable and
  wake effect is same-node;
* the only structure they can share is one link queue, and only as a
  tail enqueue (actor at ``v``) against a head dequeue (actor at
  ``v+1``) — those commute, and the dequeuer cannot observe the agent
  enqueued behind it (two *tail* writers into the same queue always
  share an action node, so they are declared dependent);
* neither can disable the other, and forward enabledness is stable: a
  distant action never empties an inbox, removes a queue head, or
  suspends an agent elsewhere.

``conflict`` therefore declares dependence exactly when the action
nodes coincide — same home node, or a shared queue head.  The
differential gate in ``tests/test_mc_por.py`` re-derives this
empirically: on the full verification grid the reduced search reaches
bit-identical state and terminal sets.

Sleep sets are stored per visited state in *canonical slot* coordinates
(:meth:`repro.ring.configuration.Configuration.packed_layout`) so they
survive the agent-relabelling quotient of the memo table; a revisit
whose inherited sleep set is not a superset of the stored one re-expands
exactly the difference (the standard sleep-set revisit rule — stored
sets shrink monotonically, so the search terminates).

Link faults: the new action class, and why the reduction stands down
--------------------------------------------------------------------

An active :class:`~repro.ring.faults.LinkSpec` adds *link actor*
actions (pseudo-id ``-(v + 1)`` for the link into node ``v``): popping
a phantom from ``q_v``'s head or ticking the link's delay buffer
(delivering its head into ``q_v``'s tail when the countdown ends).  A
link action's footprint is exactly ``{q_v, buffer_v}`` — it draws
nothing, reads no node state and touches no inbox — so it commutes
with every action whose node is neither ``v`` (head of ``q_v``) nor
``v - 1`` (a forward move from ``v - 1`` feeds ``q_v``/``buffer_v``),
and two link actors of distinct links always commute.

Agent actions, however, stop commuting with *each other*: every
forward move consumes one ordinal from the shared deterministic draw
stream (:func:`repro.ring.faults.fault_fraction` is keyed on the
label-invariant global move count), so reordering two moves reassigns
their fault draws and can reach genuinely different states.  Whether
an enabled agent will move is unknowable before running its protocol
step, so *every* pair of agent actions is potentially dependent
through the draw counter.  A sound sleep set under faults is therefore
empty — the checker runs faulty instances with the reduction disabled
(full expansion; verdicts unaffected, only the transition count grows)
and link actors never enter a sleep set.  Recovering reduction under
faults would need per-link draw streams keyed on something rotation-
invariant yet order-insensitive; nothing of the sort is attempted here.
"""

from __future__ import annotations

from typing import AbstractSet, Iterable, Set

from repro.ring.configuration import Configuration
from repro.sim.engine import Engine

__all__ = [
    "action_node",
    "conflict",
    "sleep_after",
    "slots_of_agents",
    "agents_of_slots",
]


def action_node(engine: Engine, agent_id: int) -> int:
    """The node whose local state ``agent_id``'s next action touches.

    A staying agent acts at its current node; a queued agent's dequeue
    acts at the node its link feeds; a link actor (negative pseudo-id,
    only under active link faults) acts at the node its link enters.
    """
    if agent_id < 0:
        return -agent_id - 1
    _, node = engine.ring.locate(agent_id)
    return node


def conflict(ring_size: int, node_a: int, node_b: int) -> bool:
    """Dependence between enabled actions: same action node.

    See the module docstring for why distinct action nodes always
    commute in this engine (adjacent-link tail enqueues included).
    """
    return node_a % ring_size == node_b % ring_size


def sleep_after(
    engine: Engine, slept: AbstractSet[int], acting: int, ring_size: int
) -> Set[int]:
    """The sleep set inherited by the successor reached via ``acting``.

    Called on the child engine *before* it steps, so agent locations are
    still the source state's.  An agent stays asleep across ``acting``'s
    transition only if it is independent of it — a different action
    node — because only then does the commuting argument (its successor
    is covered via the explored sibling) carry over.
    """
    if not slept:
        return set()
    acting_node = action_node(engine, acting)
    keep: Set[int] = set()
    for agent_id in slept:
        if agent_id == acting:
            continue
        if not conflict(ring_size, acting_node, action_node(engine, agent_id)):
            keep.add(agent_id)
    return keep


def slots_of_agents(
    snapshot: Configuration, agent_ids: Iterable[int]
) -> frozenset:
    """Map concrete agent ids to canonical slots for memo storage."""
    ids = tuple(agent_ids)
    if not ids:
        return frozenset()
    layout = snapshot.packed_layout()[1]
    index = {agent_id: slot for slot, agent_id in enumerate(layout)}
    return frozenset(index[agent_id] for agent_id in ids)


def agents_of_slots(snapshot: Configuration, slots: Iterable[int]) -> Set[int]:
    """Map canonical slots back to this snapshot's concrete agent ids."""
    layout = snapshot.packed_layout()[1]
    return {layout[slot] for slot in slots}
