"""Interleaving model checker: exhaustive schedule-space verification.

The paper's correctness claims quantify over *every* fair asynchronous
schedule; the experiment suite samples adversarial schedulers, but a
sample can miss activation-order-specific bugs.  This package closes
that gap on small instances: :func:`check_interleavings` exhausts every
enabled-agent choice from an initial configuration via DFS over forked
engine states, memoising visited states on the rotation- and
relabelling-canonical :class:`~repro.ring.configuration.Configuration`,
checking safety properties on every edge and uniform deployment on
every terminal state, and emitting any violating path as a replayable
schedule.

Entry points: :func:`check_interleavings` (one placement),
:func:`exhaust_placements` (all placements of an ``(n, k)``),
:func:`replay_counterexample` (deterministic reproduction), and the
``repro mc`` CLI command.
"""

from repro.mc.checker import (
    Counterexample,
    MCResult,
    all_placements,
    check_interleavings,
    exhaust_placements,
    replay_counterexample,
)
from repro.mc.properties import (
    EnabledSetConsistency,
    FifoLinkIntegrity,
    MemoryBound,
    SafetyProperty,
    StructuralIntegrity,
    TerminalProperty,
    TokenMonotonicity,
    UniformTerminal,
    default_memory_limit,
    default_safety_properties,
)
from repro.mc.state import Frame, PreState, SearchStats, capture_pre_state

__all__ = [
    "Counterexample",
    "MCResult",
    "all_placements",
    "check_interleavings",
    "exhaust_placements",
    "replay_counterexample",
    "SafetyProperty",
    "TerminalProperty",
    "StructuralIntegrity",
    "FifoLinkIntegrity",
    "TokenMonotonicity",
    "MemoryBound",
    "EnabledSetConsistency",
    "UniformTerminal",
    "default_memory_limit",
    "default_safety_properties",
    "Frame",
    "PreState",
    "SearchStats",
    "capture_pre_state",
]
