"""Interleaving model checker: exhaustive schedule-space verification.

The paper's correctness claims quantify over *every* fair asynchronous
schedule; the experiment suite samples adversarial schedulers, but a
sample can miss activation-order-specific bugs.  This package closes
that gap on small instances: :func:`check_interleavings` exhausts every
enabled-agent choice from an initial configuration via DFS over forked
engine states, memoising visited states on the rotation- and
relabelling-canonical :class:`~repro.ring.configuration.Configuration`,
checking safety properties on every edge and uniform deployment on
every terminal state, and emitting any violating path as a replayable
schedule.

Entry points: :func:`check_interleavings` (one placement),
:func:`exhaust_placements` (all placements of an ``(n, k)``, optionally
fanned across a process pool), :func:`check_frontier` (wave-synchronous
parallel exploration with an optional disk-spilled, resumable
frontier), :func:`replay_counterexample` (deterministic reproduction),
and the ``repro mc`` CLI command.

Exploration applies the sleep-set partial-order reduction of
:mod:`repro.mc.por` by default: redundant interleavings of commuting
agent actions (distinct action nodes) are pruned without losing any
reachable state, so verdicts and terminal sets match full expansion
while the executed-transition count roughly halves.

The property oracles are shared beyond the exhaustive search:
:class:`~repro.mc.oracle.PropertyOracle` bundles one instance's suites
for any driver, :func:`~repro.mc.oracle.drive_schedule` replays a
schedule under them with ReplayScheduler semantics, and
:func:`~repro.mc.shrink.shrink_schedule` delta-debugs a violating
schedule to a 1-minimal reproduction — the machinery the
coverage-guided fuzzer (:mod:`repro.fuzz`) builds on.
"""

from repro.mc.checker import (
    Counterexample,
    MCResult,
    all_placements,
    check_interleavings,
    exhaust_placements,
    replay_counterexample,
)
from repro.mc.frontier import FrontierItem, FrontierSpill, check_hash, check_spec
from repro.mc.oracle import (
    PropertyOracle,
    ReplayOutcome,
    Violation,
    drive_schedule,
)
from repro.mc.parallel import check_frontier, check_placements_pool
from repro.mc.por import action_node, conflict, sleep_after
from repro.mc.properties import (
    EnabledSetConsistency,
    FifoLinkIntegrity,
    MemoryBound,
    SafetyProperty,
    StructuralIntegrity,
    TerminalProperty,
    TokenMonotonicity,
    UniformTerminal,
    default_memory_limit,
    default_safety_properties,
    resolve_terminal,
)
from repro.mc.shrink import shrink_schedule
from repro.mc.state import Frame, PreState, SearchStats, capture_pre_state

__all__ = [
    "Counterexample",
    "MCResult",
    "PropertyOracle",
    "ReplayOutcome",
    "Violation",
    "FrontierItem",
    "FrontierSpill",
    "action_node",
    "all_placements",
    "check_frontier",
    "check_hash",
    "check_interleavings",
    "check_placements_pool",
    "check_spec",
    "conflict",
    "drive_schedule",
    "exhaust_placements",
    "replay_counterexample",
    "sleep_after",
    "resolve_terminal",
    "shrink_schedule",
    "SafetyProperty",
    "TerminalProperty",
    "StructuralIntegrity",
    "FifoLinkIntegrity",
    "TokenMonotonicity",
    "MemoryBound",
    "EnabledSetConsistency",
    "UniformTerminal",
    "default_memory_limit",
    "default_safety_properties",
    "Frame",
    "PreState",
    "SearchStats",
    "capture_pre_state",
]
