"""Disk-spilled, resumable model-checker frontier.

A long exhaustive check is a computation worth protecting: hours of
exploration die with the process on the first OOM kill or pre-emption.
This module spills the wave-synchronous frontier driver's open frontier
and visited-key memo to ``<store>/mc/<check-hash>/``, keyed — like the
RunStore — by a content hash of the *check spec* (algorithm, placement,
POR mode, limits, terminal requirements, packed-encoding version), so a
killed ``repro mc --store ... --resume`` continues from the last
committed wave and finishes with the same verdict and cumulative stats
as an uninterrupted run (pinned by the kill-resume test).

Layout
------

``meta.json``
    The check spec and its hash, written once at fresh start.
``journal.jsonl``
    Append-only wave journal.  Each wave appends a *block*: visited-memo
    deltas (``{"t":"v"}``), terminal-state keys (``{"t":"tk"}``),
    violations (``{"t":"x"}``), the entire next frontier (``{"t":"i"}``)
    and finally one commit marker (``{"t":"c"}``) carrying the wave
    number and cumulative :class:`~repro.mc.state.SearchStats`.  The
    file is flushed and fsynced once per wave, after the commit marker.
``result.json``
    The finished :meth:`~repro.mc.checker.MCResult.to_dict`, written
    atomically (tmp + rename) when the check completes; a resume of a
    completed check short-circuits to it.

Torn-tail safety mirrors :mod:`repro.store.jsonl`: replay buffers lines
and applies a block only when its commit marker parses — a SIGKILL
mid-block (or mid-line) loses at most the uncommitted wave, never the
journal's integrity.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.mc.state import SearchStats
from repro.ring.configuration import PACKED_ENCODING_VERSION
from repro.ring.placement import Placement

__all__ = [
    "FrontierItem",
    "FrontierSpill",
    "ResumeState",
    "check_spec",
    "check_hash",
]


@dataclass(frozen=True)
class FrontierItem:
    """One open state awaiting expansion.

    ``key`` is the packed canonical key, ``schedule`` an activation
    prefix that reaches the state (workers replay it from the root),
    ``sleep`` the canonical sleep slots the state is to be expanded
    under, and ``restrict`` — when not ``None`` — the exact slots to
    (re-)expand: the sleep-set revisit rule re-opens only the
    transitions a previous visit slept through.
    """

    key: bytes
    schedule: Tuple[int, ...]
    sleep: frozenset = frozenset()
    restrict: Optional[Tuple[int, ...]] = None

    def to_json(self) -> dict:
        return {
            "t": "i",
            "k": self.key.hex(),
            "sch": list(self.schedule),
            "s": sorted(self.sleep),
            "r": None if self.restrict is None else list(self.restrict),
        }

    @classmethod
    def from_json(cls, record: dict) -> "FrontierItem":
        return cls(
            key=bytes.fromhex(record["k"]),
            schedule=tuple(record["sch"]),
            sleep=frozenset(record["s"]),
            restrict=None if record["r"] is None else tuple(record["r"]),
        )


@dataclass
class ResumeState:
    """Everything the frontier driver needs to continue a killed check."""

    wave: int
    visited: Dict[bytes, frozenset]
    frontier: List[FrontierItem]
    stats: SearchStats
    violations: List[dict] = field(default_factory=list)
    terminal_keys: List[str] = field(default_factory=list)


def check_spec(
    algorithm: str,
    placement: Placement,
    *,
    por: bool,
    depth_limit: Optional[int],
    max_states: Optional[int],
    stop_at_first: bool,
    safety_props: tuple,
    terminal_props: tuple,
    links: "Optional[object]" = None,
) -> dict:
    """The canonical, JSON-stable description of one check.

    Everything that changes the *meaning* of the exploration is in here
    (including the packed-encoding version — a format bump must never
    resume an old spill); runtime knobs like ``jobs`` are not, so a
    check can resume under a different worker count.  ``links`` (a
    :class:`~repro.ring.faults.LinkSpec`, serialised) is emitted only
    when active, so every reliable check keeps its historical hash.
    """

    def props(sequence: tuple) -> list:
        described = []
        for prop in sequence:
            params = {
                name: value
                for name, value in sorted(vars(prop).items())
                if isinstance(value, (bool, int, float, str, type(None)))
            }
            described.append([prop.name, params])
        return described

    spec = {
        "encoding": PACKED_ENCODING_VERSION,
        "algorithm": algorithm,
        "ring_size": placement.ring_size,
        "homes": list(placement.homes),
        "por": por,
        "depth_limit": depth_limit,
        "max_states": max_states,
        "stop_at_first": stop_at_first,
        "safety": props(safety_props),
        "terminal": props(terminal_props),
    }
    if links is not None and getattr(links, "active", False):
        spec["links"] = links.to_dict()
    return spec


def check_hash(spec: dict) -> str:
    """SHA-256 of the canonical JSON form of ``spec``."""
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def _stats_to_json(stats: SearchStats) -> dict:
    return {
        "explored": stats.explored,
        "transitions": stats.transitions,
        "deduped": stats.deduped,
        "terminals": stats.terminals,
        "max_depth": stats.max_depth,
        "truncated": stats.truncated,
        "por_skipped": stats.por_skipped,
    }


def _stats_from_json(record: dict) -> SearchStats:
    return SearchStats(
        explored=record["explored"],
        transitions=record["transitions"],
        deduped=record["deduped"],
        terminals=record["terminals"],
        max_depth=record["max_depth"],
        truncated=record["truncated"],
        por_skipped=record["por_skipped"],
    )


class FrontierSpill:
    """Journal-backed persistence for one check's frontier and memo."""

    def __init__(self, store_root: str, spec: dict) -> None:
        self.spec = spec
        self.hash = check_hash(spec)
        self.directory = Path(store_root) / "mc" / self.hash
        self._journal = None

    # -- lifecycle -----------------------------------------------------

    def load_result(self) -> Optional[dict]:
        """The finished result dict, if this check already completed."""
        path = self.directory / "result.json"
        if not path.exists():
            return None
        try:
            return json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            return None

    def resume_state(self) -> Optional[ResumeState]:
        """Replay the journal up to its last committed wave.

        Returns ``None`` when there is nothing committed to resume from
        (missing or fully torn journal) — the caller then starts fresh.
        Uncommitted trailing lines (a wave interrupted mid-append) are
        discarded.
        """
        path = self.directory / "journal.jsonl"
        if not path.exists():
            return None
        state: Optional[ResumeState] = None
        visited: Dict[bytes, frozenset] = {}
        violations: List[dict] = []
        terminal_keys: List[str] = []
        block_visited: List[Tuple[bytes, frozenset]] = []
        block_items: List[FrontierItem] = []
        block_violations: List[dict] = []
        block_terminal: List[str] = []
        with path.open("r", encoding="utf-8") as handle:
            for line in handle:
                if not line.endswith("\n"):
                    break  # torn tail: mid-line kill
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    break
                kind = record.get("t")
                if kind == "v":
                    block_visited.append(
                        (bytes.fromhex(record["k"]), frozenset(record["s"]))
                    )
                elif kind == "i":
                    block_items.append(FrontierItem.from_json(record))
                elif kind == "x":
                    block_violations.append(record)
                elif kind == "tk":
                    block_terminal.append(record["k"])
                elif kind == "c":
                    for key, slots in block_visited:
                        visited[key] = slots
                    violations.extend(block_violations)
                    terminal_keys.extend(block_terminal)
                    state = ResumeState(
                        wave=record["w"],
                        visited=visited,
                        frontier=list(block_items),
                        stats=_stats_from_json(record["stats"]),
                        violations=violations,
                        terminal_keys=terminal_keys,
                    )
                    block_visited = []
                    block_items = []
                    block_violations = []
                    block_terminal = []
        return state

    def start_fresh(self) -> None:
        """Wipe any previous spill for this spec and write ``meta.json``."""
        if self.directory.exists():
            shutil.rmtree(self.directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        meta = {"version": 1, "hash": self.hash, "spec": self.spec}
        (self.directory / "meta.json").write_text(
            json.dumps(meta, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

    def _handle(self):
        if self._journal is None:
            self._journal = (self.directory / "journal.jsonl").open(
                "a", encoding="utf-8"
            )
        return self._journal

    # -- per-wave append ----------------------------------------------

    def append_wave(
        self,
        wave: int,
        visited_delta: List[Tuple[bytes, frozenset]],
        frontier: List[FrontierItem],
        violations: List[dict],
        terminal_keys: List[str],
        stats: SearchStats,
    ) -> None:
        """Append one wave block and fsync it behind a commit marker."""
        handle = self._handle()
        lines: List[str] = []
        for key, slots in visited_delta:
            lines.append(
                json.dumps(
                    {"t": "v", "k": key.hex(), "s": sorted(slots)},
                    separators=(",", ":"),
                )
            )
        for key_hex in terminal_keys:
            lines.append(json.dumps({"t": "tk", "k": key_hex}, separators=(",", ":")))
        for violation in violations:
            lines.append(json.dumps(violation, separators=(",", ":")))
        for item in frontier:
            lines.append(json.dumps(item.to_json(), separators=(",", ":")))
        lines.append(
            json.dumps(
                {"t": "c", "w": wave, "stats": _stats_to_json(stats)},
                separators=(",", ":"),
            )
        )
        handle.write("\n".join(lines) + "\n")
        handle.flush()
        os.fsync(handle.fileno())

    def finish(self, result: dict) -> None:
        """Atomically record the completed result and close the journal."""
        tmp = self.directory / "result.json.tmp"
        tmp.write_text(
            json.dumps(result, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        os.replace(tmp, self.directory / "result.json")
        self.close()

    def close(self) -> None:
        if self._journal is not None:
            self._journal.close()
            self._journal = None
