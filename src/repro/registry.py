"""Typed algorithm and scheduler registries (the declarative experiment API).

Every entry point of the reproduction — ``run_experiment``, the sweep
runner, the model checker and the CLI — needs to name algorithms and
schedulers without constructing them by hand.  This module is the single
source of truth for both:

* :class:`AlgorithmInfo` — a frozen record per deployment algorithm
  (factory, halting behaviour, knowledge regime, the paper's Table 1
  memory/time bounds, description), registered by decorating the agent
  class with :func:`register_algorithm`.  The four core algorithms, the
  ``known_n_full`` variant and the model checker's deliberately broken
  self-test agent (``wake_race``, flagged ``selftest=True``) all
  register themselves this way.
* :class:`SchedulerInfo` — a frozen record per scheduler (class, typed
  parameter declarations, fairness/time semantics), registered by
  decorating the scheduler class with :func:`register_scheduler`.

Scheduler *spec strings* give every entry point one shared syntax for
parameterised schedulers::

    sync
    random:seed=7
    laggard:victims=0-2,patience=5,seed=3

:func:`parse_scheduler_spec` turns the string into a canonical frozen
:class:`SchedulerSpec`, :func:`format_scheduler_spec` prints it back
(parse -> format -> parse is the identity), and
:func:`build_scheduler` instantiates it.  A ``seed`` parameter left
unset in the spec is filled from the *context seed* (the sweep cell
seed, ``--scheduler-seed``, ...), so one spec string can drive many
deterministic trials.

Lookups never require manual imports: the registries lazily import the
modules that carry the built-in registrations the first time a name is
resolved, so ``build_scheduler("chaos", seed=1)`` works from a cold
interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
    Type,
    TypeVar,
    Union,
)

from repro.errors import ConfigurationError

__all__ = [
    "AlgorithmInfo",
    "SchedulerInfo",
    "SchedulerParam",
    "SchedulerSpec",
    "algorithm_names",
    "build_scheduler",
    "format_scheduler_spec",
    "get_algorithm",
    "get_scheduler",
    "parse_scheduler_spec",
    "register_algorithm",
    "register_algorithm_info",
    "register_scheduler",
    "registry_dump",
    "scheduler_names",
    "unregister_algorithm",
]

T = TypeVar("T")

#: Sentinel default for seed-like parameters: "use the context seed".
CONTEXT_SEED = None


@dataclass(frozen=True)
class AlgorithmInfo:
    """Everything the harness knows about one registered algorithm.

    ``factory(k, n)`` returns one fresh agent for an instance with ``k``
    agents on an ``n``-node ring (``n`` may be 0 for algorithms that do
    not use it).  ``halts`` selects the terminal-state requirement the
    verifier applies (halted for termination-detecting algorithms,
    suspended for the relaxed problem).  ``knowledge``, the bounds and
    ``table1_row`` carry the paper's Table 1 metadata; ``selftest``
    marks deliberately broken agents that exist to prove the model
    checker can find bugs (they are hidden from experiment-facing
    listings such as ``ALGORITHMS`` and the ``repro run`` choices).
    """

    name: str
    factory: Callable[[int, int], object]
    halts: bool
    knowledge: str
    memory_bound: str
    time_bound: str
    table1_row: str
    description: str
    selftest: bool = False

    def make_agents(self, agent_count: int, ring_size: int = 0) -> Tuple[object, ...]:
        """One fresh agent per home (``ring_size`` only matters for n-aware ones)."""
        return tuple(self.factory(agent_count, ring_size) for _ in range(agent_count))

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready metadata row (the factory itself is not serialisable)."""
        return {
            "name": self.name,
            "halts": self.halts,
            "knowledge": self.knowledge,
            "memory_bound": self.memory_bound,
            "time_bound": self.time_bound,
            "table1_row": self.table1_row,
            "description": self.description,
            "selftest": self.selftest,
        }


@dataclass(frozen=True)
class SchedulerParam:
    """One typed, defaultable parameter of a registered scheduler.

    ``kind`` is ``"int"`` or ``"int_list"`` (lists are written with
    ``-`` between elements: ``victims=0-2``).  A default of
    :data:`CONTEXT_SEED` (``None``) marks a seed-like parameter that is
    filled from the context seed when the spec string leaves it unset.
    ``aliases`` are accepted on parse but always formatted back under
    the canonical ``name``.
    """

    name: str
    kind: str = "int"
    default: object = 0
    aliases: Tuple[str, ...] = ()
    doc: str = ""

    def parse(self, text: str) -> object:
        """Parse one ``key=value`` right-hand side into a typed value."""
        try:
            if self.kind == "int":
                return int(text)
            if self.kind == "int_list":
                if text == "":
                    return ()
                parts = text.split("-")
                # An empty chunk means a stray sign or separator
                # ("-1", "1--2", "1-"): reject rather than silently
                # dropping it and parsing a different id list.
                if any(part == "" for part in parts):
                    raise ValueError(text)
                return tuple(int(part) for part in parts)
        except ValueError:
            pass
        raise ConfigurationError(
            f"bad value {text!r} for scheduler parameter {self.name!r} "
            f"(expected {self.kind}, e.g. "
            f"{'3' if self.kind == 'int' else '0-2-5'})"
        )

    def format(self, value: object) -> str:
        """Print a typed value back into spec-string syntax."""
        if self.kind == "int_list":
            return "-".join(str(item) for item in value)  # type: ignore[union-attr]
        return str(value)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready parameter declaration."""
        return {
            "name": self.name,
            "kind": self.kind,
            "default": (
                list(self.default)
                if isinstance(self.default, tuple)
                else self.default
            ),
            "aliases": list(self.aliases),
            "doc": self.doc,
        }


@dataclass(frozen=True)
class SchedulerInfo:
    """Everything the harness knows about one registered scheduler."""

    name: str
    cls: Type
    params: Tuple[SchedulerParam, ...]
    counts_time: bool
    description: str
    builder: Callable[..., object] = field(repr=False, default=None)

    def param(self, key: str) -> SchedulerParam:
        """Resolve ``key`` (canonical name or alias) to its declaration."""
        for param in self.params:
            if key == param.name or key in param.aliases:
                return param
        known = [param.name for param in self.params]
        raise ConfigurationError(
            f"scheduler {self.name!r} has no parameter {key!r}; "
            f"known parameters: {known or '(none)'}"
        )

    def build(
        self, args: Optional[Dict[str, object]] = None, seed: int = 0
    ) -> object:
        """Instantiate the scheduler from typed args plus the context seed."""
        resolved: Dict[str, object] = {}
        args = dict(args or {})
        for param in self.params:
            if param.name in args:
                resolved[param.name] = args.pop(param.name)
            elif param.default is CONTEXT_SEED:
                resolved[param.name] = seed
            else:
                resolved[param.name] = param.default
        if args:
            raise ConfigurationError(
                f"scheduler {self.name!r} got unknown arguments {sorted(args)}"
            )
        return self.builder(self.cls, resolved)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready metadata row (class and builder are not serialisable)."""
        return {
            "name": self.name,
            "class": self.cls.__name__,
            "counts_time": self.counts_time,
            "description": self.description,
            "params": [param.to_dict() for param in self.params],
        }


_ALGORITHMS: Dict[str, AlgorithmInfo] = {}
_SCHEDULERS: Dict[str, SchedulerInfo] = {}
_BUILTINS_LOADED = False

#: Modules whose import registers the built-in algorithms and schedulers.
_BUILTIN_MODULES = (
    "repro.sim.scheduler",
    "repro.core.known_k_full",
    "repro.core.known_n_full",
    "repro.core.known_k_logspace",
    "repro.core.unknown",
    "repro.mc.selftest",
)


def _ensure_builtins() -> None:
    """Import the modules carrying built-in registrations (idempotent)."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)


def register_algorithm_info(info: AlgorithmInfo, *, replace: bool = False) -> None:
    """Register a fully built :class:`AlgorithmInfo` record."""
    if not replace and info.name in _ALGORITHMS:
        raise ConfigurationError(
            f"algorithm {info.name!r} is already registered"
        )
    _ALGORITHMS[info.name] = info


def unregister_algorithm(name: str) -> None:
    """Remove a registered algorithm (back-compat mutation path)."""
    _ensure_builtins()
    if name not in _ALGORITHMS:
        raise ConfigurationError(f"algorithm {name!r} is not registered")
    del _ALGORITHMS[name]


def register_algorithm(
    name: str,
    *,
    build: Callable[[Type, int, int], object],
    halts: bool,
    knowledge: str,
    memory_bound: str,
    time_bound: str,
    table1_row: str,
    description: str,
    selftest: bool = False,
) -> Callable[[Type[T]], Type[T]]:
    """Class decorator: register an agent class as a named algorithm.

    ``build(cls, k, n)`` adapts the class constructor to the uniform
    ``factory(k, n)`` signature — e.g. ``lambda cls, k, n: cls(k)`` for
    knowledge-of-k agents, ``lambda cls, k, n: cls(n)`` for
    knowledge-of-n ones.
    """

    def decorate(cls: Type[T]) -> Type[T]:
        register_algorithm_info(
            AlgorithmInfo(
                name=name,
                factory=lambda k, n, _cls=cls: build(_cls, k, n),
                halts=halts,
                knowledge=knowledge,
                memory_bound=memory_bound,
                time_bound=time_bound,
                table1_row=table1_row,
                description=description,
                selftest=selftest,
            )
        )
        return cls

    return decorate


def register_scheduler(
    name: str,
    *,
    params: Sequence[SchedulerParam] = (),
    build: Optional[Callable[[Type, Dict[str, object]], object]] = None,
    description: str = "",
) -> Callable[[Type[T]], Type[T]]:
    """Class decorator: register a scheduler class under a spec name.

    ``build(cls, args)`` receives fully resolved typed arguments (every
    declared parameter present, seeds already substituted); the default
    passes them as keyword arguments.
    """
    param_tuple = tuple(params)
    seen: set = set()
    for param in param_tuple:
        for key in (param.name, *param.aliases):
            if key in seen:
                raise ConfigurationError(
                    f"scheduler {name!r} declares parameter name {key!r} twice"
                )
            seen.add(key)

    def decorate(cls: Type[T]) -> Type[T]:
        if name in _SCHEDULERS:
            raise ConfigurationError(
                f"scheduler {name!r} is already registered"
            )
        builder = build or (lambda _cls, args: _cls(**args))
        doc_lines = (cls.__doc__ or "").splitlines()
        _SCHEDULERS[name] = SchedulerInfo(
            name=name,
            cls=cls,
            params=param_tuple,
            counts_time=bool(getattr(cls, "counts_time", False)),
            description=description or (doc_lines[0] if doc_lines else ""),
            builder=builder,
        )
        return cls

    return decorate


def get_algorithm(name: str) -> AlgorithmInfo:
    """Look up a registered algorithm; raise with the known names otherwise."""
    _ensure_builtins()
    try:
        return _ALGORITHMS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown algorithm {name!r}; choose from {algorithm_names()}"
        ) from None


def get_scheduler(name: str) -> SchedulerInfo:
    """Look up a registered scheduler; raise with the known names otherwise."""
    _ensure_builtins()
    try:
        return _SCHEDULERS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scheduler {name!r}; choose from {scheduler_names()}"
        ) from None


def algorithm_names(*, include_selftest: bool = False) -> List[str]:
    """Sorted registered algorithm names (self-test agents opt-in)."""
    _ensure_builtins()
    return sorted(
        name
        for name, info in _ALGORITHMS.items()
        if include_selftest or not info.selftest
    )


def scheduler_names() -> List[str]:
    """Sorted registered scheduler spec names."""
    _ensure_builtins()
    return sorted(_SCHEDULERS)


@dataclass(frozen=True)
class SchedulerSpec:
    """A parsed scheduler spec: canonical name plus typed arguments.

    ``args`` holds only the parameters the spec string pinned
    explicitly, as ``(canonical_name, value)`` pairs in the scheduler's
    declaration order — so equal specs compare equal and
    ``parse(format(spec)) == spec``.  Unpinned parameters fall back to
    their declared defaults (seed-like ones to the context seed) at
    :meth:`build` time.
    """

    name: str
    args: Tuple[Tuple[str, object], ...] = ()

    def arg_dict(self) -> Dict[str, object]:
        """The pinned arguments as a plain dict."""
        return dict(self.args)

    def describe(self) -> str:
        """The canonical spec string (see :func:`format_scheduler_spec`)."""
        return format_scheduler_spec(self)

    def build(self, seed: int = 0) -> object:
        """Instantiate the scheduler, filling unpinned seeds from ``seed``."""
        return get_scheduler(self.name).build(self.arg_dict(), seed=seed)


def parse_scheduler_spec(text: Union[str, SchedulerSpec]) -> SchedulerSpec:
    """Parse ``"name:key=value,key=value"`` into a canonical spec.

    Aliases resolve to canonical parameter names, values are typed per
    the declaration, duplicate keys are rejected, and the resulting
    argument tuple is ordered by declaration — the same spec string
    always produces the same (hashable, comparable) :class:`SchedulerSpec`.
    Passing an already parsed spec returns it unchanged (after
    re-validation against the registry).
    """
    if isinstance(text, SchedulerSpec):
        info = get_scheduler(text.name)
        for key, _ in text.args:
            info.param(key)
        return text
    if not isinstance(text, str) or not text.strip():
        raise ConfigurationError(
            f"bad scheduler spec {text!r}: expected 'name' or "
            "'name:key=value,...'"
        )
    name, _, arg_text = text.strip().partition(":")
    info = get_scheduler(name)
    pinned: Dict[str, object] = {}
    if arg_text:
        for chunk in arg_text.split(","):
            chunk = chunk.strip()
            if not chunk:
                continue
            key, sep, value_text = chunk.partition("=")
            if not sep or not key:
                raise ConfigurationError(
                    f"bad scheduler spec {text!r}: argument {chunk!r} is not "
                    "key=value"
                )
            param = info.param(key.strip())
            if param.name in pinned:
                raise ConfigurationError(
                    f"bad scheduler spec {text!r}: parameter {param.name!r} "
                    "given twice"
                )
            pinned[param.name] = param.parse(value_text.strip())
    args = tuple(
        (param.name, pinned[param.name])
        for param in info.params
        if param.name in pinned
    )
    return SchedulerSpec(name=info.name, args=args)


def format_scheduler_spec(spec: Union[str, SchedulerSpec]) -> str:
    """Print a spec back into its canonical string form.

    The canonical form uses canonical parameter names, declaration
    order, and no whitespace, so ``parse(format(parse(s))) ==
    parse(s)`` for every valid ``s``.
    """
    spec = parse_scheduler_spec(spec)
    if not spec.args:
        return spec.name
    info = get_scheduler(spec.name)
    parts = [
        f"{key}={info.param(key).format(value)}" for key, value in spec.args
    ]
    return f"{spec.name}:{','.join(parts)}"


def build_scheduler(spec: Union[str, SchedulerSpec], seed: int = 0) -> object:
    """One-call construction: parse (if needed) and instantiate.

    ``seed`` is the context seed filling any seed-like parameter the
    spec leaves unpinned; a ``seed=...`` inside the spec always wins.
    """
    return parse_scheduler_spec(spec).build(seed=seed)


def registry_dump() -> Dict[str, List[Dict[str, object]]]:
    """Machine-readable dump of both registries (``repro list --json``)."""
    _ensure_builtins()
    return {
        "algorithms": [
            _ALGORITHMS[name].to_dict()
            for name in algorithm_names(include_selftest=True)
        ],
        "schedulers": [
            _SCHEDULERS[name].to_dict() for name in scheduler_names()
        ],
    }
