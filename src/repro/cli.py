"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list``          — registered algorithms and their Table 1 rows,
* ``run``           — one experiment on a random or explicit placement,
* ``sweep``         — Table 1 style (n, k) grids with log-log slopes,
* ``psweep``        — full (algorithm, n, k, scheduler, trial) grids
  fanned across a process pool with deterministic per-cell seeds,
* ``symmetry``      — Result 4 adaptivity sweep over symmetry degrees,
* ``impossibility`` — the Theorem 5 / Figure 7 construction,
* ``lower-bound``   — Theorem 1 quarter-packed comparison vs optimum,
* ``compare``       — all algorithms head-to-head on one placement,
* ``timeline``      — ASCII space-time diagram of one run,
* ``mc``            — exhaustive interleaving model checking with
  replayable counterexample schedules,
* ``report``        — re-run the experiment suite, emit markdown.

Every command prints aligned text tables (no plotting dependencies) and
exits non-zero if a run unexpectedly fails verification.
"""

from __future__ import annotations

import argparse
import random
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis.render import render_gaps, render_positions
from repro.errors import ReproError
from repro.experiments.impossibility import demonstrate_impossibility
from repro.experiments.lower_bound import quarter_sweep
from repro.experiments.runner import ALGORITHMS, run_experiment
from repro.experiments.table1 import format_rows, symmetry_sweep, table1_sweep
from repro.ring.placement import placement_from_distances, random_placement
from repro.sim.scheduler import Scheduler

__all__ = ["main", "build_parser"]


def _parse_grid(text: str) -> List[Tuple[int, int]]:
    """Parse ``"64x8,128x16"`` into ``[(64, 8), (128, 16)]``."""
    pairs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            n_text, k_text = chunk.lower().split("x")
            pairs.append((int(n_text), int(k_text)))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad grid entry {chunk!r}; expected NxK like 64x8"
            ) from None
    if not pairs:
        raise argparse.ArgumentTypeError("grid is empty")
    return pairs


def _parse_ints(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad integer list {text!r}; expected e.g. 1,2,4,8"
        ) from None


def _scheduler(name: str, seed: int) -> Scheduler:
    # Single registry shared with the sweep runner, so `repro run` and
    # `repro psweep` always accept the same specs with the same params.
    from repro.experiments.sweep import SCHEDULER_SPECS, make_scheduler

    if name not in SCHEDULER_SPECS:
        raise argparse.ArgumentTypeError(f"unknown scheduler {name!r}")
    return make_scheduler(name, seed)


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser with every subcommand registered."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Uniform deployment of mobile agents in asynchronous rings "
            "(PODC 2016 / JPDC 2018 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered algorithms")

    run_parser = commands.add_parser("run", help="run one experiment")
    run_parser.add_argument("--algorithm", default="known_k_full", choices=sorted(ALGORITHMS))
    run_parser.add_argument("--n", type=int, default=60, help="ring size")
    run_parser.add_argument("--k", type=int, default=6, help="agent count")
    run_parser.add_argument("--seed", type=int, default=0, help="placement seed")
    run_parser.add_argument(
        "--distances",
        type=_parse_ints,
        default=None,
        help="explicit distance sequence (overrides --n/--k/--seed)",
    )
    run_parser.add_argument(
        "--scheduler",
        default="sync",
        choices=["sync", "random", "laggard", "burst", "chaos"],
    )
    run_parser.add_argument("--scheduler-seed", type=int, default=0)
    run_parser.add_argument(
        "--render", action="store_true", help="draw the ring before/after"
    )

    sweep_parser = commands.add_parser("sweep", help="Table 1 style (n,k) sweep")
    sweep_parser.add_argument("--algorithm", default="known_k_full", choices=sorted(ALGORITHMS))
    sweep_parser.add_argument(
        "--grid", type=_parse_grid, default=[(64, 8), (128, 8), (256, 8)],
        help="comma-separated NxK pairs, e.g. 64x8,128x8",
    )
    sweep_parser.add_argument("--trials", type=int, default=1)
    sweep_parser.add_argument("--seed", type=int, default=0)

    psweep_parser = commands.add_parser(
        "psweep", help="parallel sweep over a full experiment grid"
    )
    psweep_parser.add_argument(
        "--algorithms",
        default="known_k_full",
        help="comma-separated algorithm names (see `repro list`)",
    )
    psweep_parser.add_argument(
        "--grid", type=_parse_grid, default=[(64, 8), (128, 16), (256, 16)],
        help="comma-separated NxK pairs, e.g. 64x8,128x16",
    )
    psweep_parser.add_argument(
        "--schedulers", default="sync",
        help="comma-separated scheduler specs: sync,random,laggard,burst,chaos",
    )
    psweep_parser.add_argument("--trials", type=int, default=1)
    psweep_parser.add_argument("--seed", type=int, default=0, help="base seed")
    psweep_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count; 1 disables the pool)",
    )
    psweep_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full row set as JSON for trajectory tracking",
    )
    psweep_parser.add_argument(
        "--summary", action="store_true",
        help="print the per-(algorithm,n,k,scheduler) aggregate instead of raw rows",
    )

    symmetry_parser = commands.add_parser(
        "symmetry", help="Result 4 adaptivity sweep over symmetry degrees"
    )
    symmetry_parser.add_argument("--n", type=int, default=240)
    symmetry_parser.add_argument("--k", type=int, default=16)
    symmetry_parser.add_argument("--degrees", type=_parse_ints, default=[1, 2, 4, 8])
    symmetry_parser.add_argument("--algorithm", default="unknown", choices=sorted(ALGORITHMS))
    symmetry_parser.add_argument("--seed", type=int, default=0)

    impossibility_parser = commands.add_parser(
        "impossibility", help="Theorem 5 / Figure 7 construction"
    )
    impossibility_parser.add_argument(
        "--distances", type=_parse_ints, default=[5, 7, 4, 8],
        help="base-ring distance sequence (n must be a multiple of k)",
    )
    impossibility_parser.add_argument(
        "--algorithm", default="known_k_full",
        choices=["known_k_full", "known_k_logspace"],
    )

    bound_parser = commands.add_parser(
        "lower-bound", help="Theorem 1 quarter-packed comparison"
    )
    bound_parser.add_argument(
        "--sizes", type=_parse_grid, default=[(64, 8), (128, 16)]
    )

    compare_parser = commands.add_parser(
        "compare", help="all algorithms head-to-head on one placement"
    )
    compare_parser.add_argument("--n", type=int, default=60)
    compare_parser.add_argument("--k", type=int, default=6)
    compare_parser.add_argument("--seed", type=int, default=0)
    compare_parser.add_argument(
        "--distances", type=_parse_ints, default=None,
        help="explicit distance sequence (overrides --n/--k/--seed)",
    )

    report_parser = commands.add_parser(
        "report", help="re-run the experiment suite, emit a markdown report"
    )
    report_parser.add_argument("--profile", default="quick", choices=["quick", "full"])
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument(
        "--output", default=None, help="write to a file instead of stdout"
    )

    timeline_parser = commands.add_parser(
        "timeline", help="ASCII space-time diagram of one run"
    )
    timeline_parser.add_argument(
        "--algorithm", default="known_k_full", choices=sorted(ALGORITHMS)
    )
    timeline_parser.add_argument("--n", type=int, default=16)
    timeline_parser.add_argument("--k", type=int, default=4)
    timeline_parser.add_argument("--seed", type=int, default=0)
    timeline_parser.add_argument(
        "--distances", type=_parse_ints, default=None,
        help="explicit distance sequence (overrides --n/--k/--seed)",
    )
    timeline_parser.add_argument("--sample-every", type=int, default=1)
    timeline_parser.add_argument("--limit", type=int, default=60)

    mc_parser = commands.add_parser(
        "mc",
        help="exhaust every interleaving of an (n, k) instance",
        description=(
            "Explore ALL enabled-agent choices from each initial "
            "configuration (DFS with canonical-state memoisation), check "
            "safety properties on every transition and uniform deployment "
            "on every terminal state, and print any violation as a "
            "replayable schedule.  A clean exhaustive run is a proof of "
            "the paper's claim at this size."
        ),
    )
    mc_parser.add_argument(
        "--algorithm", default="known_k_full", choices=sorted(ALGORITHMS)
    )
    mc_parser.add_argument("--n", type=int, default=6, help="ring size")
    mc_parser.add_argument("--k", type=int, default=2, help="agent count")
    mc_parser.add_argument(
        "--distances",
        type=_parse_ints,
        default=None,
        help="check one explicit configuration instead of all placements",
    )
    mc_parser.add_argument(
        "--depth-limit", type=int, default=None,
        help="bound the schedule prefix length (result becomes a bounded check)",
    )
    mc_parser.add_argument(
        "--max-states", type=int, default=None,
        help="stop after this many distinct states (safety valve)",
    )
    mc_parser.add_argument(
        "--keep-going", action="store_true",
        help="collect every violation instead of stopping at the first",
    )
    mc_parser.add_argument(
        "--progress", action="store_true",
        help="print exploration counters to stderr while searching",
    )

    return parser


def _command_list() -> int:
    rows = [
        {
            "name": name,
            "halts": halts,
            "description": description,
        }
        for name, (_, halts, description) in sorted(ALGORITHMS.items())
    ]
    print(format_rows(rows))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.distances:
        placement = placement_from_distances(tuple(args.distances))
    else:
        placement = random_placement(args.n, args.k, random.Random(args.seed))
    scheduler = _scheduler(args.scheduler, args.scheduler_seed)
    print(f"configuration: {placement.describe()}")
    if args.render:
        print("  before:", render_positions(placement.ring_size, placement.homes))
    result = run_experiment(args.algorithm, placement, scheduler=scheduler)
    if args.render:
        print("  after :", render_positions(placement.ring_size, result.final_positions))
        print(" ", render_gaps(placement.ring_size, result.final_positions))
    print(format_rows([result.row()]))
    return 0 if result.ok else 1


def _command_sweep(args: argparse.Namespace) -> int:
    results = table1_sweep(args.algorithm, args.grid, seed=args.seed, trials=args.trials)
    print(format_rows([result.row() for result in results]))
    ns = sorted({result.placement.ring_size for result in results})
    if len(ns) >= 2:
        from repro.analysis.chart import scaling_chart

        by_n = {
            n: [r for r in results if r.placement.ring_size == n][0] for n in ns
        }
        print()
        print(
            scaling_chart(
                ns,
                [by_n[n].total_moves for n in ns],
                x_name="n",
                y_name="total moves",
            )
        )
        times = [by_n[n].ideal_time for n in ns]
        if all(times):
            print()
            print(scaling_chart(ns, times, x_name="n", y_name="ideal time"))
    return 0 if all(result.ok for result in results) else 1


def _command_psweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import (
        SweepSpec,
        rows_to_json,
        run_sweep,
        summarize_rows,
    )

    spec = SweepSpec(
        algorithms=tuple(
            name.strip() for name in args.algorithms.split(",") if name.strip()
        ),
        grid=tuple(args.grid),
        schedulers=tuple(
            name.strip() for name in args.schedulers.split(",") if name.strip()
        ),
        trials=args.trials,
        base_seed=args.seed,
    )
    rows = run_sweep(spec, processes=args.jobs)
    print(f"{len(rows)} cells "
          f"({len(spec.algorithms)} algorithms x {len(spec.grid)} sizes x "
          f"{len(spec.schedulers)} schedulers x {spec.trials} trials)")
    print(format_rows(summarize_rows(rows) if args.summary else rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(rows_to_json(spec, rows) + "\n")
        print(f"wrote {args.json}")
    return 0 if all(row["uniform"] for row in rows) else 1


def _command_symmetry(args: argparse.Namespace) -> int:
    results = symmetry_sweep(
        args.n, args.k, args.degrees, algorithm=args.algorithm, seed=args.seed
    )
    print(format_rows([result.row() for result in results]))
    if len(args.degrees) >= 2:
        from repro.analysis.complexity import loglog_slope

        slope = loglog_slope(args.degrees, [result.total_moves for result in results])
        print(f"\nlog-log slope of moves vs l: {slope:.2f} (Theorem 6 predicts ~ -1)")
    return 0 if all(result.ok for result in results) else 1


def _command_impossibility(args: argparse.Namespace) -> int:
    base = placement_from_distances(tuple(args.distances))
    outcome = demonstrate_impossibility(base, algorithm=args.algorithm)
    print(
        f"base ring R: n={outcome.base.ring_size} k={outcome.base.agent_count} "
        f"d={outcome.base_gap}; solving execution T={outcome.rounds_in_base} rounds"
    )
    print(
        f"expanded R': n={outcome.expanded.ring_size} "
        f"k={outcome.expanded.agent_count} (q={outcome.q}), "
        f"required gap 2d={outcome.expanded_gap}"
    )
    print(f"deceived halting positions: {outcome.final_positions}")
    print(f"gaps inside the repeated window: {outcome.observed_prefix_gaps}")
    print(f"uniform on R'? {outcome.report.ok}  (the theorem predicts False)")
    return 0 if outcome.failed_as_predicted else 1


def _command_compare(args: argparse.Namespace) -> int:
    from repro.experiments.comparison import compare_algorithms

    if args.distances:
        placement = placement_from_distances(tuple(args.distances))
    else:
        placement = random_placement(args.n, args.k, random.Random(args.seed))
    print(f"configuration: {placement.describe()}")
    comparison = compare_algorithms(placement)
    print(format_rows(comparison.rows()))
    print(f"\nomniscient optimum: {comparison.optimal_moves} moves")
    print(f"fewest moves : {comparison.winner('moves')}")
    print(f"least memory : {comparison.winner('memory_bits')}")
    print(f"fastest      : {comparison.winner('ideal_time')}")
    return 0 if comparison.all_uniform else 1


def _command_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    text = generate_report(profile_name=args.profile, seed=args.seed)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _command_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import record_timeline
    from repro.experiments.runner import build_engine

    if args.distances:
        placement = placement_from_distances(tuple(args.distances))
    else:
        placement = random_placement(args.n, args.k, random.Random(args.seed))
    print(f"configuration: {placement.describe()}")
    print("legend: digit/letter = staying agent, + = queued, - = token, . = empty")
    engine = build_engine(args.algorithm, placement)
    timeline = record_timeline(engine, sample_every=max(1, args.sample_every))
    print(timeline.render(limit=args.limit))
    return 0


def _command_mc(args: argparse.Namespace) -> int:
    from repro.mc import all_placements, check_interleavings

    if args.distances:
        placements = [placement_from_distances(tuple(args.distances))]
        scope = "1 explicit configuration"
    else:
        if not 1 <= args.k <= args.n:
            raise ReproError(
                f"k must be in [1, n]: got k={args.k}, n={args.n}"
            )
        placements = list(all_placements(args.n, args.k))
        scope = f"all {len(placements)} placements (one home fixed at node 0)"
    n = placements[0].ring_size
    k = placements[0].agent_count
    progress = None
    if args.progress:
        progress = lambda stats: print(  # noqa: E731 - tiny local callback
            f"  ... {stats.describe()}", file=sys.stderr
        )
    print(f"model checking {args.algorithm} on n={n} k={k}: {scope}")
    rows = []
    violations = []
    complete = True
    for placement in placements:
        result = check_interleavings(
            args.algorithm,
            placement,
            depth_limit=args.depth_limit,
            max_states=args.max_states,
            stop_at_first=not args.keep_going,
            progress=progress,
        )
        complete = complete and result.complete
        violations.extend(result.violations)
        rows.append(
            {
                "D": "-".join(str(d) for d in placement.distances),
                "states": result.explored,
                "transitions": result.transitions,
                "deduped": result.deduped,
                "terminal": result.terminals,
                "max_depth": result.max_depth,
                "exhausted": result.complete,
                "violations": len(result.violations),
            }
        )
    print(format_rows(rows))
    total_states = sum(row["states"] for row in rows)
    total_transitions = sum(row["transitions"] for row in rows)
    total_deduped = sum(row["deduped"] for row in rows)
    print(
        f"\ntotal: {total_states} states, {total_transitions} transitions, "
        f"{total_deduped} deduped across {len(rows)} configurations"
    )
    if violations:
        print(f"\n{len(violations)} VIOLATION(S):")
        for violation in violations:
            print(f"  {violation.describe()}")
            print(f"  replay: {violation.replay_line()}")
        return 1
    if not complete:
        print("\nsearch truncated (depth/state limit hit): bounded check only")
        return 1
    print(
        f"\nno violations: every fair schedule of every checked configuration "
        f"deploys uniformly (exhaustive at n={n}, k={k})"
    )
    return 0


def _command_lower_bound(args: argparse.Namespace) -> int:
    rows = []
    for row in quarter_sweep(args.sizes):
        entry = {
            "n": row.ring_size,
            "k": row.agent_count,
            "kn/16": row.quarter_floor,
            "optimal": row.optimal_moves,
        }
        for algorithm, moves in sorted(row.algorithm_moves.items()):
            entry[algorithm] = moves
        rows.append(entry)
    print(format_rows(rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0 ok, 1 fail, 2 error)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _command_list()
        if args.command == "run":
            return _command_run(args)
        if args.command == "sweep":
            return _command_sweep(args)
        if args.command == "psweep":
            return _command_psweep(args)
        if args.command == "symmetry":
            return _command_symmetry(args)
        if args.command == "impossibility":
            return _command_impossibility(args)
        if args.command == "lower-bound":
            return _command_lower_bound(args)
        if args.command == "timeline":
            return _command_timeline(args)
        if args.command == "mc":
            return _command_mc(args)
        if args.command == "compare":
            return _command_compare(args)
        if args.command == "report":
            return _command_report(args)
        parser.error(f"unhandled command {args.command!r}")
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
