"""Command-line interface: ``python -m repro <command> ...``.

Commands:

* ``list``          — registered algorithms and schedulers (Table 1 rows;
  ``--json`` emits the machine-readable registry dump),
* ``run``           — one experiment on a random or explicit placement
  (``--spec file.json`` runs a serialized experiment spec instead),
* ``spec``          — emit the :class:`repro.spec.ExperimentSpec` JSON a
  ``run`` command line denotes (pipe it to a file, run it anywhere),
* ``sweep``         — Table 1 style (n, k) grids with log-log slopes,
* ``psweep``        — full (algorithm, n, k, scheduler, trial) grids
  fanned across a process pool with deterministic per-cell seeds
  (``--store DIR`` archives every cell as it completes and ``--resume``
  skips cells already archived — a killed sweep picks up where it
  left off),
* ``query``         — filter a run store by algorithm / scheduler /
  n / k / hash prefix without executing anything,
* ``symmetry``      — Result 4 adaptivity sweep over symmetry degrees,
* ``impossibility`` — the Theorem 5 / Figure 7 construction,
* ``lower-bound``   — Theorem 1 quarter-packed comparison vs optimum,
* ``compare``       — all algorithms head-to-head on one placement,
* ``timeline``      — ASCII space-time diagram of one run,
* ``mc``            — exhaustive interleaving model checking with
  replayable counterexample schedules,
* ``fuzz``          — coverage-guided schedule fuzzing on instances the
  checker cannot exhaust: mutated activation schedules, online property
  oracles, delta-debugged minimal counterexamples archived as failure
  artifacts,
* ``campaign``      — fault-tolerant multi-worker orchestration of a
  sweep grid or fuzzing budget: spec-hash-keyed work units under
  expiring leases, crashed/stalled/silent workers replaced and their
  units re-issued with backoff, permanently wedged units quarantined
  as poison artifacts, everything journaled for exact resume
  (``--chaos`` injects deterministic worker faults for testing),
* ``report``        — re-run the experiment suite, emit markdown
  (``--store DIR`` renders archived runs without re-executing).

Commands that execute experiments accept ``--store DIR``: completed
runs are archived in a content-addressed run store keyed by the
experiment spec's SHA-256 content hash, and any run whose hash is
already archived is served from the store instead of simulated.

Schedulers are named by registry *spec strings* everywhere — bare names
(``sync``, ``random``) or parameterised forms such as
``laggard:victims=0-2,patience=5,seed=3`` (see :mod:`repro.registry`).
The CLI never constructs an algorithm or scheduler directly; every
command resolves names through the registry and, where a single
experiment is run, through a declarative ``ExperimentSpec``.

Every command prints aligned text tables (no plotting dependencies) and
exits non-zero if a run unexpectedly fails verification.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from typing import List, Optional, Sequence, Tuple

from repro.analysis.render import render_gaps, render_positions
from repro.errors import CampaignInterrupted, ReproError
from repro.experiments.impossibility import demonstrate_impossibility
from repro.experiments.lower_bound import quarter_sweep
from repro.experiments.runner import run_experiment
from repro.experiments.table1 import format_rows, symmetry_sweep, table1_sweep
from repro.registry import algorithm_names, get_algorithm, registry_dump
from repro.ring.placement import placement_from_distances, random_placement
from repro.spec import ExperimentSpec, PlacementSpec

__all__ = ["main", "build_parser"]


def _parse_grid(text: str) -> List[Tuple[int, int]]:
    """Parse ``"64x8,128x16"`` into ``[(64, 8), (128, 16)]``."""
    pairs = []
    for chunk in text.split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        try:
            n_text, k_text = chunk.lower().split("x")
            pairs.append((int(n_text), int(k_text)))
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"bad grid entry {chunk!r}; expected NxK like 64x8"
            ) from None
    if not pairs:
        raise argparse.ArgumentTypeError("grid is empty")
    return pairs


def _parse_ints(text: str) -> List[int]:
    try:
        return [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"bad integer list {text!r}; expected e.g. 1,2,4,8"
        ) from None


def _parse_links(text: str):
    """Parse a ``--links`` value like ``delay=2,loss=1,seed=7``."""
    from repro.ring.faults import parse_link_spec

    try:
        return parse_link_spec(text)
    except ReproError as error:
        raise argparse.ArgumentTypeError(str(error)) from None


def _add_links_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--links",
        type=_parse_links,
        default=None,
        metavar="SPEC",
        help=(
            "link-fault model, e.g. delay=2,loss=1,dup=1,seed=7: each "
            "forward move may be delayed up to `delay` link ticks, at "
            "most `loss` agents dropped and `dup` duplicated in total "
            "(deterministic draws from `seed`; omit for reliable links)"
        ),
    )


def _parse_scheduler_list(text: str) -> List[str]:
    """Split a CLI scheduler list into individual spec strings.

    Parameterised specs contain commas (``laggard:victims=0,patience=5``),
    so ``;`` separates entries whenever a spec string appears; the plain
    legacy form (``sync,random,chaos``) still splits on commas.
    """
    separator = ";" if (";" in text or ":" in text) else ","
    return [part.strip() for part in text.split(separator) if part.strip()]


def _require_positive_workers(value: Optional[int], flag: str) -> None:
    """Reject zero/negative worker counts with the usage-error exit (2).

    ``None`` means "use the default" and is fine; an explicit 0 or
    negative is always a mistake and deserves a one-line diagnosis
    instead of a pool traceback.
    """
    if value is not None and value < 1:
        raise ReproError(
            f"{flag} must be >= 1 (got {value}); "
            f"omit {flag} to use the default"
        )


def _placement_spec(args: argparse.Namespace) -> PlacementSpec:
    """The placement a run-style command line denotes."""
    if getattr(args, "distances", None):
        return PlacementSpec(kind="distances", distances=tuple(args.distances))
    return PlacementSpec(
        kind="random", ring_size=args.n, agent_count=args.k, seed=args.seed
    )


def _experiment_spec(args: argparse.Namespace) -> ExperimentSpec:
    """The full :class:`ExperimentSpec` a run-style command line denotes."""
    return ExperimentSpec(
        algorithm=args.algorithm,
        placement=_placement_spec(args),
        scheduler=args.scheduler,
        scheduler_seed=args.scheduler_seed,
        max_steps=getattr(args, "max_steps", None),
        links=getattr(args, "links", None),
    )


def _add_run_style_arguments(parser: argparse.ArgumentParser) -> None:
    """The shared experiment-denoting flags of ``run`` and ``spec``."""
    parser.add_argument(
        "--algorithm", default="known_k_full", choices=algorithm_names()
    )
    parser.add_argument("--n", type=int, default=60, help="ring size")
    parser.add_argument("--k", type=int, default=6, help="agent count")
    parser.add_argument("--seed", type=int, default=0, help="placement seed")
    parser.add_argument(
        "--distances",
        type=_parse_ints,
        default=None,
        help="explicit distance sequence (overrides --n/--k/--seed)",
    )
    parser.add_argument(
        "--scheduler",
        default="sync",
        help=(
            "scheduler spec string, e.g. sync, random:seed=7, "
            "laggard:victims=0-2,patience=5 (see `repro list --json`)"
        ),
    )
    parser.add_argument(
        "--scheduler-seed", type=int, default=0,
        help="context seed for seed parameters the spec leaves unset",
    )
    parser.add_argument(
        "--max-steps", type=int, default=None,
        help="abort the run after this many atomic actions",
    )
    _add_links_argument(parser)


def build_parser() -> argparse.ArgumentParser:
    """Build the argparse parser with every subcommand registered."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Uniform deployment of mobile agents in asynchronous rings "
            "(PODC 2016 / JPDC 2018 reproduction)"
        ),
    )
    commands = parser.add_subparsers(dest="command", required=True)

    list_parser = commands.add_parser(
        "list", help="list registered algorithms and schedulers"
    )
    list_parser.add_argument(
        "--json", action="store_true",
        help="machine-readable dump of both registries",
    )

    run_parser = commands.add_parser("run", help="run one experiment")
    _add_run_style_arguments(run_parser)
    run_parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="run a serialized ExperimentSpec (other experiment flags ignored)",
    )
    run_parser.add_argument(
        "--render", action="store_true", help="draw the ring before/after"
    )
    run_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help=(
            "content-addressed run store: serve the run from the archive "
            "on a spec-hash hit, archive it otherwise"
        ),
    )

    spec_parser = commands.add_parser(
        "spec",
        help="emit the ExperimentSpec JSON a `run` command line denotes",
        description=(
            "Takes the same experiment flags as `run` and prints the "
            "declarative spec instead of executing it.  The JSON "
            "round-trips losslessly (`repro run --spec file.json` "
            "reproduces the run byte for byte) and its content hash is "
            "stable across machines."
        ),
    )
    _add_run_style_arguments(spec_parser)
    spec_parser.add_argument(
        "--output", default=None, help="write to a file instead of stdout"
    )

    query_parser = commands.add_parser(
        "query",
        help="filter archived runs in a run store (no execution)",
        description=(
            "Search a content-addressed run store written by `run --store`, "
            "`psweep --store`, `sweep --store` or `report --store`.  "
            "Filters combine conjunctively; `--hash` matches a content-hash "
            "prefix like git's abbreviated object names."
        ),
    )
    query_parser.add_argument("--store", required=True, metavar="DIR")
    query_parser.add_argument("--algorithm", default=None)
    query_parser.add_argument(
        "--scheduler", default=None,
        help="canonical scheduler spec string (e.g. random:seed=7)",
    )
    query_parser.add_argument("--n", type=int, default=None, help="ring size")
    query_parser.add_argument("--k", type=int, default=None, help="agent count")
    query_parser.add_argument(
        "--hash", default=None, metavar="PREFIX",
        help="content-hash prefix of the spec (see `repro spec`)",
    )
    query_parser.add_argument(
        "--failed", action="store_true",
        help="only runs that did not deploy uniformly",
    )
    query_parser.add_argument(
        "--limit", type=int, default=None, metavar="N",
        help=(
            "page size: print at most N matches (matches are ordered by "
            "content hash, so pages are stable across invocations)"
        ),
    )
    query_parser.add_argument(
        "--offset", type=int, default=0, metavar="N",
        help="skip the first N matches (pagination, with --limit)",
    )
    query_parser.add_argument(
        "--failures", action="store_true",
        help=(
            "list the store's archived failure artifacts "
            "(<store>/failures/) instead of run records"
        ),
    )
    query_parser.add_argument(
        "--quarantine", action="store_true",
        help=(
            "list the store's quarantined-unit artifacts "
            "(<store>/quarantine/) instead of run records"
        ),
    )
    query_parser.add_argument(
        "--json", action="store_true",
        help="emit the full matching records as JSON",
    )
    query_parser.add_argument(
        "--digest", action="store_true",
        help=(
            "print only the store's logical content digest (order- and "
            "shard-independent SHA-256 over all records; two stores with "
            "identical digests archived identical runs)"
        ),
    )
    query_parser.add_argument(
        "--compact", action="store_true",
        help=(
            "rewrite the store's shards keeping only the winning line of "
            "each record (drops superseded replacements, duplicate appends "
            "and fenced-off garbage; the logical digest is unchanged).  "
            "Run only when no writers are live."
        ),
    )

    sweep_parser = commands.add_parser("sweep", help="Table 1 style (n,k) sweep")
    sweep_parser.add_argument(
        "--algorithm", default="known_k_full", choices=algorithm_names()
    )
    sweep_parser.add_argument(
        "--grid", type=_parse_grid, default=[(64, 8), (128, 8), (256, 8)],
        help="comma-separated NxK pairs, e.g. 64x8,128x8",
    )
    sweep_parser.add_argument("--trials", type=int, default=1)
    sweep_parser.add_argument("--seed", type=int, default=0)
    _add_links_argument(sweep_parser)
    sweep_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="archive runs / reuse archived runs from this run store",
    )

    psweep_parser = commands.add_parser(
        "psweep", help="parallel sweep over a full experiment grid"
    )
    psweep_parser.add_argument(
        "--algorithms",
        default="known_k_full",
        help="comma-separated algorithm names (see `repro list`)",
    )
    psweep_parser.add_argument(
        "--grid", type=_parse_grid, default=[(64, 8), (128, 16), (256, 16)],
        help="comma-separated NxK pairs, e.g. 64x8,128x16",
    )
    psweep_parser.add_argument(
        "--schedulers", default="sync",
        help=(
            "scheduler spec strings; separate with ';' when specs carry "
            "parameters (sync;laggard:patience=5), ',' works for bare "
            "names (sync,random,chaos)"
        ),
    )
    psweep_parser.add_argument("--trials", type=int, default=1)
    psweep_parser.add_argument("--seed", type=int, default=0, help="base seed")
    _add_links_argument(psweep_parser)
    psweep_parser.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (default: CPU count; 1 disables the pool)",
    )
    psweep_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="also write the full row set as JSON for trajectory tracking",
    )
    psweep_parser.add_argument(
        "--summary", action="store_true",
        help="print the per-(algorithm,n,k,scheduler) aggregate instead of raw rows",
    )
    psweep_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help=(
            "stream completed cells into this content-addressed run store "
            "(a killed sweep resumes losslessly from it)"
        ),
    )
    psweep_parser.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=None,
        help=(
            "with --store: skip cells whose spec hash is already archived "
            "(the default; --no-resume recomputes everything).  Requires "
            "--store either way."
        ),
    )
    psweep_parser.add_argument(
        "--backend", choices=("object", "batch"), default="object",
        help=(
            "execution backend: 'batch' runs each cell's trials as one "
            "vectorized numpy batch (byte-identical rows, much faster); "
            "cells the batch backend cannot cover fall back to 'object'"
        ),
    )
    psweep_parser.add_argument(
        "--validate-backend", action="store_true",
        help=(
            "with --backend batch: re-run a deterministic sample of every "
            "batch on the object engine and fail loudly on any divergence"
        ),
    )

    symmetry_parser = commands.add_parser(
        "symmetry", help="Result 4 adaptivity sweep over symmetry degrees"
    )
    symmetry_parser.add_argument("--n", type=int, default=240)
    symmetry_parser.add_argument("--k", type=int, default=16)
    symmetry_parser.add_argument("--degrees", type=_parse_ints, default=[1, 2, 4, 8])
    symmetry_parser.add_argument(
        "--algorithm", default="unknown", choices=algorithm_names()
    )
    symmetry_parser.add_argument("--seed", type=int, default=0)

    impossibility_parser = commands.add_parser(
        "impossibility", help="Theorem 5 / Figure 7 construction"
    )
    impossibility_parser.add_argument(
        "--distances", type=_parse_ints, default=[5, 7, 4, 8],
        help="base-ring distance sequence (n must be a multiple of k)",
    )
    impossibility_parser.add_argument(
        "--algorithm", default="known_k_full",
        choices=["known_k_full", "known_k_logspace"],
    )

    bound_parser = commands.add_parser(
        "lower-bound", help="Theorem 1 quarter-packed comparison"
    )
    bound_parser.add_argument(
        "--sizes", type=_parse_grid, default=[(64, 8), (128, 16)]
    )

    compare_parser = commands.add_parser(
        "compare", help="all algorithms head-to-head on one placement"
    )
    compare_parser.add_argument("--n", type=int, default=60)
    compare_parser.add_argument("--k", type=int, default=6)
    compare_parser.add_argument("--seed", type=int, default=0)
    compare_parser.add_argument(
        "--distances", type=_parse_ints, default=None,
        help="explicit distance sequence (overrides --n/--k/--seed)",
    )

    report_parser = commands.add_parser(
        "report", help="re-run the experiment suite, emit a markdown report"
    )
    report_parser.add_argument("--profile", default="quick", choices=["quick", "full"])
    report_parser.add_argument("--seed", type=int, default=0)
    report_parser.add_argument(
        "--output", default=None, help="write to a file instead of stdout"
    )
    report_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="render archived runs from this store instead of re-executing",
    )

    timeline_parser = commands.add_parser(
        "timeline", help="ASCII space-time diagram of one run"
    )
    timeline_parser.add_argument(
        "--algorithm", default="known_k_full", choices=algorithm_names()
    )
    timeline_parser.add_argument("--n", type=int, default=16)
    timeline_parser.add_argument("--k", type=int, default=4)
    timeline_parser.add_argument("--seed", type=int, default=0)
    timeline_parser.add_argument(
        "--distances", type=_parse_ints, default=None,
        help="explicit distance sequence (overrides --n/--k/--seed)",
    )
    timeline_parser.add_argument("--sample-every", type=int, default=1)
    timeline_parser.add_argument("--limit", type=int, default=60)

    mc_parser = commands.add_parser(
        "mc",
        help="exhaust every interleaving of an (n, k) instance",
        description=(
            "Explore ALL enabled-agent choices from each initial "
            "configuration (DFS with canonical-state memoisation), check "
            "safety properties on every transition and uniform deployment "
            "on every terminal state, and print any violation as a "
            "replayable schedule.  A clean exhaustive run is a proof of "
            "the paper's claim at this size."
        ),
    )
    mc_parser.add_argument(
        "--algorithm",
        default="known_k_full",
        choices=algorithm_names(include_selftest=True),
        help="registered algorithm (wake_race is the broken self-test agent)",
    )
    mc_parser.add_argument("--n", type=int, default=6, help="ring size")
    mc_parser.add_argument("--k", type=int, default=2, help="agent count")
    mc_parser.add_argument(
        "--distances",
        type=_parse_ints,
        default=None,
        help="check one explicit configuration instead of all placements",
    )
    mc_parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help=(
            "check the algorithm and placement of a serialized "
            "ExperimentSpec (scheduler/engine options are irrelevant to "
            "an exhaustive search and are ignored)"
        ),
    )
    _add_links_argument(mc_parser)
    mc_parser.add_argument(
        "--depth-limit", type=int, default=None,
        help="bound the schedule prefix length (result becomes a bounded check)",
    )
    mc_parser.add_argument(
        "--max-states", type=int, default=None,
        help="stop after this many distinct states (safety valve)",
    )
    mc_parser.add_argument(
        "--keep-going", action="store_true",
        help="collect every violation instead of stopping at the first",
    )
    mc_parser.add_argument(
        "--progress", action="store_true",
        help="print exploration counters to stderr while searching",
    )
    mc_parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help=(
            "process-parallel exploration: placements fan across a pool "
            "on a grid, a single configuration uses the wave-synchronous "
            "frontier driver (results are identical to --jobs 1)"
        ),
    )
    mc_parser.add_argument(
        "--no-por", action="store_true",
        help=(
            "disable the sleep-set partial-order reduction (full "
            "expansion; verdicts are identical, transitions roughly double)"
        ),
    )
    mc_parser.add_argument(
        "--json", action="store_true",
        help="emit the machine-readable results document instead of tables",
    )
    mc_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help=(
            "spill the frontier + visited memo to DIR/mc/<check-hash>/ "
            "every wave so a killed check can be resumed"
        ),
    )
    mc_parser.add_argument(
        "--resume", action="store_true",
        help="continue a killed --store run from its last committed wave",
    )

    fuzz_parser = commands.add_parser(
        "fuzz",
        help="coverage-guided schedule fuzzing with shrinking",
        description=(
            "Search the schedule space of instances the exhaustive checker "
            "cannot enumerate: execute mutated activation schedules, keep "
            "the ones reaching novel canonical states or enabled-set "
            "patterns as a corpus, check the model checker's property "
            "oracles at every atomic action, and delta-debug any violation "
            "to a minimal schedule that replays deterministically "
            "(archived as a failure artifact when --store is given).  "
            "Exit code 1 means a violation was found."
        ),
    )
    fuzz_parser.add_argument(
        "--algorithm",
        default="known_k_full",
        choices=algorithm_names(include_selftest=True),
        help="registered algorithm (wake_race is the broken self-test agent)",
    )
    fuzz_parser.add_argument("--n", type=int, default=16, help="ring size")
    fuzz_parser.add_argument("--k", type=int, default=4, help="agent count")
    fuzz_parser.add_argument(
        "--distances",
        type=_parse_ints,
        default=None,
        help="fuzz one explicit configuration instead of random placements",
    )
    fuzz_parser.add_argument("--seed", type=int, default=0, help="campaign seed")
    _add_links_argument(fuzz_parser)
    fuzz_parser.add_argument(
        "--budget", type=int, default=1000,
        help="total schedule executions (adversary seed runs included)",
    )
    fuzz_parser.add_argument(
        "--max-steps", type=int, default=None,
        help="per-run atomic-action cap (default: derived from n and k)",
    )
    fuzz_parser.add_argument(
        "--placements", type=int, default=4,
        help="distinct random placements to fuzz (ignored with --distances)",
    )
    fuzz_parser.add_argument(
        "--corpus", type=int, default=64,
        help="max retained coverage-novel schedule prefixes",
    )
    fuzz_parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes; the budget is sharded across them",
    )
    fuzz_parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="run a serialized FuzzSpec (other campaign flags ignored)",
    )
    fuzz_parser.add_argument(
        "--store", default=None, metavar="DIR",
        help=(
            "run store directory; failures are archived under "
            "failures/<spec-hash>.json keyed by the triggering "
            "ExperimentSpec content hash"
        ),
    )
    fuzz_parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the campaign outcome (failures included) as JSON",
    )
    fuzz_parser.add_argument(
        "--keep-going", action="store_true",
        help="spend the whole budget instead of stopping at the first failure",
    )
    fuzz_parser.add_argument(
        "--no-shrink", action="store_true",
        help="skip delta-debugging (archive the raw violating schedule)",
    )
    fuzz_parser.add_argument(
        "--progress", action="store_true",
        help=(
            "print per-run coverage counters to stderr while fuzzing "
            "(single-job campaigns only)"
        ),
    )

    campaign_parser = commands.add_parser(
        "campaign",
        help="fault-tolerant multi-worker campaign over a sweep or fuzz workload",
        description=(
            "Decompose a sweep grid or a fuzzing budget into spec-hash-keyed "
            "work units and drive them to convergence on a fleet of worker "
            "processes under expiring leases: crashed, wedged or silent "
            "workers are detected (heartbeat TTL + per-unit wall-clock "
            "timeout), their units re-issued with exponential backoff, and "
            "units that exhaust the retry budget are quarantined as poison "
            "artifacts under <store>/quarantine/ while the rest of the "
            "campaign completes.  All progress is journaled in the store; "
            "re-running the same command resumes from where it stopped.  "
            "Exit code: 0 converged clean, 1 quarantined units or fuzz "
            "violations, 130 interrupted (SIGINT/SIGTERM)."
        ),
    )
    campaign_parser.add_argument(
        "--spec", default=None, metavar="PATH",
        help="run a serialized CampaignSpec JSON (workload flags ignored)",
    )
    campaign_parser.add_argument(
        "--fuzz-spec", default=None, metavar="PATH",
        help="fuzz campaign: shard this serialized FuzzSpec across the fleet",
    )
    campaign_parser.add_argument(
        "--algorithms", default="known_k_full",
        help="sweep campaign: comma-separated algorithm names",
    )
    campaign_parser.add_argument(
        "--grid", type=_parse_grid, default=[(64, 8), (128, 16)],
        help="sweep campaign: comma-separated NxK pairs, e.g. 64x8,128x16",
    )
    campaign_parser.add_argument(
        "--schedulers", default="sync",
        help="sweep campaign: scheduler spec strings (';' or ',' separated)",
    )
    campaign_parser.add_argument("--trials", type=int, default=1)
    campaign_parser.add_argument("--seed", type=int, default=0, help="base seed")
    campaign_parser.add_argument(
        "--max-steps", type=int, default=None,
        help="sweep campaign: per-run atomic-action cap",
    )
    campaign_parser.add_argument(
        "--workers", type=int, default=2,
        help="worker processes in the fleet (dead ones are replaced)",
    )
    campaign_parser.add_argument(
        "--lease-ttl", type=float, default=10.0, metavar="SECONDS",
        help="lease expires after this much heartbeat silence",
    )
    campaign_parser.add_argument(
        "--unit-timeout", type=float, default=120.0, metavar="SECONDS",
        help=(
            "hard per-unit wall-clock budget; heartbeats cannot extend it "
            "(catches workers that stall without crashing)"
        ),
    )
    campaign_parser.add_argument(
        "--max-retries", type=int, default=3,
        help="re-issues per unit before it is quarantined",
    )
    campaign_parser.add_argument(
        "--backoff-base", type=float, default=0.5, metavar="SECONDS",
        help="base of the exponential re-issue backoff (with jitter)",
    )
    campaign_parser.add_argument(
        "--shards", type=int, default=4,
        help="fuzz campaign: independent shards the budget is split into",
    )
    campaign_parser.add_argument(
        "--backend", choices=("object", "batch"), default="object",
        help=(
            "sweep campaign: cell execution engine (batch = columnar numpy "
            "engine, byte-identical records; uncovered cells fall back)"
        ),
    )
    campaign_parser.add_argument(
        "--chaos", default=None, metavar="SPEC",
        help=(
            "fault-injection plan for testing the campaign machinery, e.g. "
            "'seed=1,kill=0.3' or 'kill=0.2,stall=0.1,poison=ab12' "
            "(keys: seed, kill, stall, silence, stall_seconds, "
            "silence_seconds, poison)"
        ),
    )
    campaign_parser.add_argument(
        "--store", required=True, metavar="DIR",
        help="run store receiving all records, failures, ledger and quarantine",
    )
    campaign_parser.add_argument(
        "--resume", action=argparse.BooleanOptionalAction, default=True,
        help=(
            "skip units already completed per the store and campaign ledger "
            "(the default; --no-resume re-executes everything)"
        ),
    )

    serve_parser = commands.add_parser(
        "serve",
        help="run the experiment service: the run store behind an HTTP API",
        description=(
            "Start a long-lived daemon exposing a run store over a "
            "versioned JSON API: POST /v1/jobs submits an experiment, "
            "sweep, fuzz or campaign spec for in-process execution, "
            "GET /v1/jobs/{id} polls live progress, GET /v1/runs queries "
            "archived records with filters and pagination, and "
            "GET /v1/store/digest exposes the logical content digest.  "
            "Stdlib only; stop with ^C."
        ),
    )
    serve_parser.add_argument(
        "--store", required=True, metavar="DIR",
        help="run store the service reads and writes (created if absent)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1")
    serve_parser.add_argument(
        "--port", type=int, default=8765,
        help="TCP port to bind (0 picks an ephemeral port)",
    )
    serve_parser.add_argument(
        "--workers", type=int, default=2,
        help="job-executor threads draining the submission queue",
    )
    serve_parser.add_argument(
        "--quiet", action="store_true", help="suppress per-request log lines"
    )

    submit_parser = commands.add_parser(
        "submit",
        help="submit a spec file to a running experiment service",
        description=(
            "POST a serialized ExperimentSpec/SweepSpec/FuzzSpec/"
            "CampaignSpec to `repro serve` and print the job id; with "
            "--wait, poll until the job finishes and exit 0/1 on "
            "completed/failed."
        ),
    )
    submit_parser.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="service base URL (default %(default)s)",
    )
    submit_parser.add_argument(
        "--kind", required=True,
        choices=("experiment", "sweep", "fuzz", "campaign"),
    )
    submit_parser.add_argument(
        "--spec", required=True, metavar="PATH",
        help="JSON spec file of the given kind",
    )
    submit_parser.add_argument(
        "--processes", type=int, default=None,
        help="sweep jobs: worker processes on the server (default 1)",
    )
    submit_parser.add_argument(
        "--wait", action="store_true",
        help="poll until the job completes or fails",
    )
    submit_parser.add_argument(
        "--poll", type=float, default=0.5, metavar="SECONDS",
        help="polling interval with --wait (default %(default)s)",
    )
    submit_parser.add_argument(
        "--timeout", type=float, default=3600.0, metavar="SECONDS",
        help="give up waiting after this long (default %(default)s)",
    )
    submit_parser.add_argument(
        "--json", action="store_true", help="print the final job as JSON"
    )

    jobs_parser = commands.add_parser(
        "jobs",
        help="list or inspect jobs on a running experiment service",
    )
    jobs_parser.add_argument(
        "--url", default="http://127.0.0.1:8765",
        help="service base URL (default %(default)s)",
    )
    jobs_parser.add_argument(
        "job_id", nargs="?", default=None,
        help="job id to inspect (omit to list all jobs)",
    )
    jobs_parser.add_argument(
        "--json", action="store_true", help="print raw JSON"
    )

    return parser


def _command_list(args: argparse.Namespace) -> int:
    dump = registry_dump()
    if args.json:
        print(json.dumps(dump, indent=2))
        return 0
    rows = [
        {
            "name": entry["name"],
            "knowledge": entry["knowledge"],
            "memory": entry["memory_bound"],
            "time": entry["time_bound"],
            "halts": entry["halts"],
            "description": entry["description"],
        }
        for entry in dump["algorithms"]
        if not entry["selftest"]
    ]
    print(format_rows(rows))
    print()
    scheduler_rows = [
        {
            "scheduler": entry["name"],
            "counts_time": entry["counts_time"],
            "parameters": ",".join(
                param["name"] for param in entry["params"]
            ) or "-",
            "description": entry["description"],
        }
        for entry in dump["schedulers"]
    ]
    print(format_rows(scheduler_rows))
    return 0


def _command_run(args: argparse.Namespace) -> int:
    if args.spec:
        spec = ExperimentSpec.load(args.spec)
    else:
        spec = _experiment_spec(args)
    placement = spec.build_placement()
    print(f"configuration: {placement.describe()}")
    if args.render:
        print("  before:", render_positions(placement.ring_size, placement.homes))
    if args.store:
        from repro.store import RunStore, cached_run

        result, hit = cached_run(spec, RunStore(args.store))
        short = spec.content_hash()[:16]
        if hit:
            print(f"cache hit: archived run {short} (0 simulations executed)")
        else:
            print(f"archived run {short} to {args.store}")
    else:
        result = run_experiment(spec)
    if args.render:
        print("  after :", render_positions(placement.ring_size, result.final_positions))
        print(" ", render_gaps(placement.ring_size, result.final_positions))
    print(format_rows([result.row()]))
    return 0 if result.ok else 1


def _command_spec(args: argparse.Namespace) -> int:
    spec = _experiment_spec(args)
    text = spec.to_json()
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output} (content hash {spec.content_hash()[:16]})")
    else:
        print(text)
    return 0


def _command_sweep(args: argparse.Namespace) -> int:
    store = None
    if args.store:
        from repro.store import RunStore

        store = RunStore(args.store)
    results = table1_sweep(
        args.algorithm, args.grid, seed=args.seed, trials=args.trials,
        store=store, links=args.links,
    )
    print(format_rows([result.row() for result in results]))
    ns = sorted({result.placement.ring_size for result in results})
    if len(ns) >= 2:
        from repro.analysis.chart import scaling_chart

        by_n = {
            n: [r for r in results if r.placement.ring_size == n][0] for n in ns
        }
        print()
        print(
            scaling_chart(
                ns,
                [by_n[n].total_moves for n in ns],
                x_name="n",
                y_name="total moves",
            )
        )
        times = [by_n[n].ideal_time for n in ns]
        if all(times):
            print()
            print(scaling_chart(ns, times, x_name="n", y_name="ideal time"))
    return 0 if all(result.ok for result in results) else 1


def _command_psweep(args: argparse.Namespace) -> int:
    from repro.experiments.sweep import (
        SweepSpec,
        execute_sweep,
        rows_to_json,
        summarize_rows,
    )

    _require_positive_workers(args.jobs, "--jobs")
    if args.validate_backend and args.backend != "batch":
        raise ReproError(
            "--validate-backend cross-checks the batch backend against the "
            "object engine and therefore requires --backend batch"
        )
    if args.resume is not None and not args.store:
        raise ReproError(
            "--resume/--no-resume controls how archived cells are reused "
            "and therefore requires --store DIR"
        )
    resume = True if args.resume is None else args.resume
    spec = SweepSpec(
        algorithms=tuple(
            name.strip() for name in args.algorithms.split(",") if name.strip()
        ),
        grid=tuple(args.grid),
        schedulers=tuple(_parse_scheduler_list(args.schedulers)),
        trials=args.trials,
        base_seed=args.seed,
        links=args.links,
    )
    store = None
    if args.store:
        from repro.store import RunStore

        store = RunStore(args.store)
    try:
        outcome = execute_sweep(
            spec,
            processes=args.jobs,
            store=store,
            resume=resume,
            backend=args.backend,
            validate_backend=args.validate_backend,
        )
    except CampaignInterrupted as interrupt:
        # Graceful degradation: everything completed before the ^C is
        # already flushed (and archived when --store was given) — report
        # the partial accounting and how to pick the sweep back up.
        partial = interrupt.outcome
        print(f"\ninterrupted: {interrupt}")
        if partial is not None:
            print(
                f"progress: {len(partial.rows)}/{partial.total} cells done "
                f"({partial.executed} executed, {partial.cached} cached)"
            )
        if interrupt.resume_hint:
            print(f"resume: {interrupt.resume_hint}")
        return 130
    rows = outcome.rows
    print(f"{len(rows)} cells "
          f"({len(spec.algorithms)} algorithms x {len(spec.grid)} sizes x "
          f"{len(spec.schedulers)} schedulers x {spec.trials} trials)")
    if store is not None:
        print(
            f"store: {outcome.executed} executed, {outcome.cached} cached "
            f"({args.store}, {len(store)} records)"
        )
    print(format_rows(summarize_rows(rows) if args.summary else rows))
    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(rows_to_json(spec, rows) + "\n")
        print(f"wrote {args.json}")
    return 0 if all(row["uniform"] for row in rows) else 1


def _command_symmetry(args: argparse.Namespace) -> int:
    results = symmetry_sweep(
        args.n, args.k, args.degrees, algorithm=args.algorithm, seed=args.seed
    )
    print(format_rows([result.row() for result in results]))
    if len(args.degrees) >= 2:
        from repro.analysis.complexity import loglog_slope

        slope = loglog_slope(args.degrees, [result.total_moves for result in results])
        print(f"\nlog-log slope of moves vs l: {slope:.2f} (Theorem 6 predicts ~ -1)")
    return 0 if all(result.ok for result in results) else 1


def _command_impossibility(args: argparse.Namespace) -> int:
    base = placement_from_distances(tuple(args.distances))
    outcome = demonstrate_impossibility(base, algorithm=args.algorithm)
    print(
        f"base ring R: n={outcome.base.ring_size} k={outcome.base.agent_count} "
        f"d={outcome.base_gap}; solving execution T={outcome.rounds_in_base} rounds"
    )
    print(
        f"expanded R': n={outcome.expanded.ring_size} "
        f"k={outcome.expanded.agent_count} (q={outcome.q}), "
        f"required gap 2d={outcome.expanded_gap}"
    )
    print(f"deceived halting positions: {outcome.final_positions}")
    print(f"gaps inside the repeated window: {outcome.observed_prefix_gaps}")
    print(f"uniform on R'? {outcome.report.ok}  (the theorem predicts False)")
    return 0 if outcome.failed_as_predicted else 1


def _command_compare(args: argparse.Namespace) -> int:
    from repro.experiments.comparison import compare_algorithms

    if args.distances:
        placement = placement_from_distances(tuple(args.distances))
    else:
        placement = random_placement(args.n, args.k, random.Random(args.seed))
    print(f"configuration: {placement.describe()}")
    comparison = compare_algorithms(placement)
    print(format_rows(comparison.rows()))
    print(f"\nomniscient optimum: {comparison.optimal_moves} moves")
    print(f"fewest moves : {comparison.winner('moves')}")
    print(f"least memory : {comparison.winner('memory_bits')}")
    print(f"fastest      : {comparison.winner('ideal_time')}")
    return 0 if comparison.all_uniform else 1


def _command_report(args: argparse.Namespace) -> int:
    from repro.experiments.report import generate_report

    store = None
    if args.store:
        from repro.store import RunStore

        store = RunStore(args.store)
    text = generate_report(profile_name=args.profile, seed=args.seed, store=store)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        print(f"wrote {args.output}")
    else:
        print(text)
    return 0


def _command_timeline(args: argparse.Namespace) -> int:
    from repro.analysis.timeline import record_timeline
    from repro.experiments.runner import build_engine

    if args.distances:
        placement = placement_from_distances(tuple(args.distances))
    else:
        placement = random_placement(args.n, args.k, random.Random(args.seed))
    print(f"configuration: {placement.describe()}")
    print("legend: digit/letter = staying agent, + = queued, - = token, . = empty")
    engine = build_engine(args.algorithm, placement)
    timeline = record_timeline(engine, sample_every=max(1, args.sample_every))
    print(timeline.render(limit=args.limit))
    return 0


def _command_mc(args: argparse.Namespace) -> int:
    from repro.mc import (
        all_placements,
        check_frontier,
        check_interleavings,
        check_placements_pool,
    )

    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    if args.resume and not args.store:
        raise ReproError("--resume needs --store (nothing spilled to resume from)")
    por = not args.no_por
    links = args.links
    if args.spec:
        experiment = ExperimentSpec.load(args.spec)
        algorithm = experiment.algorithm
        placements = [experiment.build_placement()]
        links = experiment.links  # the spec's fault model, not the flag's
        scope = f"1 configuration from spec {args.spec}"
    elif args.distances:
        algorithm = args.algorithm
        placements = [placement_from_distances(tuple(args.distances))]
        scope = "1 explicit configuration"
    else:
        algorithm = args.algorithm
        if not 1 <= args.k <= args.n:
            raise ReproError(
                f"k must be in [1, n]: got k={args.k}, n={args.n}"
            )
        placements = list(all_placements(args.n, args.k))
        scope = (
            f"all {len(placements)} rotation-distinct placements "
            "(one home fixed at node 0)"
        )
    get_algorithm(algorithm)  # fail fast with the registry's error message
    n = placements[0].ring_size
    k = placements[0].agent_count
    progress = None
    if args.progress and not args.json:
        progress = lambda stats: print(  # noqa: E731 - tiny local callback
            f"  ... {stats.describe()}", file=sys.stderr
        )
    if links is not None and not links.active:
        links = None
    if links is not None:
        por = False  # the reduction is unsound under faults (repro.mc.por)
    limits = {
        "depth_limit": args.depth_limit,
        "max_states": args.max_states,
        "stop_at_first": not args.keep_going,
        "por": por,
        "links": links,
    }
    if not args.json:
        faulty = f" under link faults ({links.describe()})" if links else ""
        print(f"model checking {algorithm} on n={n} k={k}: {scope}{faulty}")
    if args.store is not None:
        # Spilled (and optionally parallel) frontier exploration; one
        # resumable journal per placement, keyed by check-spec hash.
        results = [
            check_frontier(
                algorithm,
                placement,
                jobs=args.jobs,
                store_root=args.store,
                resume=args.resume,
                progress=progress,
                **limits,
            )
            for placement in placements
        ]
    elif args.jobs > 1 and len(placements) == 1:
        results = [
            check_frontier(
                algorithm, placements[0], jobs=args.jobs,
                progress=progress, **limits,
            )
        ]
    elif args.jobs > 1:
        results = check_placements_pool(
            algorithm, placements, jobs=args.jobs, **limits
        )
    else:
        results = [
            check_interleavings(algorithm, placement, progress=progress, **limits)
            for placement in placements
        ]

    violations = [v for result in results for v in result.violations]
    complete = all(result.complete for result in results)
    if args.json:
        document = {
            "algorithm": algorithm,
            "n": n,
            "k": k,
            "por": por,
            "jobs": args.jobs,
            "ok": all(result.ok for result in results),
            "complete": complete,
            "totals": {
                "placements": len(results),
                "states": sum(r.explored for r in results),
                "transitions": sum(r.transitions for r in results),
                "deduped": sum(r.deduped for r in results),
                "por_skipped": sum(r.por_skipped for r in results),
                "terminals": sum(r.terminals for r in results),
                "max_depth": max(r.max_depth for r in results),
                "memo_bytes": sum(r.memo_bytes for r in results),
            },
            "results": [result.to_dict() for result in results],
        }
        print(json.dumps(document, indent=2, sort_keys=True))
        return 1 if (violations or not complete) else 0

    rows = []
    for placement, result in zip(placements, results):
        rows.append(
            {
                "D": "-".join(str(d) for d in placement.distances),
                "states": result.explored,
                "transitions": result.transitions,
                "deduped": result.deduped,
                "por_skipped": result.por_skipped,
                "terminal": result.terminals,
                "max_depth": result.max_depth,
                "exhausted": result.complete,
                "violations": len(result.violations),
            }
        )
    print(format_rows(rows))
    total_states = sum(row["states"] for row in rows)
    total_transitions = sum(row["transitions"] for row in rows)
    total_deduped = sum(row["deduped"] for row in rows)
    total_skipped = sum(row["por_skipped"] for row in rows)
    print(
        f"\ntotal: {total_states} states, {total_transitions} transitions, "
        f"{total_deduped} deduped, {total_skipped} por-skipped "
        f"across {len(rows)} configurations"
    )
    if violations:
        print(f"\n{len(violations)} VIOLATION(S):")
        for violation in violations:
            print(f"  {violation.describe()}")
            print(f"  replay: {violation.replay_line()}")
        return 1
    if not complete:
        print("\nsearch truncated (depth/state limit hit): bounded check only")
        return 1
    print(
        "\nno violations: every fair schedule of every checked configuration "
        f"deploys uniformly (exhaustive at n={n}, k={k})"
    )
    return 0


def _command_fuzz(args: argparse.Namespace) -> int:
    from repro.analysis.fuzzing import coverage_growth_rows, describe_growth
    from repro.fuzz import FuzzSpec, fuzz_parallel

    _require_positive_workers(args.jobs, "--jobs")
    if args.spec:
        spec = FuzzSpec.load(args.spec)
    else:
        if args.distances:
            placement = PlacementSpec(
                kind="distances", distances=tuple(args.distances)
            )
            placements = 1
        else:
            placement = PlacementSpec(
                kind="random", ring_size=args.n, agent_count=args.k,
                seed=args.seed,
            )
            placements = args.placements
        spec = FuzzSpec(
            algorithm=args.algorithm,
            placement=placement,
            budget=args.budget,
            max_steps=args.max_steps,
            seed=args.seed,
            placements=placements,
            corpus_size=args.corpus,
            links=args.links,
        )
    progress = None
    if args.progress:
        progress = lambda run, budget, coverage: print(  # noqa: E731
            f"  ... run {run}/{budget}: {coverage}", file=sys.stderr
        )
    print(
        f"fuzzing {spec.algorithm} ({spec.placements} placement(s), "
        f"budget {spec.budget} runs, campaign {spec.content_hash()[:16]})"
    )
    if args.jobs > 1:
        if args.progress:
            print(
                "note: --progress and the coverage-growth table are "
                "per-campaign views; with --jobs > 1 the budget is "
                "sharded into independent campaigns, so neither is shown",
                file=sys.stderr,
            )
        try:
            outcome = fuzz_parallel(
                spec, args.jobs, keep_going=args.keep_going,
                shrink=not args.no_shrink,
            )
        except CampaignInterrupted as interrupt:
            print(f"\ninterrupted: {interrupt}")
            partial = interrupt.outcome
            if partial is not None:
                print(f"progress: {partial.describe()}")
                if args.store and partial.failures:
                    from repro.store import RunStore

                    archive = RunStore(args.store).failures
                    for failure in partial.failures:
                        path = archive.put(
                            failure.content_hash, failure.to_dict()
                        )
                        print(
                            f"archived failure "
                            f"{failure.content_hash[:16]} -> {path}"
                        )
            if interrupt.resume_hint:
                print(f"resume: {interrupt.resume_hint}")
            return 130
    else:
        from repro.fuzz import ScheduleFuzzer

        outcome = ScheduleFuzzer(
            spec, keep_going=args.keep_going, shrink=not args.no_shrink,
            progress=progress,
        ).run()
    print(outcome.describe())
    if outcome.history:
        print()
        print(format_rows(coverage_growth_rows(outcome.history)))
        print()
        print(describe_growth(outcome.history))
    if args.json:
        payload = {
            "spec": spec.to_dict(),
            "runs": outcome.runs,
            "steps": outcome.steps,
            "states": outcome.states,
            "patterns": outcome.patterns,
            "corpus_size": outcome.corpus_size,
            "complete": outcome.complete,
            "history": list(outcome.history),
            "failures": [failure.to_dict() for failure in outcome.failures],
        }
        with open(args.json, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if args.store:
        from repro.store import RunStore

        archive = RunStore(args.store).failures
        for failure in outcome.failures:
            path = archive.put(failure.content_hash, failure.to_dict())
            print(f"archived failure {failure.content_hash[:16]} -> {path}")
    if outcome.failures:
        print(f"\n{len(outcome.failures)} FAILURE(S):")
        for failure in outcome.failures:
            print(f"  {failure.describe()}")
            print(f"  replay: {failure.replay_line()}")
        return 1
    print(
        "\nno violations: every fuzzed schedule deployed uniformly "
        f"({outcome.runs} runs, {outcome.steps} atomic actions)"
    )
    return 0


def _command_campaign(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignSpec, parse_chaos_spec, run_campaign

    _require_positive_workers(args.workers, "--workers")
    _require_positive_workers(args.shards, "--shards")
    if args.spec:
        spec = CampaignSpec.load(args.spec)
    elif args.fuzz_spec:
        from repro.fuzz import FuzzSpec

        spec = CampaignSpec(
            kind="fuzz",
            fuzz=FuzzSpec.load(args.fuzz_spec),
            workers=args.workers,
            lease_ttl=args.lease_ttl,
            unit_timeout=args.unit_timeout,
            max_retries=args.max_retries,
            backoff_base=args.backoff_base,
            shards=args.shards,
        )
    else:
        from repro.experiments.sweep import SweepSpec

        sweep = SweepSpec(
            algorithms=tuple(
                name.strip()
                for name in args.algorithms.split(",")
                if name.strip()
            ),
            grid=tuple(args.grid),
            schedulers=tuple(_parse_scheduler_list(args.schedulers)),
            trials=args.trials,
            base_seed=args.seed,
            max_steps=args.max_steps,
        )
        spec = CampaignSpec(
            kind="sweep",
            sweep=sweep,
            workers=args.workers,
            lease_ttl=args.lease_ttl,
            unit_timeout=args.unit_timeout,
            max_retries=args.max_retries,
            backoff_base=args.backoff_base,
            backend=args.backend,
        )
    chaos = parse_chaos_spec(args.chaos) if args.chaos else None
    print(f"campaign {spec.content_hash()[:16]}: {spec.describe()}")
    if chaos:
        print(f"fault injection: {chaos.describe()}")
    outcome = run_campaign(
        spec,
        args.store,
        chaos=chaos,
        resume=args.resume,
        progress=lambda text: print(f"  {text}"),
        install_signal_handlers=True,
    )
    print(outcome.describe())
    for report in outcome.quarantined:
        print(
            f"quarantined {report['unit'][:16]} after {report['attempts']} "
            f"attempt(s) (last cause: {report['last_cause']}); artifact in "
            f"{args.store}/quarantine/"
        )
    if outcome.failures:
        print(f"{len(outcome.failures)} fuzz failure(s) archived in "
              f"{args.store}/failures/")
    if outcome.interrupted:
        print(f"interrupted; resume with: {outcome.resume_command}")
    return outcome.exit_code


def _command_query(args: argparse.Namespace) -> int:
    from repro.store import RunStore

    store = RunStore(args.store, create=False)
    if args.compact:
        before = store.digest()
        reclaimed = store.compact()
        after = store.digest()
        if after != before:
            # compact() preserves winners byte for byte, so this can
            # only mean concurrent writers or on-disk corruption.
            print(
                f"error: digest changed across compaction "
                f"({before[:16]} -> {after[:16]}); "
                f"was a writer live?", file=sys.stderr,
            )
            return 1
        print(
            f"compacted {args.store}: reclaimed {reclaimed} bytes, "
            f"{len(store)} records kept (digest {after[:16]} unchanged)"
        )
        return 0
    if args.digest:
        # The logical content digest: stable across shard layout, write
        # order and timestamps, so CI can assert two stores archived
        # identical runs with a one-line comparison.
        print(store.digest())
        return 0
    if args.failures or args.quarantine:
        # Artifact discovery without globbing the store directory: the
        # same listing the service serves at /v1/failures|/v1/quarantine.
        archive = store.quarantine if args.quarantine else store.failures
        if args.json:
            print(json.dumps(archive.list(), indent=2))
            return 0
        for content_hash, payload in archive:
            kind = payload.get("kind", payload.get("reason", "?"))
            print(f"{content_hash[:16]}  {kind}")
        print(f"\n{archive.describe()}")
        return 0
    if args.limit is not None and args.limit < 1:
        raise ReproError(f"--limit must be >= 1, got {args.limit}")
    if args.offset < 0:
        raise ReproError(f"--offset must be >= 0, got {args.offset}")
    total = store.count(
        algorithm=args.algorithm,
        scheduler=args.scheduler,
        ring_size=args.n,
        agent_count=args.k,
        uniform=False if args.failed else None,
        hash_prefix=args.hash,
    )
    # Matches come back in content-hash order — stable across shard
    # layouts and invocations, which is what makes --limit/--offset
    # real pagination.  (Before pagination existed, output order was
    # shard-scan order, i.e. dependent on which pid wrote which cell.)
    records = list(
        store.query(
            algorithm=args.algorithm,
            scheduler=args.scheduler,
            ring_size=args.n,
            agent_count=args.k,
            uniform=False if args.failed else None,
            hash_prefix=args.hash,
            limit=args.limit,
            offset=args.offset,
        )
    )
    if args.hash and total > 1:
        # An abbreviated hash is a *prefix*, like git's short object
        # names: when it (together with the other filters) matches
        # several records, say so and list every match rather than
        # silently picking one.  The note goes to stderr so --json
        # output stays machine-readable.
        print(
            f"hash prefix {args.hash!r} is ambiguous: {total} "
            "archived runs match; listing all of them",
            file=sys.stderr if args.json else sys.stdout,
        )
    if args.json:
        print(json.dumps([record.to_dict() for record in records], indent=2))
        return 0
    rows = []
    for record in records:
        # One row schema everywhere: RunResult.row() shapes the metrics;
        # query only prefixes the content hash and swaps the scheduler
        # description for the producing spec's canonical string.
        row = {"hash": record.content_hash[:16]}
        row.update(record.to_run_result().row())
        spec = record.spec or {}
        row["scheduler"] = (spec.get("scheduler") or {}).get(
            "spec", row["scheduler"]
        )
        rows.append(row)
    print(format_rows(rows))
    if args.limit is not None or args.offset:
        print(
            f"\npage: {len(rows)} of {total} matched runs "
            f"(offset {args.offset}, {len(store)} archived)"
        )
    else:
        print(f"\n{len(rows)} of {len(store)} archived runs matched")
    return 0


def _command_serve(args: argparse.Namespace) -> int:
    from repro.serve import serve_forever

    _require_positive_workers(args.workers, "--workers")
    return serve_forever(
        args.store,
        host=args.host,
        port=args.port,
        workers=args.workers,
        quiet=args.quiet,
    )


def _command_submit(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    with open(args.spec, "r", encoding="utf-8") as handle:
        spec = json.load(handle)
    options = {}
    if args.processes is not None:
        _require_positive_workers(args.processes, "--processes")
        options["processes"] = args.processes
    client = ServeClient(args.url)
    job = client.submit(args.kind, spec, options)
    if not args.wait:
        if args.json:
            print(json.dumps(job, indent=2))
        else:
            print(f"submitted {job['id']} ({job['kind']} "
                  f"{job['spec_hash'][:16]}, state {job['state']})")
        return 0

    last = {"line": None}

    def on_progress(polled) -> None:
        progress = polled.get("progress") or {}
        line = ", ".join(f"{k}={v}" for k, v in progress.items())
        if line and line != last["line"] and not args.json:
            print(f"  ... {line}", file=sys.stderr)
            last["line"] = line

    job = client.wait(
        job["id"], poll=args.poll, timeout=args.timeout,
        on_progress=on_progress,
    )
    if args.json:
        print(json.dumps(job, indent=2))
    elif job["state"] == "completed":
        result = job.get("result") or {}
        summary = result.get("summary") or json.dumps(result)
        print(f"{job['id']} completed: {summary}")
    else:
        print(f"{job['id']} failed: {job.get('error')}")
    return 0 if job["state"] == "completed" else 1


def _command_jobs(args: argparse.Namespace) -> int:
    from repro.serve import ServeClient

    client = ServeClient(args.url)
    if args.job_id:
        job = client.job(args.job_id)
        if args.json:
            print(json.dumps(job, indent=2))
            return 0
        print(f"{job['id']}: {job['kind']} {job['spec_hash'][:16]} "
              f"[{job['state']}]")
        progress = job.get("progress") or {}
        if progress:
            print("  progress: "
                  + ", ".join(f"{k}={v}" for k, v in progress.items()))
        if job.get("error"):
            print(f"  error: {job['error']}")
        result = job.get("result") or {}
        if result.get("summary"):
            print(f"  result: {result['summary']}")
        return 0
    listing = client.jobs()
    if args.json:
        print(json.dumps(listing, indent=2))
        return 0
    jobs = listing.get("jobs") or []
    if not jobs:
        print("no jobs")
        return 0
    rows = [
        {
            "id": job["id"],
            "kind": job["kind"],
            "spec": job["spec_hash"][:16],
            "state": job["state"],
        }
        for job in jobs
    ]
    print(format_rows(rows))
    return 0


def _command_lower_bound(args: argparse.Namespace) -> int:
    rows = []
    for row in quarter_sweep(args.sizes):
        entry = {
            "n": row.ring_size,
            "k": row.agent_count,
            "kn/16": row.quarter_floor,
            "optimal": row.optimal_moves,
        }
        for algorithm, moves in sorted(row.algorithm_moves.items()):
            entry[algorithm] = moves
        rows.append(entry)
    print(format_rows(rows))
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit code (0 ok, 1 fail, 2 error)."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "list": _command_list,
        "run": _command_run,
        "spec": _command_spec,
        "query": _command_query,
        "sweep": _command_sweep,
        "psweep": _command_psweep,
        "symmetry": _command_symmetry,
        "impossibility": _command_impossibility,
        "lower-bound": _command_lower_bound,
        "timeline": _command_timeline,
        "mc": _command_mc,
        "fuzz": _command_fuzz,
        "campaign": _command_campaign,
        "compare": _command_compare,
        "report": _command_report,
        "serve": _command_serve,
        "submit": _command_submit,
        "jobs": _command_jobs,
    }
    handler = handlers.get(args.command)
    if handler is None:
        parser.error(f"unhandled command {args.command!r}")
    try:
        return handler(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
