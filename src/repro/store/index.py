"""Secondary indexes over the run store's JSONL shards.

The shards are the *only* source of truth — everything in this module
is a derived, rebuildable view of them.  Two interchangeable backends
index the shard bytes line by line:

* :class:`SqliteLineIndex` — a persistent SQLite database
  (``<store>/index.sqlite``) shared by every handle and every process
  on the store.  Opening a store becomes O(new bytes): the database
  remembers how far each shard has been consumed, so a reopen tails
  only appended bytes instead of re-parsing the whole archive, and a
  point lookup is one ``SELECT`` plus one line read.
* :class:`MemoryLineIndex` — the historical per-handle in-memory scan.
  It exists as the *differential oracle*: it answers every index
  question from a full JSONL parse, so any disagreement with the
  SQLite backend is an index bug (``RunStore.verify_index`` and the
  property tests in ``tests/test_store_index.py`` pin the equality).

Both backends index **physical lines**, not logical records: a
``put(replace=True)`` appends a new line, and the winning line for a
content hash is resolved at query time as the one with the greatest
``(stamp, ord)`` — exactly the last-wins rule the in-memory scan has
always applied.  Keeping every line makes the index append-only like
the shards themselves, which is what makes *snapshots* trivial: a
snapshot is nothing but a pinned per-shard byte frontier, and a line
is visible to it iff the line starts below the frontier.  Appends
(including replacements) land beyond every existing frontier, so a
snapshot's answers can never change.

Visibility frontiers are plain ``{shard_name: consumed_bytes}`` dicts;
``None`` means "everything indexed so far" (the global view used when
stamping replacements).
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "INDEX_SCHEMA_VERSION",
    "LineEntry",
    "MemoryLineIndex",
    "SqliteLineIndex",
    "parse_shard_lines",
]

#: Version of the SQLite index schema; a mismatch triggers a rebuild
#: (the index is derived data — rebuilding is always safe).
#: v2: ``uniform`` became tri-state (NULL = record carries no report),
#: so reportless records stop masquerading as failed runs.
INDEX_SCHEMA_VERSION = 2

_SHARD_GLOB = "shard-*.jsonl"


@dataclass(frozen=True)
class LineEntry:
    """One indexed shard line: its location plus the cheap query fields."""

    shard: str  # shard file *name* (stable if the store directory moves)
    offset: int
    length: int  # line bytes, newline excluded
    content_hash: str
    algorithm: str
    scheduler: str
    ring_size: int
    agent_count: int
    uniform: Optional[bool]  # None = the record carries no report
    stamp: int  # wall-clock write stamp (envelope "_ts"), 0 if absent
    ord: int  # monotonic indexing order; breaks stamp ties (later wins)


def entry_from_payload(
    shard: str, offset: int, length: int, payload: Dict[str, object], ord_: int
) -> LineEntry:
    """Extract the index row of one parsed shard line."""
    if not isinstance(payload, dict) or "content_hash" not in payload:
        raise ConfigurationError(
            f"corrupt run store: {shard} record at byte {offset} "
            f"has no content_hash"
        )
    result = payload.get("result") or {}
    spec = payload.get("spec") or {}
    scheduler = (
        spec.get("scheduler", {}).get("spec")
        if isinstance(spec.get("scheduler"), dict)
        else None
    ) or str(result.get("scheduler", ""))
    # Tri-state: a record without a verification report has no verdict.
    # Coercing "no report" to False used to index such records as failed
    # runs and surface them under `query --failed` as false positives.
    report = result.get("report")
    uniform = None if not report else bool(report.get("ok", False))
    return LineEntry(
        shard=shard,
        offset=offset,
        length=length,
        content_hash=str(payload["content_hash"]),
        algorithm=str(result.get("algorithm", "")),
        scheduler=scheduler,
        ring_size=int(result.get("ring_size", 0)),
        agent_count=len(result.get("homes", ())),
        uniform=uniform,
        stamp=int(payload.get("_ts", 0)),
        ord=ord_,
    )


def parse_shard_lines(
    path: Path, start: int, size: int
) -> Tuple[List[Tuple[int, int, Dict[str, object]]], int, int, int]:
    """Parse ``path``'s bytes in ``[start, size)`` into JSON lines.

    Returns ``(lines, consumed, torn, corrupt)`` where each line is
    ``(offset, length, payload)``, ``consumed`` is the byte frontier
    after the last complete line, ``torn`` is 1 when the tail is an
    unterminated partial append, and ``corrupt`` counts
    newline-terminated garbage (a torn tail a later writer fenced off).
    """
    if size <= start:
        return [], start, 0, 0
    with path.open("rb") as handle:
        handle.seek(start)
        data = handle.read(size - start)
    lines: List[Tuple[int, int, Dict[str, object]]] = []
    torn = 0
    corrupt = 0
    pos = 0
    while pos < len(data):
        newline = data.find(b"\n", pos)
        if newline == -1:
            # Torn tail: a writer died mid-append (or is still
            # appending).  Leave it unconsumed; a later scan picks the
            # record up whole once the line terminates.
            torn += 1
            break
        raw = data[pos:newline]
        if raw:
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                # A torn tail that a later writer newline-terminated.
                # Committed records are never affected; count it and
                # move on rather than wedging readers.
                corrupt += 1
            else:
                lines.append((start + pos, len(raw), payload))
        pos = newline + 1
    return lines, start + pos, torn, corrupt


def _visible(entry: LineEntry, frontier: Optional[Dict[str, int]]) -> bool:
    if frontier is None:
        return True
    return entry.offset < frontier.get(entry.shard, 0)


def _matches(
    entry: LineEntry,
    algorithm: Optional[str],
    scheduler: Optional[str],
    ring_size: Optional[int],
    agent_count: Optional[int],
    uniform: Optional[bool],
    hash_prefix: Optional[str],
) -> bool:
    if algorithm is not None and entry.algorithm != algorithm:
        return False
    if scheduler is not None and entry.scheduler != scheduler:
        return False
    if ring_size is not None and entry.ring_size != ring_size:
        return False
    if agent_count is not None and entry.agent_count != agent_count:
        return False
    if uniform is not None and entry.uniform != uniform:
        return False
    if hash_prefix is not None and not entry.content_hash.startswith(
        hash_prefix
    ):
        return False
    return True


class MemoryLineIndex:
    """The historical full-scan index, reshaped around physical lines.

    Per-handle and ephemeral: opening a store with this backend parses
    every shard byte into memory.  Kept as the reference semantics the
    SQLite backend is differentially tested against, and as the slow
    path the ``bench_store`` indexed-vs-scan benchmark measures.
    """

    persistent = False

    def __init__(self) -> None:
        self._by_hash: Dict[str, List[LineEntry]] = {}
        self._consumed: Dict[str, int] = {}
        self._ord = 0
        self.torn_tails = 0
        self.corrupt_lines = 0

    # -- writing -------------------------------------------------------------

    def tail(self, root: Path, only: Optional[str] = None) -> None:
        """Index bytes appended since the last scan (all shards, or one)."""
        if only is not None:
            paths = [root / only]
        else:
            paths = sorted(root.glob(_SHARD_GLOB))
        for path in paths:
            if not path.exists():
                continue
            start = self._consumed.get(path.name, 0)
            size = path.stat().st_size
            lines, consumed, torn, corrupt = parse_shard_lines(
                path, start, size
            )
            self.torn_tails += torn
            self.corrupt_lines += corrupt
            for offset, length, payload in lines:
                self._add(path.name, offset, length, payload)
            self._consumed[path.name] = consumed

    def _add(
        self, shard: str, offset: int, length: int, payload: Dict[str, object]
    ) -> None:
        entry = entry_from_payload(shard, offset, length, payload, self._ord)
        self._ord += 1
        bucket = self._by_hash.setdefault(entry.content_hash, [])
        if any(e.shard == shard and e.offset == offset for e in bucket):
            return  # idempotent re-scan of the same physical line
        bucket.append(entry)

    def add_line(
        self,
        shard: str,
        offset: int,
        length: int,
        payload: Dict[str, object],
        *,
        advance_to: Optional[int] = None,
    ) -> None:
        """Index one line a local ``put`` just appended.

        ``advance_to`` moves the shard's consumed frontier when the
        append was contiguous with it; a gap (torn tail before the
        line) leaves the frontier behind so the next tail re-walks it.
        """
        self._add(shard, offset, length, payload)
        if advance_to is not None:
            self._consumed[shard] = max(
                self._consumed.get(shard, 0), advance_to
            )

    # -- reading -------------------------------------------------------------

    def frontier(self) -> Dict[str, int]:
        return dict(self._consumed)

    def _winner_of(
        self, bucket: List[LineEntry], frontier: Optional[Dict[str, int]]
    ) -> Optional[LineEntry]:
        best: Optional[LineEntry] = None
        for entry in bucket:
            if not _visible(entry, frontier):
                continue
            if best is None or (entry.stamp, entry.ord) >= (
                best.stamp, best.ord
            ):
                best = entry
        return best

    def winner(
        self, content_hash: str, frontier: Optional[Dict[str, int]]
    ) -> Optional[LineEntry]:
        bucket = self._by_hash.get(content_hash)
        if not bucket:
            return None
        return self._winner_of(bucket, frontier)

    def winners(
        self,
        frontier: Optional[Dict[str, int]],
        *,
        algorithm: Optional[str] = None,
        scheduler: Optional[str] = None,
        ring_size: Optional[int] = None,
        agent_count: Optional[int] = None,
        uniform: Optional[bool] = None,
        hash_prefix: Optional[str] = None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> List[LineEntry]:
        """Winning entries in content-hash order, filtered and paginated."""
        matched = []
        for content_hash in sorted(self._by_hash):
            entry = self._winner_of(self._by_hash[content_hash], frontier)
            if entry is None:
                continue
            if not _matches(
                entry, algorithm, scheduler, ring_size, agent_count,
                uniform, hash_prefix,
            ):
                continue
            matched.append(entry)
        if offset:
            matched = matched[offset:]
        if limit is not None:
            matched = matched[:limit]
        return matched

    def count(self, frontier: Optional[Dict[str, int]]) -> int:
        return sum(
            1
            for bucket in self._by_hash.values()
            if self._winner_of(bucket, frontier) is not None
        )

    def count_winners(
        self,
        frontier: Optional[Dict[str, int]],
        *,
        algorithm: Optional[str] = None,
        scheduler: Optional[str] = None,
        ring_size: Optional[int] = None,
        agent_count: Optional[int] = None,
        uniform: Optional[bool] = None,
        hash_prefix: Optional[str] = None,
    ) -> int:
        """Count matching winners without touching any record bytes."""
        return len(
            self.winners(
                frontier,
                algorithm=algorithm,
                scheduler=scheduler,
                ring_size=ring_size,
                agent_count=agent_count,
                uniform=uniform,
                hash_prefix=hash_prefix,
            )
        )

    def hashes(self, frontier: Optional[Dict[str, int]]) -> List[str]:
        return sorted(
            content_hash
            for content_hash, bucket in self._by_hash.items()
            if self._winner_of(bucket, frontier) is not None
        )

    def resolve_prefix(
        self, prefix: str, frontier: Optional[Dict[str, int]]
    ) -> List[str]:
        return [h for h in self.hashes(frontier) if h.startswith(prefix)]

    def rebuild(self, root: Path) -> None:
        self.__init__()
        self.tail(root)

    def close(self) -> None:
        pass


class SqliteLineIndex:
    """Persistent shard index: ``<store>/index.sqlite``.

    Pure derived data: every row mirrors one committed shard line, and
    a ``shards`` table remembers the consumed byte frontier per shard
    file.  Any process may update it (appends are discovered by
    tailing, so even writers that never touch the index — old builds,
    memory-mode handles — are picked up by the next indexed reader),
    and any inconsistency with the shard files on disk (missing or
    shorter shard, schema bump, corrupt database) triggers a full
    rebuild rather than a wrong answer.

    Thread safety: one connection per index instance, serialised by an
    RLock (``check_same_thread=False`` so server threads share it);
    cross-process safety comes from SQLite's own locking (WAL mode +
    busy timeout).  Durability is deliberately relaxed
    (``synchronous=OFF``): losing the last transactions to a crash
    merely lags the frontier, and the next tail re-indexes the lines.
    """

    persistent = True

    FILENAME = "index.sqlite"

    _COLUMNS = (
        "shard, offset, length, content_hash, algorithm, scheduler, "
        "ring_size, agent_count, uniform, stamp, ord"
    )

    def __init__(self, root: Path) -> None:
        self.root = root
        self.path = root / self.FILENAME
        self._lock = threading.RLock()
        self.torn_tails = 0
        self.corrupt_lines = 0
        try:
            self._conn = self._connect()
            self._ensure_schema()
        except sqlite3.DatabaseError:
            # Corrupt database file: the index is derived data, so
            # drop it and start over instead of failing the open.
            self._discard_database()
            self._conn = self._connect()
            self._ensure_schema()

    def _connect(self) -> sqlite3.Connection:
        conn = sqlite3.connect(
            str(self.path), timeout=30.0, check_same_thread=False
        )
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=OFF")
        conn.execute("PRAGMA busy_timeout=30000")
        return conn

    def _discard_database(self) -> None:
        try:
            self._conn.close()
        except Exception:
            pass
        for suffix in ("", "-wal", "-shm"):
            try:
                os.unlink(f"{self.path}{suffix}")
            except OSError:
                pass

    def _ensure_schema(self) -> None:
        with self._lock, self._conn:
            self._conn.executescript(
                """
                CREATE TABLE IF NOT EXISTS meta (
                    key TEXT PRIMARY KEY, value TEXT NOT NULL);
                CREATE TABLE IF NOT EXISTS shards (
                    shard TEXT PRIMARY KEY, consumed INTEGER NOT NULL);
                CREATE TABLE IF NOT EXISTS lines (
                    ord INTEGER PRIMARY KEY AUTOINCREMENT,
                    shard TEXT NOT NULL,
                    offset INTEGER NOT NULL,
                    length INTEGER NOT NULL,
                    content_hash TEXT NOT NULL,
                    algorithm TEXT NOT NULL,
                    scheduler TEXT NOT NULL,
                    ring_size INTEGER NOT NULL,
                    agent_count INTEGER NOT NULL,
                    uniform INTEGER,
                    stamp INTEGER NOT NULL);
                CREATE UNIQUE INDEX IF NOT EXISTS idx_lines_pos
                    ON lines(shard, offset);
                CREATE INDEX IF NOT EXISTS idx_lines_hash
                    ON lines(content_hash, stamp, ord);
                CREATE INDEX IF NOT EXISTS idx_lines_fields
                    ON lines(algorithm, ring_size, agent_count);
                """
            )
            row = self._conn.execute(
                "SELECT value FROM meta WHERE key='schema'"
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO meta(key, value) VALUES('schema', ?)",
                    (str(INDEX_SCHEMA_VERSION),),
                )
            elif row[0] != str(INDEX_SCHEMA_VERSION):
                # Older (or newer) index layout: rebuild from shards.
                self._reset_locked()

    def _reset_locked(self) -> None:
        """Drop every derived row (caller holds lock + transaction)."""
        self._conn.execute("DELETE FROM lines")
        self._conn.execute("DELETE FROM shards")
        self._conn.execute("DELETE FROM meta")
        self._conn.execute(
            "INSERT INTO meta(key, value) VALUES('schema', ?)",
            (str(INDEX_SCHEMA_VERSION),),
        )

    def rebuild(self, root: Path) -> None:
        """Discard the index and re-derive it from the shard files."""
        with self._lock:
            with self._conn:
                self._reset_locked()
            self.tail(root)

    # -- writing -------------------------------------------------------------

    def tail(self, root: Path, only: Optional[str] = None) -> None:
        """Index shard bytes appended since the recorded frontier.

        Detects stale state first: a recorded shard that disappeared or
        shrank means the directory was rewritten under us (renames,
        restores from backup), and the whole index is rebuilt from
        scratch — derived data is never patched into correctness.
        """
        with self._lock:
            recorded = dict(
                self._conn.execute("SELECT shard, consumed FROM shards")
            )
            on_disk = {
                path.name: path for path in sorted(root.glob(_SHARD_GLOB))
            }
            stale = [
                shard
                for shard, consumed in recorded.items()
                if shard not in on_disk
                or on_disk[shard].stat().st_size < consumed
            ]
            if not stale and only is None:
                # Shards are append-only under normal operation, but a
                # reopen must also survive a shard *rewritten in place*
                # (restored from backup, doctored by hand): any rewrite
                # that moves bytes invalidates every recorded offset.
                # Cheap detection: the last indexed line of each shard
                # must still round-trip at its recorded position.
                for shard in recorded:
                    if not self._tail_line_intact_locked(on_disk[shard]):
                        stale.append(shard)
            if stale:
                # A recorded shard vanished or shrank: the directory
                # was rewritten under us, so every derived row is
                # suspect — re-derive the whole index from disk.
                with self._conn:
                    self._reset_locked()
                recorded = {}
                targets = on_disk
            elif only is not None:
                path = root / only
                targets = {only: path} if path.exists() else {}
            else:
                targets = on_disk
            for shard, path in targets.items():
                start = int(recorded.get(shard, 0))
                size = path.stat().st_size
                if size <= start:
                    continue
                lines, consumed, torn, corrupt = parse_shard_lines(
                    path, start, size
                )
                self.torn_tails += torn
                self.corrupt_lines += corrupt
                with self._conn:
                    for offset, length, payload in lines:
                        self._insert_locked(shard, offset, length, payload)
                    self._advance_locked(shard, consumed)

    def _tail_line_intact_locked(self, path: Path) -> bool:
        row = self._conn.execute(
            "SELECT offset, length, content_hash, stamp FROM lines "
            "WHERE shard=? ORDER BY offset DESC LIMIT 1",
            (path.name,),
        ).fetchone()
        if row is None:
            return True
        offset, length, content_hash, stamp = row
        try:
            with path.open("rb") as handle:
                handle.seek(int(offset))
                payload = json.loads(handle.read(int(length)))
        except (OSError, ValueError):
            return False
        return (
            isinstance(payload, dict)
            and payload.get("content_hash") == content_hash
            and int(payload.get("_ts", 0)) == int(stamp)
        )

    def _insert_locked(
        self, shard: str, offset: int, length: int, payload: Dict[str, object]
    ) -> None:
        entry = entry_from_payload(shard, offset, length, payload, 0)
        self._conn.execute(
            "INSERT OR IGNORE INTO lines(shard, offset, length, content_hash,"
            " algorithm, scheduler, ring_size, agent_count, uniform, stamp)"
            " VALUES(?,?,?,?,?,?,?,?,?,?)",
            (
                entry.shard,
                entry.offset,
                entry.length,
                entry.content_hash,
                entry.algorithm,
                entry.scheduler,
                entry.ring_size,
                entry.agent_count,
                None if entry.uniform is None else (1 if entry.uniform else 0),
                entry.stamp,
            ),
        )

    def _advance_locked(self, shard: str, consumed: int) -> None:
        self._conn.execute(
            "INSERT INTO shards(shard, consumed) VALUES(?, ?) "
            "ON CONFLICT(shard) DO UPDATE SET consumed=max(consumed, ?)",
            (shard, consumed, consumed),
        )

    def add_line(
        self,
        shard: str,
        offset: int,
        length: int,
        payload: Dict[str, object],
        *,
        advance_to: Optional[int] = None,
    ) -> None:
        """Transactionally index one line a local ``put`` appended."""
        with self._lock, self._conn:
            self._insert_locked(shard, offset, length, payload)
            if advance_to is not None:
                self._advance_locked(shard, advance_to)

    # -- reading -------------------------------------------------------------

    def frontier(self) -> Dict[str, int]:
        with self._lock:
            return {
                shard: int(consumed)
                for shard, consumed in self._conn.execute(
                    "SELECT shard, consumed FROM shards"
                )
            }

    @staticmethod
    def _frontier_clause(
        frontier: Optional[Dict[str, int]]
    ) -> Tuple[str, List[object]]:
        if frontier is None:
            return "1", []
        live = [(shard, consumed) for shard, consumed in frontier.items()
                if consumed > 0]
        if not live:
            return "0", []
        parts = " OR ".join("(shard=? AND offset<?)" for _ in live)
        params: List[object] = []
        for shard, consumed in live:
            params.extend((shard, consumed))
        return f"({parts})", params

    @staticmethod
    def _entry(row: Tuple) -> LineEntry:
        return LineEntry(
            shard=row[0],
            offset=int(row[1]),
            length=int(row[2]),
            content_hash=row[3],
            algorithm=row[4],
            scheduler=row[5],
            ring_size=int(row[6]),
            agent_count=int(row[7]),
            uniform=None if row[8] is None else bool(row[8]),
            stamp=int(row[9]),
            ord=int(row[10]),
        )

    def winner(
        self, content_hash: str, frontier: Optional[Dict[str, int]]
    ) -> Optional[LineEntry]:
        clause, params = self._frontier_clause(frontier)
        with self._lock:
            row = self._conn.execute(
                f"SELECT {self._COLUMNS} FROM lines "
                f"WHERE content_hash=? AND {clause} "
                f"ORDER BY stamp DESC, ord DESC LIMIT 1",
                [content_hash, *params],
            ).fetchone()
        return self._entry(row) if row else None

    def _winner_query(
        self,
        select: str,
        frontier: Optional[Dict[str, int]],
        algorithm: Optional[str],
        scheduler: Optional[str],
        ring_size: Optional[int],
        agent_count: Optional[int],
        uniform: Optional[bool],
        hash_prefix: Optional[str],
        tail_sql: str,
        tail_params: List[object],
    ) -> Iterable[Tuple]:
        clause, params = self._frontier_clause(frontier)
        filters = []
        filter_params: List[object] = []
        for field, value in (
            ("algorithm", algorithm),
            ("scheduler", scheduler),
            ("ring_size", ring_size),
            ("agent_count", agent_count),
        ):
            if value is not None:
                filters.append(f"{field}=?")
                filter_params.append(value)
        if uniform is not None:
            filters.append("uniform=?")
            filter_params.append(1 if uniform else 0)
        if hash_prefix is not None:
            filters.append("substr(content_hash, 1, ?)=?")
            filter_params.extend((len(hash_prefix), hash_prefix))
        where = " AND ".join(filters) if filters else "1"
        sql = (
            f"SELECT {select} FROM ("
            f"  SELECT {self._COLUMNS}, ROW_NUMBER() OVER ("
            f"    PARTITION BY content_hash ORDER BY stamp DESC, ord DESC"
            f"  ) AS rn FROM lines WHERE {clause}"
            f") WHERE rn=1 AND {where} {tail_sql}"
        )
        with self._lock:
            return self._conn.execute(
                sql, [*params, *filter_params, *tail_params]
            ).fetchall()

    def winners(
        self,
        frontier: Optional[Dict[str, int]],
        *,
        algorithm: Optional[str] = None,
        scheduler: Optional[str] = None,
        ring_size: Optional[int] = None,
        agent_count: Optional[int] = None,
        uniform: Optional[bool] = None,
        hash_prefix: Optional[str] = None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> List[LineEntry]:
        tail = "ORDER BY content_hash"
        tail_params: List[object] = []
        if limit is not None or offset:
            # SQLite requires LIMIT before OFFSET; -1 means unbounded.
            tail += " LIMIT ? OFFSET ?"
            tail_params = [-1 if limit is None else limit, offset]
        rows = self._winner_query(
            self._COLUMNS, frontier, algorithm, scheduler, ring_size,
            agent_count, uniform, hash_prefix, tail, tail_params,
        )
        return [self._entry(row) for row in rows]

    def count(self, frontier: Optional[Dict[str, int]]) -> int:
        # One winner exists per distinct visible hash, so counting
        # winners is counting distinct hashes — no window scan needed.
        clause, params = self._frontier_clause(frontier)
        with self._lock:
            row = self._conn.execute(
                f"SELECT COUNT(DISTINCT content_hash) FROM lines "
                f"WHERE {clause}",
                params,
            ).fetchone()
        return int(row[0])

    def count_winners(
        self,
        frontier: Optional[Dict[str, int]],
        *,
        algorithm: Optional[str] = None,
        scheduler: Optional[str] = None,
        ring_size: Optional[int] = None,
        agent_count: Optional[int] = None,
        uniform: Optional[bool] = None,
        hash_prefix: Optional[str] = None,
    ) -> int:
        """``SELECT COUNT(*)`` over the winners — zero record bytes read."""
        rows = self._winner_query(
            "COUNT(*)", frontier, algorithm, scheduler, ring_size,
            agent_count, uniform, hash_prefix, "", [],
        )
        return int(list(rows)[0][0])

    def hashes(self, frontier: Optional[Dict[str, int]]) -> List[str]:
        clause, params = self._frontier_clause(frontier)
        with self._lock:
            rows = self._conn.execute(
                f"SELECT DISTINCT content_hash FROM lines WHERE {clause} "
                f"ORDER BY content_hash",
                params,
            ).fetchall()
        return [row[0] for row in rows]

    def resolve_prefix(
        self, prefix: str, frontier: Optional[Dict[str, int]]
    ) -> List[str]:
        clause, params = self._frontier_clause(frontier)
        with self._lock:
            rows = self._conn.execute(
                f"SELECT DISTINCT content_hash FROM lines "
                f"WHERE substr(content_hash, 1, ?)=? AND {clause} "
                f"ORDER BY content_hash",
                [len(prefix), prefix, *params],
            ).fetchall()
        return [row[0] for row in rows]

    def close(self) -> None:
        with self._lock:
            try:
                self._conn.close()
            except Exception:
                pass
