"""Content-addressed memoisation of experiment runs.

:func:`cached_run` is the one bridge every layer uses to trade compute
for storage: given an :class:`~repro.spec.ExperimentSpec` and an
optional :class:`~repro.store.jsonl.RunStore`, it returns the archived
:class:`~repro.experiments.runner.RunResult` when the spec's content
hash is already stored and otherwise executes the spec and archives the
fresh result.  Because runs are deterministic functions of their spec,
the cached and computed results are interchangeable — the differential
guarantee pinned by ``tests/test_store.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.store.jsonl import RunStore

__all__ = ["cached_run"]


def _execute(spec, backend: str):
    """Run one spec on the chosen backend (batch falls back per-spec).

    The batch backend is byte-identical to the object engine, so the
    archived record — and its content hash — is the same either way;
    ``backend`` only changes *how* a miss is computed, never what gets
    stored.  A spec the batch backend does not cover silently runs on
    the object engine, mirroring :func:`repro.experiments.sweep
    .execute_sweep`'s fallback.
    """
    from repro.experiments.runner import run_experiment

    if backend == "batch":
        from repro.sim.batch import batch_supported, run_batch

        if batch_supported(spec) is None:
            return run_batch([spec])[0]
    return run_experiment(spec)


def cached_run(
    spec, store: Optional[RunStore] = None, *, backend: str = "object"
) -> Tuple[object, bool]:
    """Run ``spec`` through the store; return ``(result, cache_hit)``.

    With ``store=None`` this is exactly ``run_experiment(spec)`` (and
    ``cache_hit`` is always False), so callers can thread an optional
    store without branching.  ``backend="batch"`` computes cache misses
    on the columnar engine where it covers the spec (object-engine
    fallback otherwise); hits are served from the store regardless.
    """
    if backend not in ("object", "batch"):
        raise ConfigurationError(
            f"unknown run backend {backend!r} (choose 'object' or 'batch')"
        )
    if store is not None:
        content_hash = spec.content_hash()
        if store.contains(content_hash):
            return store.get(content_hash).to_run_result(), True
        result = _execute(spec, backend)
        store.put(result.to_record(spec))
        return result, False
    return _execute(spec, backend), False
