"""Content-addressed memoisation of experiment runs.

:func:`cached_run` is the one bridge every layer uses to trade compute
for storage: given an :class:`~repro.spec.ExperimentSpec` and an
optional :class:`~repro.store.jsonl.RunStore`, it returns the archived
:class:`~repro.experiments.runner.RunResult` when the spec's content
hash is already stored and otherwise executes the spec and archives the
fresh result.  Because runs are deterministic functions of their spec,
the cached and computed results are interchangeable — the differential
guarantee pinned by ``tests/test_store.py``.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.store.jsonl import RunStore

__all__ = ["cached_run"]


def cached_run(
    spec, store: Optional[RunStore] = None
) -> Tuple[object, bool]:
    """Run ``spec`` through the store; return ``(result, cache_hit)``.

    With ``store=None`` this is exactly ``run_experiment(spec)`` (and
    ``cache_hit`` is always False), so callers can thread an optional
    store without branching.
    """
    from repro.experiments.runner import run_experiment

    if store is not None:
        content_hash = spec.content_hash()
        if store.contains(content_hash):
            return store.get(content_hash).to_run_result(), True
        result = run_experiment(spec)
        store.put(result.to_record(spec))
        return result, False
    return run_experiment(spec), False
