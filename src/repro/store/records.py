"""The canonical archived-run schema: :class:`RunRecord`.

One record is everything the store keeps about one completed
experiment:

* ``spec`` — the :class:`repro.spec.ExperimentSpec` dict that produced
  the run (``None`` for results archived without a spec, e.g. the
  legacy flat-file path in :mod:`repro.experiments.serialize`),
* ``content_hash`` — the spec's SHA-256 content hash, the store key;
  specless records derive a hash from the result payload instead,
* ``result`` — the canonical :class:`~repro.experiments.runner.RunResult`
  payload (:func:`result_to_payload` / :func:`result_from_payload` are
  the *only* converters in the codebase; ``serialize.result_to_dict``
  and ``RunResult.to_record`` are both thin wrappers over them),
* ``env`` — an environment fingerprint (interpreter, platform, package
  version) recording where the numbers came from,
* ``schema_version`` — bumped on any incompatible payload change;
  records from the future are rejected loudly, never best-effort
  parsed.

Everything here is JSON-safe plain data, picklable both ways, so
records can cross process boundaries and live on disk as JSONL lines.
"""

from __future__ import annotations

import hashlib
import json
import platform
import sys
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.errors import ConfigurationError

__all__ = [
    "STORE_SCHEMA_VERSION",
    "RunRecord",
    "env_fingerprint",
    "result_to_payload",
    "result_from_payload",
]

#: Version of the RunRecord envelope + result payload schema.
STORE_SCHEMA_VERSION = 1

_REQUIRED_RESULT_KEYS = (
    "algorithm",
    "ring_size",
    "homes",
    "scheduler",
    "total_moves",
    "max_moves",
    "ideal_time",
    "max_memory_bits",
    "messages_sent",
    "final_positions",
    "report",
)


def env_fingerprint() -> Dict[str, str]:
    """Where a run was computed: interpreter, platform, package version.

    Purely informational — record equality semantics and the store key
    never depend on it, but archived numbers keep their provenance.
    """
    from repro import __version__

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": sys.platform,
        "repro": __version__,
    }


def result_to_payload(result) -> Dict[str, object]:
    """Flatten one ``RunResult`` into the canonical JSON-safe payload."""
    return {
        "algorithm": result.algorithm,
        "ring_size": result.placement.ring_size,
        "homes": list(result.placement.homes),
        "scheduler": result.scheduler,
        "total_moves": result.total_moves,
        "max_moves": result.max_moves,
        "ideal_time": result.ideal_time,
        "max_memory_bits": result.max_memory_bits,
        "messages_sent": result.messages_sent,
        "final_positions": list(result.final_positions),
        "report": {
            "ok": result.report.ok,
            "ring_size": result.report.ring_size,
            "agent_count": result.report.agent_count,
            "gaps": list(result.report.gaps),
            "failures": list(result.report.failures),
        },
    }


def result_from_payload(data: Dict[str, object]):
    """Rebuild a ``RunResult`` from :func:`result_to_payload` output."""
    from repro.analysis.verification import VerificationReport
    from repro.experiments.runner import RunResult
    from repro.ring.placement import Placement

    try:
        report_data = data["report"]
        report = VerificationReport(
            ok=report_data["ok"],
            ring_size=report_data["ring_size"],
            agent_count=report_data["agent_count"],
            gaps=tuple(report_data["gaps"]),
            failures=tuple(report_data["failures"]),
        )
        return RunResult(
            algorithm=data["algorithm"],
            placement=Placement(
                ring_size=data["ring_size"], homes=tuple(data["homes"])
            ),
            scheduler=data["scheduler"],
            total_moves=data["total_moves"],
            max_moves=data["max_moves"],
            ideal_time=data["ideal_time"],
            max_memory_bits=data["max_memory_bits"],
            messages_sent=data["messages_sent"],
            report=report,
            final_positions=tuple(data["final_positions"]),
        )
    except (KeyError, TypeError) as missing:
        raise ConfigurationError(
            f"malformed result record: missing key {missing}"
        ) from None


def payload_hash(payload: Dict[str, object]) -> str:
    """Content hash of a *specless* result payload.

    Records archived without an :class:`~repro.spec.ExperimentSpec`
    still need a stable store key; hashing the canonical payload (with
    a domain prefix so it can never collide with a spec hash by
    construction) provides one.
    """
    canonical = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(b"result|" + canonical.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class RunRecord:
    """One archived experiment run (the store's unit of persistence)."""

    content_hash: str
    result: Dict[str, object]
    spec: Optional[Dict[str, object]] = None
    env: Dict[str, str] = field(default_factory=env_fingerprint)
    schema_version: int = STORE_SCHEMA_VERSION

    def __post_init__(self) -> None:
        missing = [
            key for key in _REQUIRED_RESULT_KEYS if key not in self.result
        ]
        if missing:
            raise ConfigurationError(
                f"run record result payload is missing keys {missing}"
            )

    # -- conversions ---------------------------------------------------------

    def to_run_result(self):
        """The :class:`~repro.experiments.runner.RunResult` this record holds."""
        return result_from_payload(self.result)

    def experiment_spec(self):
        """The producing :class:`~repro.spec.ExperimentSpec` (or ``None``)."""
        if self.spec is None:
            return None
        from repro.spec import ExperimentSpec

        return ExperimentSpec.from_dict(self.spec)

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (one store line)."""
        return {
            "schema_version": self.schema_version,
            "content_hash": self.content_hash,
            "spec": self.spec,
            "result": self.result,
            "env": self.env,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "RunRecord":
        """Inverse of :meth:`to_dict`; future schema versions are rejected."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"run record must be a dict, got {type(data).__name__}"
            )
        version = data.get("schema_version")
        if not isinstance(version, int):
            raise ConfigurationError(
                f"run record has no integer schema_version (got {version!r})"
            )
        if version > STORE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"run record uses store schema version {version}, but this "
                f"build reads at most {STORE_SCHEMA_VERSION}; upgrade repro "
                f"to read it"
            )
        if version < 1:
            raise ConfigurationError(
                f"run record has impossible schema version {version} "
                f"(the first store schema is 1)"
            )
        try:
            return cls(
                content_hash=data["content_hash"],
                result=data["result"],
                spec=data.get("spec"),
                env=data.get("env", {}),
                schema_version=version,
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"run record is missing required key {missing}"
            ) from None
