"""Content-addressed persistence for experiment runs.

PR 3 gave every experiment a frozen :class:`~repro.spec.ExperimentSpec`
with a stable SHA-256 content hash; this package cashes that check: the
hash keys a persistent, append-only archive of completed runs, so
repeated and overlapping sweeps cost O(new cells) compute instead of
O(cells).

* :class:`~repro.store.records.RunRecord` — the canonical archived-run
  schema (spec + content hash + result payload + env fingerprint +
  schema version),
* :class:`~repro.store.jsonl.RunStore` — the JSONL shard backend
  (atomic appends safe under the sweep pool; lookups answered by a
  rebuildable SQLite secondary index, with the historical full
  in-memory scan kept as a differential oracle),
* :class:`~repro.store.jsonl.StoreSnapshot` — frozen read-only views
  pinning a per-shard byte frontier, so the experiment service can
  answer concurrent queries while writers append,
* :func:`~repro.store.cache.cached_run` — spec-in, result-out
  memoisation used by the runner, sweeps, statistics, reports and the
  CLI,
* :class:`~repro.store.failures.FailureArchive` — content-addressed
  JSON artifacts for fuzzer-found violations, one file per triggering
  spec hash under ``<store>/failures/`` (``RunStore.failures``).
"""

from repro.store.cache import cached_run
from repro.store.campaigns import CampaignLedger, QuarantineArchive
from repro.store.failures import FailureArchive
from repro.store.index import MemoryLineIndex, SqliteLineIndex
from repro.store.jsonl import RunStore, StoreSnapshot
from repro.store.records import (
    STORE_SCHEMA_VERSION,
    RunRecord,
    env_fingerprint,
    result_from_payload,
    result_to_payload,
)

__all__ = [
    "STORE_SCHEMA_VERSION",
    "CampaignLedger",
    "FailureArchive",
    "MemoryLineIndex",
    "QuarantineArchive",
    "RunRecord",
    "RunStore",
    "SqliteLineIndex",
    "StoreSnapshot",
    "cached_run",
    "env_fingerprint",
    "result_from_payload",
    "result_to_payload",
]
