"""Append-only JSONL shard store for :class:`~repro.store.records.RunRecord`.

Layout: a directory of ``shard-<pid>.jsonl`` files, one JSON record per
line.  Every writer process appends **only to its own shard** (named by
its pid), each record is written with a single ``O_APPEND`` ``write``
call, and shards are never rewritten — three properties that together
make the store safe under the multiprocessing sweep pool without any
cross-process locking:

* two processes never interleave bytes inside one file,
* a single append either lands whole or (if the writer is killed
  mid-call) leaves a torn *tail* that the next scan detects and skips —
  committed records are never damaged,
* readers can :meth:`RunStore.refresh` at any time and see exactly the
  records whose writes completed.

Lookups and queries never parse the whole archive: a secondary index
(:mod:`repro.store.index` — SQLite at ``<store>/index.sqlite`` by
default, the historical full in-memory scan with ``index="memory"``)
maps every committed shard line to its offset plus the small query
fields, so :meth:`RunStore.query` filters millions of records without
parsing them, :meth:`RunStore.get` reads exactly one line, and
reopening a store tails only the bytes appended since the index last
looked.  If the same hash appears on several lines the one with the
newest write stamp wins (that is what makes ``put(replace=True)``
durable across reopen, whichever shard the replacement landed in);
racing writers only ever duplicate identical payloads — runs are
deterministic functions of their spec — so for them the choice is
immaterial.

Every handle owns a *visibility frontier* — the per-shard byte offsets
it has caught up to.  :meth:`RunStore.refresh` advances it; between
refreshes a handle's view is stable no matter what other writers
append, and :meth:`RunStore.snapshot` freezes the current view into a
read-only :class:`StoreSnapshot` whose answers can never change (shards
are append-only, so the bytes below a frontier are immutable).  That is
what lets the experiment service serve concurrent queries while sweep
jobs write into the same archive.

Iteration and query order is sorted content-hash order — stable across
shard layouts and refreshes.  (Before the secondary index landed it was
shard-scan order, which depended on which pid wrote which record.)
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Union

from repro.errors import ConfigurationError
from repro.store.index import LineEntry, MemoryLineIndex, SqliteLineIndex
from repro.store.records import RunRecord

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store.campaigns import CampaignLedger, QuarantineArchive
    from repro.store.failures import FailureArchive

__all__ = ["RunStore", "StoreSnapshot"]

#: Process-wide locks, one per shard file: several RunStore handles in
#: one process share the pid shard, so the fstat-offset/append/index
#: sequence in put() must serialise across handles, not just within one.
_SHARD_LOCKS: Dict[str, threading.Lock] = {}
_SHARD_LOCKS_GUARD = threading.Lock()


def _shard_lock(path: Path) -> threading.Lock:
    key = os.path.realpath(path)
    with _SHARD_LOCKS_GUARD:
        return _SHARD_LOCKS.setdefault(key, threading.Lock())


class _StoreView:
    """Read operations over (root, line index, visibility frontier).

    Base of both :class:`RunStore` (whose frontier advances on
    ``refresh``/``put``) and :class:`StoreSnapshot` (whose frontier is
    frozen).  Subclasses set ``root``, ``_index`` and ``_frontier``.
    """

    root: Path
    _frontier: Dict[str, int]

    # -- loading -------------------------------------------------------------

    def _load(self, entry: LineEntry) -> RunRecord:
        path = self.root / entry.shard
        with path.open("rb") as handle:
            handle.seek(entry.offset)
            raw = handle.read(entry.length)
        return RunRecord.from_dict(json.loads(raw))

    def _load_many(self, entries: List[LineEntry]) -> List[RunRecord]:
        """Load records with one file open per shard, not per record.

        Bulk readers (:meth:`iter_records`, :meth:`query`) would
        otherwise pay an open/seek/close cycle for every record; here
        each shard is opened once and its matches are read in offset
        order.  The returned list preserves the order of ``entries``.
        """
        raw: Dict[int, bytes] = {}
        by_shard: Dict[str, List[LineEntry]] = {}
        for entry in entries:
            by_shard.setdefault(entry.shard, []).append(entry)
        for shard, group in by_shard.items():
            with (self.root / shard).open("rb") as handle:
                for entry in sorted(group, key=lambda e: e.offset):
                    handle.seek(entry.offset)
                    raw[id(entry)] = handle.read(entry.length)
        return [
            RunRecord.from_dict(json.loads(raw[id(entry)])) for entry in entries
        ]

    def _winner(self, content_hash: str) -> Optional[LineEntry]:
        return self._index.winner(content_hash, self._frontier)

    # -- lookups -------------------------------------------------------------

    def get(self, content_hash: str) -> RunRecord:
        """The archived record for ``content_hash`` (KeyError when absent)."""
        entry = self._winner(content_hash)
        if entry is None:
            raise KeyError(content_hash)
        return self._load(entry)

    def get_many(self, content_hashes: List[str]) -> List[RunRecord]:
        """The records for ``content_hashes``, in the given order.

        Bulk counterpart of :meth:`get` for hot resume paths: shards
        are opened once each instead of once per record.  Raises
        ``KeyError`` on the first absent hash.
        """
        entries = []
        for content_hash in content_hashes:
            entry = self._winner(content_hash)
            if entry is None:
                raise KeyError(content_hash)
            entries.append(entry)
        return self._load_many(entries)

    def contains(self, content_hash: str) -> bool:
        return self._winner(content_hash) is not None

    __contains__ = contains

    def resolve_prefix(self, prefix: str) -> List[str]:
        """All stored hashes starting with ``prefix``, sorted.

        The abbreviated-hash helper behind ``repro query --hash``: a
        prefix can legitimately match several records, and callers that
        need exactly one (or want to report ambiguity clearly) resolve
        it here first instead of picking an arbitrary match.
        """
        return self._index.resolve_prefix(prefix, self._frontier)

    def __len__(self) -> int:
        return self._index.count(self._frontier)

    def hashes(self) -> List[str]:
        """All stored content hashes, sorted."""
        return self._index.hashes(self._frontier)

    def iter_records(self) -> Iterator[RunRecord]:
        """Every stored record, in content-hash order."""
        yield from self.query()

    def query(
        self,
        *,
        algorithm: Optional[str] = None,
        scheduler: Optional[str] = None,
        ring_size: Optional[int] = None,
        agent_count: Optional[int] = None,
        uniform: Optional[bool] = None,
        hash_prefix: Optional[str] = None,
        limit: Optional[int] = None,
        offset: int = 0,
    ) -> Iterator[RunRecord]:
        """Records matching every given filter, in content-hash order.

        Filtering runs on the secondary index; only matching records
        are parsed from disk.  ``scheduler`` matches the producing
        spec's canonical scheduler spec string (falling back to the
        scheduler description for specless records); ``hash_prefix``
        matches the start of the content hash, so ``repro query --hash
        ab12`` works like git's abbreviated object names.  ``limit``
        and ``offset`` paginate the matches — the hash order is stable,
        so consecutive pages never skip or repeat a record as long as
        the view doesn't move (use :meth:`RunStore.snapshot` when
        writers are live).
        """
        matched = self._index.winners(
            self._frontier,
            algorithm=algorithm,
            scheduler=scheduler,
            ring_size=ring_size,
            agent_count=agent_count,
            uniform=uniform,
            hash_prefix=hash_prefix,
            limit=limit,
            offset=offset,
        )
        # Stream in chunks: hash order is preserved, memory stays
        # bounded by the chunk, and chunks still amortise file opens.
        chunk = 1024
        for begin in range(0, len(matched), chunk):
            yield from self._load_many(matched[begin:begin + chunk])

    def count(
        self,
        *,
        algorithm: Optional[str] = None,
        scheduler: Optional[str] = None,
        ring_size: Optional[int] = None,
        agent_count: Optional[int] = None,
        uniform: Optional[bool] = None,
        hash_prefix: Optional[str] = None,
    ) -> int:
        """How many records :meth:`query` would match (no disk reads).

        Counting is pushed into the index backend (``SELECT COUNT(*)``
        for SQLite): no entry list is materialised and no record bytes
        are ever read, so counting a million-record store costs one
        query, not one allocation per match.
        """
        if all(
            value is None
            for value in (
                algorithm, scheduler, ring_size, agent_count, uniform,
                hash_prefix,
            )
        ):
            return self._index.count(self._frontier)
        return self._index.count_winners(
            self._frontier,
            algorithm=algorithm,
            scheduler=scheduler,
            ring_size=ring_size,
            agent_count=agent_count,
            uniform=uniform,
            hash_prefix=hash_prefix,
        )

    def digest(self) -> str:
        """A stable SHA-256 over the store's *logical* record contents.

        Hashes every record's canonical ``to_dict()`` JSON (which
        excludes the ``_ts`` write-stamp envelope), sorted by content
        hash — so two stores hold the same digest exactly when they
        archived the same set of records, regardless of shard pid
        names, write order, duplicate appends or wall-clock stamps.
        This is the equality the chaos harness asserts — a
        fault-disturbed campaign's store must digest identically to an
        undisturbed serial run's — and the experiment service's
        HTTP-vs-CLI identity gate: a sweep submitted over HTTP must
        digest identically to the same sweep via ``repro psweep``.
        """
        hasher = hashlib.sha256()
        entries = self._index.winners(self._frontier)
        chunk = 1024
        for begin in range(0, len(entries), chunk):
            for record in self._load_many(entries[begin:begin + chunk]):
                canonical = json.dumps(
                    record.to_dict(), sort_keys=True, separators=(",", ":")
                )
                hasher.update(canonical.encode("utf-8"))
                hasher.update(b"\n")
        return hasher.hexdigest()

    # -- satellite archives --------------------------------------------------

    @property
    def failures(self) -> "FailureArchive":
        """The store's failure-artifact archive (``<root>/failures/``).

        Fuzzer-found violations live here as one JSON artifact per
        triggering-spec content hash; see
        :class:`repro.store.failures.FailureArchive`.
        """
        from repro.store.failures import FailureArchive

        return FailureArchive(self.root / "failures")

    @property
    def quarantine(self) -> "QuarantineArchive":
        """The store's quarantined-unit archive (``<root>/quarantine/``).

        Campaign work units that exhausted their retry budget land here
        as poison artifacts; see
        :class:`repro.store.campaigns.QuarantineArchive`.
        """
        from repro.store.campaigns import QuarantineArchive

        return QuarantineArchive(self.root / "quarantine")

    def campaign_ledger(self, work_hash: str) -> "CampaignLedger":
        """The lease-event journal of one campaign (``<root>/campaign/``)."""
        from repro.store.campaigns import CampaignLedger

        return CampaignLedger(self.root / "campaign", work_hash)


class StoreSnapshot(_StoreView):
    """A read-only, frozen view of a :class:`RunStore`.

    Pins the store's visibility frontier at creation time: because
    shards are append-only and the frontier only ever covers committed
    whole lines, every answer a snapshot gives is stable no matter how
    many ``put()``s land concurrently — no locks held, no bytes copied.
    The snapshot shares its parent handle's index, so it stays valid
    for the parent's lifetime.
    """

    def __init__(self, store: "RunStore") -> None:
        self.root = store.root
        self._store = store
        self._generation = store.generation
        self._frontier = dict(store._frontier)

    @property
    def _index(self):
        # Fail loudly, never serve torn answers: compact() relocates
        # line bytes, so a pre-compaction frontier's offsets are
        # meaningless afterwards.  Every read path consults the index
        # first, so gating it here invalidates the whole snapshot.
        if self._store.generation != self._generation:
            raise ConfigurationError(
                f"snapshot of {self.root} was invalidated by compact(); "
                f"take a new snapshot"
            )
        return self._store._index

    def describe(self) -> str:
        return (
            f"StoreSnapshot({self.root}): {len(self)} records "
            f"in {len(self._frontier)} shard(s)"
        )


class RunStore(_StoreView):
    """A content-addressed, append-only archive of experiment runs.

    ``RunStore(directory)`` opens (creating if needed) a store rooted at
    ``directory``.  The API is deliberately small:

    * :meth:`put` — archive a record (no-op on duplicate hashes),
    * :meth:`get` / :meth:`contains` / ``hash in store`` — lookup,
    * :meth:`query` — filtered, paginated iteration without full
      parsing,
    * :meth:`iter_records` — everything, in content-hash order,
    * :meth:`refresh` — pick up records other processes appended since
      the last scan,
    * :meth:`snapshot` — a frozen read-only view for concurrent
      queries.

    ``index`` selects the secondary-index backend: ``"sqlite"`` (the
    default) persists ``<store>/index.sqlite`` so reopening is O(new
    bytes); ``"memory"`` is the historical per-handle full scan, kept
    as the differential oracle (:meth:`verify_index`) and benchmark
    baseline.  Both are derived data — deleting ``index.sqlite`` never
    loses a record.
    """

    def __init__(
        self,
        root: Union[str, Path],
        *,
        create: bool = True,
        index: str = "sqlite",
    ) -> None:
        self.root = Path(root)
        if not self.root.exists():
            if not create:
                raise ConfigurationError(f"run store {self.root} does not exist")
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise ConfigurationError(
                f"run store path {self.root} is not a directory"
            )
        if index == "sqlite":
            self._index = SqliteLineIndex(self.root)
        elif index == "memory":
            self._index = MemoryLineIndex()
        else:
            raise ConfigurationError(
                f"unknown store index backend {index!r} "
                f"(expected 'sqlite' or 'memory')"
            )
        self.index_mode = index
        #: Bumped by :meth:`compact`; snapshots pin the value they were
        #: taken at and refuse to answer once it moves.
        self.generation = 0
        self._frontier: Dict[str, int] = {}
        self._lock = threading.Lock()
        self.refresh()

    # -- scanning ------------------------------------------------------------

    def refresh(self) -> int:
        """Catch up with other writers; return how many records appeared.

        Tails only the shard bytes appended since the index last
        looked (O(new bytes), not O(store)) and advances this handle's
        visibility frontier over them.
        """
        with self._lock:
            before = self._index.count(self._frontier)
            self._index.tail(self.root)
            self._frontier = self._index.frontier()
            return self._index.count(self._frontier) - before

    def snapshot(self) -> StoreSnapshot:
        """Freeze the current view into a read-only :class:`StoreSnapshot`."""
        return StoreSnapshot(self)

    def verify_index(self) -> int:
        """Differentially validate the index against a full JSONL scan.

        Re-derives an independent in-memory index from the shard bytes
        and checks that both agree on the set of visible hashes and on
        the winning line of every hash (equal-stamp winners may differ
        in location when racing writers duplicated a record — then the
        payloads themselves must be identical).  Returns the number of
        hashes checked; raises :class:`ConfigurationError` on the first
        disagreement.
        """
        oracle = MemoryLineIndex()
        oracle.tail(self.root)
        with self._lock:
            self._index.tail(self.root)
        mine = {e.content_hash: e for e in self._index.winners(None)}
        theirs = {e.content_hash: e for e in oracle.winners(None)}
        if set(mine) != set(theirs):
            missing = set(theirs) - set(mine)
            extra = set(mine) - set(theirs)
            raise ConfigurationError(
                f"store index disagrees with JSONL scan: "
                f"{len(missing)} hash(es) missing from the index, "
                f"{len(extra)} extra"
            )
        for content_hash, entry in mine.items():
            other = theirs[content_hash]
            if entry.stamp != other.stamp:
                raise ConfigurationError(
                    f"store index winner for {content_hash[:12]} has stamp "
                    f"{entry.stamp}, JSONL scan says {other.stamp}"
                )
            if (entry.shard, entry.offset) != (other.shard, other.offset):
                if self._load(entry).to_dict() != self._load(other).to_dict():
                    raise ConfigurationError(
                        f"store index winner for {content_hash[:12]} at "
                        f"{entry.shard}:{entry.offset} differs from JSONL "
                        f"scan winner at {other.shard}:{other.offset}"
                    )
        return len(mine)

    def rebuild_index(self) -> int:
        """Drop the derived index and re-derive it from the shard files."""
        with self._lock:
            self._index.rebuild(self.root)
            self._frontier = self._index.frontier()
            return self._index.count(self._frontier)

    def compact(self) -> int:
        """Rewrite every shard in place, keeping only winning lines.

        ``put(replace=True)`` leaves the superseded line on disk, racing
        writers duplicate identical payloads, and fenced-off torn tails
        linger as garbage bytes — an archive under churn only ever
        grows.  Compaction drops all of that: each shard is rewritten
        (atomic tmp + fsync + rename) to hold exactly the bytes of its
        winning lines, a shard left with no winners is deleted, and the
        secondary index is rebuilt from the rewritten files.  The
        surviving lines are byte-identical to the winners they were, so
        :meth:`digest` is unchanged by construction.  Returns the number
        of shard bytes reclaimed.

        This is a maintenance operation for a quiescent store: it holds
        this process's shard locks throughout but cannot stop *other
        processes* from appending mid-rewrite — run it when no writers
        are live.  Snapshots taken before a compaction fail loudly
        afterwards instead of serving records from relocated offsets.
        """
        with self._lock:
            self._index.tail(self.root)
            by_shard: Dict[str, List[LineEntry]] = {}
            for entry in self._index.winners(None):
                by_shard.setdefault(entry.shard, []).append(entry)
            reclaimed = 0
            for path in sorted(self.root.glob("shard-*.jsonl")):
                with _shard_lock(path):
                    size = path.stat().st_size
                    keep = sorted(
                        by_shard.get(path.name, ()), key=lambda e: e.offset
                    )
                    lines: List[bytes] = []
                    with path.open("rb") as handle:
                        for entry in keep:
                            handle.seek(entry.offset)
                            raw = handle.read(entry.length)
                            # The index said these bytes are a committed
                            # record; verify before destroying anything.
                            try:
                                payload = json.loads(raw)
                            except ValueError:
                                payload = None
                            if (
                                not isinstance(payload, dict)
                                or payload.get("content_hash")
                                != entry.content_hash
                            ):
                                raise ConfigurationError(
                                    f"compact aborted: {path.name} bytes at "
                                    f"{entry.offset} do not round-trip to "
                                    f"record {entry.content_hash[:12]} "
                                    f"(index stale or shard rewritten?); "
                                    f"no shard was modified beyond this point"
                                )
                            lines.append(raw)
                    if not lines:
                        os.unlink(path)
                        reclaimed += size
                        continue
                    rewritten = b"".join(line + b"\n" for line in lines)
                    reclaimed += size - len(rewritten)
                    tmp = path.with_name(path.name + ".tmp")
                    fd = os.open(
                        tmp, os.O_WRONLY | os.O_CREAT | os.O_TRUNC, 0o644
                    )
                    try:
                        os.write(fd, rewritten)
                        os.fsync(fd)
                    finally:
                        os.close(fd)
                    os.replace(tmp, path)
            self._index.rebuild(self.root)
            self._frontier = self._index.frontier()
            self.generation += 1
            return reclaimed

    def close(self) -> None:
        """Release the index backend (open snapshots become invalid)."""
        self._index.close()

    # -- writing -------------------------------------------------------------

    def _own_shard(self) -> Path:
        return self.root / f"shard-{os.getpid()}.jsonl"

    def put(self, record: RunRecord, *, replace: bool = False) -> bool:
        """Archive ``record``; return False when the hash is already stored.

        The write is one ``O_APPEND`` call to this process's own shard,
        so concurrent writers (other pids, other shards) can never
        interleave with it.  ``replace=True`` appends anyway and the
        newer copy wins lookups (the old line stays on disk — the store
        is append-only).  The secondary index is updated in the same
        shard-locked section, transactionally for the SQLite backend.
        """
        if not isinstance(record, RunRecord):
            raise ConfigurationError(
                f"put() expects a RunRecord, got {type(record).__name__}"
            )
        path = self._own_shard()
        shard = path.name
        with self._lock, _shard_lock(path):
            if path.exists():
                # Index anything appended to our shard since the last
                # scan (e.g. by another same-pid RunStore handle, or a
                # dead predecessor that reused this pid) before deciding
                # about duplicates — never silently skip committed bytes.
                self._index.tail(self.root, only=shard)
                frontier = dict(self._frontier)
                frontier[shard] = max(
                    frontier.get(shard, 0),
                    self._index.frontier().get(shard, 0),
                )
                self._frontier = frontier
            if not replace and self._winner(record.content_hash) is not None:
                return False
            payload = record.to_dict()
            # Envelope-only write stamp: orders duplicate hashes across
            # shards at lookup time.  RunRecord.from_dict ignores it, so
            # loaded records compare equal to the ones that were put.
            # A replacement must outrank whatever it replaces even if
            # the wall clock stepped backwards (NTP, skewed peers), so
            # never stamp at or below the record being superseded —
            # checked against the *global* winner, not just this
            # handle's view, so replacements survive reopen.
            existing = self._index.winner(record.content_hash, None)
            stamp = time.time_ns()
            if existing is not None and stamp <= existing.stamp:
                stamp = existing.stamp + 1
            payload["_ts"] = stamp
            line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            encoded = line.encode("utf-8") + b"\n"
            gap_start = self._index.frontier().get(shard, 0)
            fd = os.open(
                path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                offset = os.fstat(fd).st_size
                if offset > gap_start:
                    # Unscanned bytes remain: a torn tail the tail scan
                    # above stopped at, or an append that raced in
                    # since.  Start our record on a fresh line either
                    # way.
                    os.write(fd, b"\n")
                    offset += 1
                os.write(fd, encoded)
            finally:
                os.close(fd)
            # Only advance the *index* frontier when our line is
            # contiguous with it; over a gap, leave it behind so the
            # next tail re-walks the gap — it is newline-terminated
            # now, so valid records in it get indexed and garbage is
            # counted and skipped; re-indexing our own line is
            # idempotent (unique shard+offset).
            end = offset + len(encoded)
            advance = end if offset == gap_start else None
            self._index.add_line(
                shard, offset, len(encoded) - 1, payload, advance_to=advance
            )
            frontier = dict(self._frontier)
            frontier[shard] = max(frontier.get(shard, 0), end)
            self._frontier = frontier
            return True

    def describe(self) -> str:
        return (
            f"RunStore({self.root}): {len(self)} records "
            f"in {len(self._frontier)} shard(s)"
        )
