"""Append-only JSONL shard store for :class:`~repro.store.records.RunRecord`.

Layout: a directory of ``shard-<pid>.jsonl`` files, one JSON record per
line.  Every writer process appends **only to its own shard** (named by
its pid), each record is written with a single ``O_APPEND`` ``write``
call, and shards are never rewritten — three properties that together
make the store safe under the multiprocessing sweep pool without any
cross-process locking:

* two processes never interleave bytes inside one file,
* a single append either lands whole or (if the writer is killed
  mid-call) leaves a torn *tail* that the next scan detects and skips —
  committed records are never damaged,
* readers can :meth:`RunStore.refresh` at any time and see exactly the
  records whose writes completed.

The in-memory index maps ``content_hash`` to the shard/offset of the
record plus the small query fields (algorithm, scheduler, n, k,
uniform), so :meth:`RunStore.query` filters millions of records without
parsing them and :meth:`RunStore.get` reads exactly one line.  If the
same hash appears twice the line with the newest write stamp wins, scan
order breaking ties (that is what makes ``put(replace=True)`` durable
across reopen, whichever shard the replacement landed in); racing
writers only ever duplicate identical payloads — runs are deterministic
functions of their spec — so for them the choice is immaterial.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Union

from repro.errors import ConfigurationError
from repro.store.records import RunRecord

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.store.campaigns import CampaignLedger, QuarantineArchive
    from repro.store.failures import FailureArchive

__all__ = ["RunStore"]

_SHARD_GLOB = "shard-*.jsonl"

#: Process-wide locks, one per shard file: several RunStore handles in
#: one process share the pid shard, so the fstat-offset/append/index
#: sequence in put() must serialise across handles, not just within one.
_SHARD_LOCKS: Dict[str, threading.Lock] = {}
_SHARD_LOCKS_GUARD = threading.Lock()


def _shard_lock(path: Path) -> threading.Lock:
    key = os.path.realpath(path)
    with _SHARD_LOCKS_GUARD:
        return _SHARD_LOCKS.setdefault(key, threading.Lock())


@dataclass
class _IndexEntry:
    """Where one record lives plus its cheap query fields."""

    path: Path
    offset: int
    length: int
    algorithm: str
    scheduler: str
    ring_size: int
    agent_count: int
    uniform: bool
    order: int  # position in deterministic scan order
    stamp: int  # wall-clock write stamp (envelope "_ts"), 0 if absent


class RunStore:
    """A content-addressed, append-only archive of experiment runs.

    ``RunStore(directory)`` opens (creating if needed) a store rooted at
    ``directory``.  The API is deliberately small:

    * :meth:`put` — archive a record (no-op on duplicate hashes),
    * :meth:`get` / :meth:`contains` / ``hash in store`` — lookup,
    * :meth:`query` — filtered iteration without full parsing,
    * :meth:`iter_records` — everything, in deterministic scan order,
    * :meth:`refresh` — pick up records other processes appended since
      the last scan.
    """

    def __init__(self, root: Union[str, Path], *, create: bool = True) -> None:
        self.root = Path(root)
        if not self.root.exists():
            if not create:
                raise ConfigurationError(f"run store {self.root} does not exist")
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise ConfigurationError(
                f"run store path {self.root} is not a directory"
            )
        self._index: Dict[str, _IndexEntry] = {}
        self._scanned: Dict[Path, int] = {}  # shard -> bytes consumed
        self._order = 0
        self._torn_tails = 0
        self._corrupt_lines = 0
        self._lock = threading.Lock()
        self.refresh()

    # -- scanning ------------------------------------------------------------

    def _scan_shard(self, path: Path) -> None:
        """Index records appended to ``path`` since the last scan."""
        start = self._scanned.get(path, 0)
        size = path.stat().st_size
        if size <= start:
            return
        with path.open("rb") as handle:
            handle.seek(start)
            data = handle.read(size - start)
        pos = 0
        while pos < len(data):
            newline = data.find(b"\n", pos)
            if newline == -1:
                # Torn tail: a writer died mid-append (or is still
                # appending).  Leave it unconsumed; a later refresh
                # picks the record up whole once the line terminates.
                self._torn_tails += 1
                break
            raw = data[pos:newline]
            if raw:
                try:
                    payload = json.loads(raw)
                except json.JSONDecodeError:
                    # A torn tail that a later writer newline-terminated
                    # (see put()).  Committed records are never affected;
                    # count it and move on rather than wedging readers.
                    self._corrupt_lines += 1
                    payload = None
                if payload is not None:
                    self._index_line(path, start + pos, len(raw), payload)
            pos = newline + 1
        self._scanned[path] = start + pos

    def _index_line(
        self, path: Path, offset: int, length: int, payload: Dict[str, object]
    ) -> None:
        if not isinstance(payload, dict) or "content_hash" not in payload:
            raise ConfigurationError(
                f"corrupt run store: {path.name} record at byte {offset} "
                f"has no content_hash"
            )
        content_hash = payload["content_hash"]
        existing = self._index.get(content_hash)
        # The *latest write* supersedes earlier ones, so put(replace=True)
        # survives reopen even when the replacement landed in a different
        # pid's shard: put() stamps each line with a wall-clock "_ts"
        # envelope key, and shard scan order breaks ties.  Racing writers
        # only ever duplicate identical payloads (runs are deterministic
        # functions of their spec), so ties are immaterial.  The hash
        # keeps its first-seen position so iteration order is stable.
        stamp = int(payload.get("_ts", 0))
        if existing is not None and stamp < existing.stamp:
            return
        order = existing.order if existing is not None else self._order
        result = payload.get("result") or {}
        spec = payload.get("spec") or {}
        scheduler = (
            spec.get("scheduler", {}).get("spec")
            if isinstance(spec.get("scheduler"), dict)
            else None
        ) or str(result.get("scheduler", ""))
        report = result.get("report") or {}
        self._index[content_hash] = _IndexEntry(
            path=path,
            offset=offset,
            length=length,
            algorithm=str(result.get("algorithm", "")),
            scheduler=scheduler,
            ring_size=int(result.get("ring_size", 0)),
            agent_count=len(result.get("homes", ())),
            uniform=bool(report.get("ok", False)),
            order=order,
            stamp=stamp,
        )
        if existing is None:
            self._order += 1

    def refresh(self) -> int:
        """Rescan shards; return how many *new* records were indexed."""
        with self._lock:
            before = len(self._index)
            for path in sorted(self.root.glob(_SHARD_GLOB)):
                self._scan_shard(path)
            return len(self._index) - before

    # -- writing -------------------------------------------------------------

    def _own_shard(self) -> Path:
        return self.root / f"shard-{os.getpid()}.jsonl"

    def put(self, record: RunRecord, *, replace: bool = False) -> bool:
        """Archive ``record``; return False when the hash is already stored.

        The write is one ``O_APPEND`` call to this process's own shard,
        so concurrent writers (other pids, other shards) can never
        interleave with it.  ``replace=True`` appends anyway and points
        the index at the newer copy (the old line stays on disk — the
        store is append-only).
        """
        if not isinstance(record, RunRecord):
            raise ConfigurationError(
                f"put() expects a RunRecord, got {type(record).__name__}"
            )
        path = self._own_shard()
        with self._lock, _shard_lock(path):
            if path.exists():
                # Index anything appended to our shard since the last
                # scan (e.g. by another same-pid RunStore handle, or a
                # dead predecessor that reused this pid) before deciding
                # about duplicates — never silently skip committed bytes.
                self._scan_shard(path)
            if record.content_hash in self._index and not replace:
                return False
            payload = record.to_dict()
            # Envelope-only write stamp: orders duplicate hashes across
            # shards at scan time.  RunRecord.from_dict ignores it, so
            # loaded records compare equal to the ones that were put.
            # A replacement must outrank whatever it replaces even if
            # the wall clock stepped backwards (NTP, skewed peers), so
            # never stamp at or below the record being superseded.
            existing = self._index.get(record.content_hash)
            stamp = time.time_ns()
            if existing is not None and stamp <= existing.stamp:
                stamp = existing.stamp + 1
            payload["_ts"] = stamp
            line = json.dumps(payload, sort_keys=True, separators=(",", ":"))
            encoded = line.encode("utf-8") + b"\n"
            fd = os.open(
                path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644
            )
            try:
                offset = os.fstat(fd).st_size
                gap_start = self._scanned.get(path, 0)
                if offset > gap_start:
                    # Unscanned bytes remain: a torn tail the scan above
                    # stopped at, or an append that raced in since.
                    # Start our record on a fresh line either way.
                    os.write(fd, b"\n")
                    offset += 1
                os.write(fd, encoded)
            finally:
                os.close(fd)
            if offset == gap_start:
                self._scanned[path] = offset + len(encoded)
            # else: leave _scanned at the gap so the next scan re-walks
            # it — the gap is newline-terminated now, so valid records
            # in it get indexed and garbage is counted and skipped;
            # re-parsing our own line is idempotent (same write stamp).
            self._index_line(path, offset, len(encoded) - 1, payload)
            return True

    # -- reading -------------------------------------------------------------

    def _load(self, entry: _IndexEntry) -> RunRecord:
        with entry.path.open("rb") as handle:
            handle.seek(entry.offset)
            raw = handle.read(entry.length)
        return RunRecord.from_dict(json.loads(raw))

    def _load_many(self, entries: List[_IndexEntry]) -> List[RunRecord]:
        """Load records with one file open per shard, not per record.

        Bulk readers (:meth:`iter_records`, :meth:`query`) would
        otherwise pay an open/seek/close cycle for every record; here
        each shard is opened once and its matches are read in offset
        order.  The returned list preserves the order of ``entries``.
        """
        raw: Dict[int, bytes] = {}
        by_path: Dict[Path, List[_IndexEntry]] = {}
        for entry in entries:
            by_path.setdefault(entry.path, []).append(entry)
        for path, group in by_path.items():
            with path.open("rb") as handle:
                for entry in sorted(group, key=lambda e: e.offset):
                    handle.seek(entry.offset)
                    raw[id(entry)] = handle.read(entry.length)
        return [
            RunRecord.from_dict(json.loads(raw[id(entry)])) for entry in entries
        ]

    def get(self, content_hash: str) -> RunRecord:
        """The archived record for ``content_hash`` (KeyError when absent)."""
        entry = self._index.get(content_hash)
        if entry is None:
            raise KeyError(content_hash)
        return self._load(entry)

    def get_many(self, content_hashes: List[str]) -> List[RunRecord]:
        """The records for ``content_hashes``, in the given order.

        Bulk counterpart of :meth:`get` for hot resume paths: shards
        are opened once each instead of once per record.  Raises
        ``KeyError`` on the first absent hash.
        """
        entries = []
        for content_hash in content_hashes:
            entry = self._index.get(content_hash)
            if entry is None:
                raise KeyError(content_hash)
            entries.append(entry)
        return self._load_many(entries)

    def contains(self, content_hash: str) -> bool:
        return content_hash in self._index

    __contains__ = contains

    def resolve_prefix(self, prefix: str) -> List[str]:
        """All stored hashes starting with ``prefix``, sorted.

        The abbreviated-hash helper behind ``repro query --hash``: a
        prefix can legitimately match several records, and callers that
        need exactly one (or want to report ambiguity clearly) resolve
        it here first instead of picking an arbitrary match.
        """
        return sorted(h for h in self._index if h.startswith(prefix))

    @property
    def failures(self) -> "FailureArchive":
        """The store's failure-artifact archive (``<root>/failures/``).

        Fuzzer-found violations live here as one JSON artifact per
        triggering-spec content hash; see
        :class:`repro.store.failures.FailureArchive`.
        """
        from repro.store.failures import FailureArchive

        return FailureArchive(self.root / "failures")

    @property
    def quarantine(self) -> "QuarantineArchive":
        """The store's quarantined-unit archive (``<root>/quarantine/``).

        Campaign work units that exhausted their retry budget land here
        as poison artifacts; see
        :class:`repro.store.campaigns.QuarantineArchive`.
        """
        from repro.store.campaigns import QuarantineArchive

        return QuarantineArchive(self.root / "quarantine")

    def campaign_ledger(self, work_hash: str) -> "CampaignLedger":
        """The lease-event journal of one campaign (``<root>/campaign/``)."""
        from repro.store.campaigns import CampaignLedger

        return CampaignLedger(self.root / "campaign", work_hash)

    def digest(self) -> str:
        """A stable SHA-256 over the store's *logical* record contents.

        Hashes every record's canonical ``to_dict()`` JSON (which
        excludes the ``_ts`` write-stamp envelope), sorted by content
        hash — so two stores hold the same digest exactly when they
        archived the same set of records, regardless of shard pid
        names, write order, duplicate appends or wall-clock stamps.
        This is the equality the chaos harness asserts: a
        fault-disturbed campaign's store must digest identically to an
        undisturbed serial run's.
        """
        hasher = hashlib.sha256()
        for content_hash in sorted(self._index):
            record = self._load(self._index[content_hash])
            canonical = json.dumps(
                record.to_dict(), sort_keys=True, separators=(",", ":")
            )
            hasher.update(canonical.encode("utf-8"))
            hasher.update(b"\n")
        return hasher.hexdigest()

    def __len__(self) -> int:
        return len(self._index)

    def hashes(self) -> List[str]:
        """All stored content hashes in deterministic scan order."""
        return sorted(self._index, key=lambda h: self._index[h].order)

    def iter_records(self) -> Iterator[RunRecord]:
        """Every stored record, in deterministic scan order."""
        yield from self.query()

    def query(
        self,
        *,
        algorithm: Optional[str] = None,
        scheduler: Optional[str] = None,
        ring_size: Optional[int] = None,
        agent_count: Optional[int] = None,
        uniform: Optional[bool] = None,
        hash_prefix: Optional[str] = None,
    ) -> Iterator[RunRecord]:
        """Records matching every given filter, in scan order.

        Filtering runs on the in-memory index; only matching records are
        parsed from disk.  ``scheduler`` matches the producing spec's
        canonical scheduler spec string (falling back to the scheduler
        description for specless records); ``hash_prefix`` matches the
        start of the content hash, so ``repro query --hash ab12`` works
        like git's abbreviated object names.
        """
        matched = []
        for content_hash in self.hashes():
            entry = self._index[content_hash]
            if algorithm is not None and entry.algorithm != algorithm:
                continue
            if scheduler is not None and entry.scheduler != scheduler:
                continue
            if ring_size is not None and entry.ring_size != ring_size:
                continue
            if agent_count is not None and entry.agent_count != agent_count:
                continue
            if uniform is not None and entry.uniform != uniform:
                continue
            if hash_prefix is not None and not content_hash.startswith(
                hash_prefix
            ):
                continue
            matched.append(entry)
        # Stream in chunks: scan order is preserved, memory stays
        # bounded by the chunk, and chunks still amortise file opens
        # (consecutive scan-order entries mostly share a shard).
        chunk = 1024
        for begin in range(0, len(matched), chunk):
            yield from self._load_many(matched[begin:begin + chunk])

    def describe(self) -> str:
        shards = len(self._scanned)
        return (
            f"RunStore({self.root}): {len(self._index)} records "
            f"in {shards} shard(s)"
        )
