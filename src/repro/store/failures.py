"""Failure artifacts inside a run store: ``<root>/failures/<hash>.json``.

The run store archives *successful* runs as JSONL records keyed by
spec content hash; fuzzer-found violations get the same
content-addressed treatment as standalone JSON artifacts, one file per
failure, keyed by the hash of the **triggering experiment spec** (the
``replay:log=...`` :class:`~repro.spec.ExperimentSpec` that reproduces
the violation — see :class:`repro.fuzz.failure.FailureCase`).

One artifact per file (not JSONL) because failures are rare, written
once, and read by humans and CI jobs that want to ``cat`` or upload
them individually.  Writes are atomic (temp file + ``os.replace``), so
a killed fuzzing campaign never leaves a torn artifact, and duplicate
puts of the same hash are idempotent.

The archive stores plain dicts: it has no opinion about the payload
beyond requiring a matching ``content_hash`` field, so the store layer
stays independent of the fuzzing layer.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, Iterator, List, Tuple, Union

from repro.errors import ConfigurationError

__all__ = ["FailureArchive"]


class FailureArchive:
    """A content-addressed directory of failure artifacts."""

    def __init__(self, root: Union[str, Path], *, create: bool = True) -> None:
        self.root = Path(root)
        if not self.root.exists():
            if not create:
                raise ConfigurationError(
                    f"failure archive {self.root} does not exist"
                )
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise ConfigurationError(
                f"failure archive path {self.root} is not a directory"
            )

    def _path(self, content_hash: str) -> Path:
        if not content_hash or any(c in content_hash for c in "/\\."):
            raise ConfigurationError(
                f"bad failure content hash {content_hash!r}"
            )
        return self.root / f"{content_hash}.json"

    # -- writing -------------------------------------------------------------

    def put(
        self,
        content_hash: str,
        payload: Dict[str, object],
        *,
        replace: bool = False,
    ) -> Path:
        """Archive ``payload`` under ``content_hash``; return the path.

        The payload must carry a matching ``content_hash`` field (the
        self-describing-artifact invariant).  Duplicate hashes are
        idempotent no-ops unless ``replace=True``.
        """
        if not isinstance(payload, dict):
            raise ConfigurationError(
                f"failure payload must be a dict, got {type(payload).__name__}"
            )
        if payload.get("content_hash") != content_hash:
            raise ConfigurationError(
                f"failure payload content_hash {payload.get('content_hash')!r} "
                f"does not match the archive key {content_hash!r}"
            )
        path = self._path(content_hash)
        if path.exists() and not replace:
            return path
        text = json.dumps(payload, indent=2, sort_keys=True)
        fd, tmp = tempfile.mkstemp(
            dir=self.root, prefix=".tmp-", suffix=".json"
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                handle.write(text + "\n")
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    # -- reading -------------------------------------------------------------

    def get(self, content_hash: str) -> Dict[str, object]:
        """The archived payload (``KeyError`` when absent)."""
        path = self._path(content_hash)
        if not path.exists():
            raise KeyError(content_hash)
        with path.open("r", encoding="utf-8") as handle:
            return json.load(handle)

    def hashes(self) -> List[str]:
        """All archived hashes, sorted."""
        return sorted(path.stem for path in self.root.glob("*.json"))

    def resolve(self, prefix: str) -> List[str]:
        """All archived hashes starting with ``prefix`` (sorted)."""
        return [h for h in self.hashes() if h.startswith(prefix)]

    def list(self) -> List[Dict[str, object]]:
        """Every archived payload, in sorted-hash order.

        The discovery API behind ``repro query --failures`` and the
        service's ``/v1/failures`` endpoint: callers get the artifacts
        themselves without globbing the store directory.
        """
        return [self.get(content_hash) for content_hash in self.hashes()]

    def __iter__(self) -> Iterator[Tuple[str, Dict[str, object]]]:
        """Iterate ``(content_hash, payload)`` pairs in sorted-hash order."""
        for content_hash in self.hashes():
            yield content_hash, self.get(content_hash)

    def __contains__(self, content_hash: str) -> bool:
        return self._path(content_hash).exists()

    def __len__(self) -> int:
        return len(self.hashes())

    def describe(self) -> str:
        return f"FailureArchive({self.root}): {len(self)} artifact(s)"
