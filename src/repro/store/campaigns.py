"""Campaign persistence beside the run archive: quarantine + ledger.

Two small durable structures keep a fault-tolerant campaign honest
across crashes of the *coordinator itself*:

* :class:`QuarantineArchive` — ``<store>/quarantine/<unit-hash>.json``,
  one atomic JSON artifact per work unit that exhausted its retry
  budget (the ``poison`` units).  Same layout and atomicity discipline
  as the fuzzer's :class:`~repro.store.failures.FailureArchive` —
  which it subclasses — because a quarantined unit *is* a failure
  artifact: rare, written once, uploaded by CI, read by humans.
* :class:`CampaignLedger` — ``<store>/campaign/<work-hash>.jsonl``, an
  append-only event journal (``issue`` / ``heartbeat-expire`` /
  ``complete`` / ``quarantine`` / ...) written with the same
  single-``O_APPEND``-write, torn-tail-tolerant discipline as the run
  shards.  Resume reads the ledger to skip completed units (the only
  completion record fuzz shards have — sweep cells are *also* covered
  by the run store's content hashes) and post-mortems replay a
  campaign's whole lease history from it.

Ledger events never carry results — results live in the run store and
the failure/quarantine archives; the ledger is pure protocol history.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Iterator, List, Set, Union

from repro.errors import ConfigurationError
from repro.store.failures import FailureArchive

__all__ = ["CampaignLedger", "QuarantineArchive"]


class QuarantineArchive(FailureArchive):
    """Content-addressed artifacts for units that exhausted their retries.

    The payload is the coordinator's full per-unit report (attempts,
    re-issues, expiry causes, the unit's own spec dict) under the
    unit's spec content hash, so ``repro run --spec`` /
    ``repro fuzz --spec`` can re-drive a quarantined unit by hand after
    the underlying wedge is fixed.
    """

    def describe(self) -> str:
        return f"QuarantineArchive({self.root}): {len(self)} unit(s)"


class CampaignLedger:
    """Append-only JSONL journal of one campaign's lease protocol.

    One ledger file per campaign *work hash*; every coordinator run
    over the same workload (first attempt, resumes, chaos re-runs)
    appends to the same journal.  Events are plain dicts with at least
    ``event`` and a wall-clock ``ts`` (informational only — protocol
    decisions always use the coordinator's monotonic clock).
    """

    def __init__(
        self, root: Union[str, Path], work_hash: str, *, create: bool = True
    ) -> None:
        if not work_hash or any(c in work_hash for c in "/\\."):
            raise ConfigurationError(f"bad campaign work hash {work_hash!r}")
        self.root = Path(root)
        self.work_hash = work_hash
        if not self.root.exists():
            if not create:
                raise ConfigurationError(
                    f"campaign ledger directory {self.root} does not exist"
                )
            self.root.mkdir(parents=True, exist_ok=True)
        elif not self.root.is_dir():
            raise ConfigurationError(
                f"campaign ledger path {self.root} is not a directory"
            )
        self.path = self.root / f"{work_hash}.jsonl"

    # -- writing -------------------------------------------------------------

    def append(self, event: str, **fields: object) -> Dict[str, object]:
        """Durably append one event; returns the record written.

        A single ``O_APPEND`` write per event (the run-shard rule): a
        coordinator killed mid-append leaves at most one torn tail,
        which :meth:`events` detects and skips.
        """
        if not event:
            raise ConfigurationError("ledger event name must be non-empty")
        record: Dict[str, object] = {"event": event, "ts": time.time()}
        record.update(fields)
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        encoded = line.encode("utf-8") + b"\n"
        fd = os.open(self.path, os.O_WRONLY | os.O_APPEND | os.O_CREAT, 0o644)
        try:
            os.write(fd, encoded)
        finally:
            os.close(fd)
        return record

    # -- reading -------------------------------------------------------------

    def events(self) -> Iterator[Dict[str, object]]:
        """Every committed event in append order (torn tails skipped)."""
        if not self.path.exists():
            return
        with self.path.open("rb") as handle:
            data = handle.read()
        for raw in data.split(b"\n"):
            if not raw:
                continue
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError:
                # Torn tail (coordinator killed mid-append) or a line a
                # later writer newline-terminated; committed events are
                # unaffected, so skip rather than wedge resumes.
                continue
            if isinstance(payload, dict) and "event" in payload:
                yield payload

    def completed_units(self) -> Set[str]:
        """Unit keys with a ``complete`` event (the resume skip-set)."""
        return {
            str(record["unit"])
            for record in self.events()
            if record["event"] == "complete" and "unit" in record
        }

    def quarantined_units(self) -> Set[str]:
        """Unit keys quarantined and not completed by a later resume."""
        quarantined: Set[str] = set()
        for record in self.events():
            unit = record.get("unit")
            if unit is None:
                continue
            if record["event"] == "quarantine":
                quarantined.add(str(unit))
            elif record["event"] == "complete":
                quarantined.discard(str(unit))
        return quarantined

    def history(self, unit_key: str) -> List[Dict[str, object]]:
        """Every event touching one unit, in append order."""
        return [
            record
            for record in self.events()
            if record.get("unit") == unit_key
        ]

    def describe(self) -> str:
        count = sum(1 for _ in self.events())
        return (
            f"CampaignLedger({self.path.name}): {count} event(s), "
            f"{len(self.completed_units())} unit(s) complete"
        )
