"""Omniscient minimal-move baseline (comparator for Theorem 1 / E5).

On a *unidirectional* ring an agent at home ``h`` assigned to target
``t`` must move exactly ``(t - h) mod n`` hops.  A global planner that
knows every home picks (a) the rotation of the uniform target pattern
and (b) the assignment of agents to targets minimising total moves.
Order-preserving (cyclic-shift) assignments are optimal for forward-only
costs on a circle, so the planner searches rotations x shifts.

This is not an algorithm in the paper's model (it needs global
knowledge); it is the yardstick the move benchmarks compare against:
the paper's algorithms are asymptotically optimal (O(kn) vs the
quarter-packed configuration's Omega(kn) floor), and this baseline
gives the exact per-instance floor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.verification import verify_positions
from repro.errors import ConfigurationError
from repro.ring.placement import Placement

__all__ = ["OptimalPlan", "optimal_uniform_plan", "quarter_bound"]


@dataclass(frozen=True)
class OptimalPlan:
    """The minimal-total-move plan to a uniform configuration."""

    total_moves: int
    rotation: int  # rotation of the canonical target pattern
    targets: Tuple[int, ...]  # targets in home order (targets[i] for homes[i])

    def per_agent_moves(self, homes: Sequence[int], ring_size: int) -> List[int]:
        """Forward distance each agent travels under the plan."""
        return [
            (target - home) % ring_size
            for home, target in zip(homes, self.targets)
        ]


def _canonical_targets(ring_size: int, agent_count: int) -> List[int]:
    """The canonical uniform pattern ``floor(i * n / k)``."""
    return [index * ring_size // agent_count for index in range(agent_count)]


def optimal_uniform_plan(placement: Placement) -> OptimalPlan:
    """Return the global minimum total forward moves to uniformity.

    Searches all ``n`` rotations of the canonical uniform pattern and,
    for each, all ``k`` cyclic assignment shifts (order-preserving
    assignments are optimal for forward-only matching on a circle).
    O(n k^2) time — fine at benchmark scales.
    """
    n = placement.ring_size
    k = placement.agent_count
    homes = list(placement.homes)
    base = _canonical_targets(n, k)
    best: Tuple[int, int, Tuple[int, ...]] = None  # (cost, rotation, targets)
    for rotation in range(n):
        targets = sorted((t + rotation) % n for t in base)
        for shift_amount in range(k):
            cost = 0
            assigned = []
            for index, home in enumerate(homes):
                target = targets[(index + shift_amount) % k]
                cost += (target - home) % n
                assigned.append(target)
            if best is None or cost < best[0]:
                best = (cost, rotation, tuple(assigned))
    cost, rotation, assigned = best
    report = verify_positions(sorted(assigned), n)
    if not report.ok:
        raise ConfigurationError(
            f"internal error: planned targets are not uniform: {report.describe()}"
        )
    return OptimalPlan(total_moves=cost, rotation=rotation, targets=assigned)


def quarter_bound(ring_size: int, agent_count: int) -> int:
    """Theorem 1's explicit floor ``(k/4) * (n/4)`` for quarter-packed configs."""
    return (agent_count // 4) * (ring_size // 4)
