"""Token-based rendezvous baseline (the paper's motivating contrast, E18).

The introduction contrasts uniform deployment (attaining symmetry,
solvable from *every* initial configuration) with rendezvous (breaking
symmetry, unsolvable from symmetric configurations).  This baseline
makes the contrast executable:

* each agent releases its token, travels one circuit (knowledge of k)
  and records the distance sequence ``D``;
* if ``D`` is aperiodic, the home of the agent with the minimal
  rotation is a unique global meeting point: everybody walks there —
  rendezvous succeeds;
* if ``D`` is periodic (symmetry degree ``l >= 2``), the minimal
  rotation is attained by ``l`` distinct homes; no deterministic
  anonymous algorithm can pick one (Section 1.3 and [16]), so the agent
  *detects* the symmetry and halts at home, reporting failure.

Tests pair this with the uniform-deployment algorithms on the same
periodic placements: deployment succeeds exactly where rendezvous
provably cannot.
"""

from __future__ import annotations

from repro.analysis.sequences import minimal_period, rotation_rank
from repro.errors import ConfigurationError
from repro.sim.actions import Action, NodeView
from repro.sim.agent import Agent, AgentProtocol

__all__ = ["RendezvousAgent"]


class RendezvousAgent(Agent):
    """Deterministic rendezvous-or-detect agent with knowledge of k."""

    def __init__(self, agent_count: int) -> None:
        super().__init__()
        if agent_count < 1:
            raise ConfigurationError(f"k must be >= 1, got {agent_count}")
        self.k = agent_count
        self.D = None
        self.j = None
        self.dis = None
        self.gathered = None  # True: reached the unique meeting point
        self.symmetric = None  # True: detected an unbreakable symmetry
        self.remaining = None
        self.declare("k", "j", "dis", "gathered", "symmetric", "remaining")
        self.declare_sequence("D")

    def protocol(self, first_view: NodeView) -> AgentProtocol:
        self.j = 0
        self.dis = 0
        self.D = []
        view = yield Action.move_forward(release_token=True)
        while True:
            self.dis += 1
            if view.tokens > 0:
                self.D.append(self.dis)
                self.dis = 0
                self.j += 1
                if self.j == self.k:
                    break
            view = yield Action.move_forward()
        if minimal_period(self.D) < self.k:
            # Symmetric configuration: rendezvous is unsolvable; detect
            # and stop at home (the honest behaviour of a deterministic
            # algorithm that must not run forever).
            self.symmetric = True
            self.gathered = False
            yield Action.halt_here()
            return
        self.symmetric = False
        self.remaining = sum(self.D[: rotation_rank(self.D)])
        while self.remaining > 0:
            self.remaining -= 1
            view = yield Action.move_forward()
        self.gathered = True
        yield Action.halt_here()
