"""Comparators: the omniscient move-optimal planner and rendezvous."""

from repro.baselines.optimal import OptimalPlan, optimal_uniform_plan, quarter_bound
from repro.baselines.rendezvous import RendezvousAgent

__all__ = ["OptimalPlan", "optimal_uniform_plan", "quarter_bound", "RendezvousAgent"]
