"""Empirical scaling checks for Table 1's O(.) claims (E1, E2, E4).

Benchmarks validate asymptotic claims with two tools:

* :func:`loglog_slope` — least-squares slope in log-log space; a
  measured quantity growing as ``Theta(x^a)`` yields slope ``~ a``.
* :func:`bound_ratio_spread` — ``measured / bound`` across a sweep; a
  correct O(bound) claim keeps the ratio bounded (spread close to the
  largest ratio, no upward drift).

Pure Python (math only) so the core library stays dependency-free.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = ["loglog_slope", "bound_ratio_spread", "ratios", "is_bounded_by"]


def loglog_slope(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Least-squares slope of ``log y`` against ``log x``.

    Requires at least two strictly positive points.  For measurements
    ``y = c * x^a`` (exactly), returns ``a``.
    """
    if len(xs) != len(ys):
        raise ConfigurationError("xs and ys must have equal length")
    points = [
        (math.log(x), math.log(y)) for x, y in zip(xs, ys) if x > 0 and y > 0
    ]
    if len(points) < 2:
        raise ConfigurationError("need at least two positive points for a slope")
    mean_x = sum(p[0] for p in points) / len(points)
    mean_y = sum(p[1] for p in points) / len(points)
    numerator = sum((x - mean_x) * (y - mean_y) for x, y in points)
    denominator = sum((x - mean_x) ** 2 for x, _ in points)
    if denominator == 0:
        raise ConfigurationError("all x values identical; slope undefined")
    return numerator / denominator


def ratios(
    measurements: Sequence[Tuple[float, float]],
    bound: Callable[[float], float],
) -> List[float]:
    """Return ``y / bound(x)`` for every measurement ``(x, y)``."""
    result = []
    for x, y in measurements:
        denominator = bound(x)
        if denominator <= 0:
            raise ConfigurationError(f"bound({x}) = {denominator} must be positive")
        result.append(y / denominator)
    return result


def bound_ratio_spread(
    measurements: Sequence[Tuple[float, float]],
    bound: Callable[[float], float],
) -> Tuple[float, float]:
    """Return ``(min ratio, max ratio)`` of measured over bound."""
    values = ratios(measurements, bound)
    return min(values), max(values)


def is_bounded_by(
    measurements: Sequence[Tuple[float, float]],
    bound: Callable[[float], float],
    constant: float,
) -> bool:
    """True when every measurement is within ``constant * bound(x)``."""
    return all(ratio <= constant for ratio in ratios(measurements, bound))
