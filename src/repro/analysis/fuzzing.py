"""Coverage-growth analysis of fuzzing campaigns.

A fuzzing campaign's health is legible from its coverage trajectory:
healthy campaigns grow canonical-state coverage roughly linearly while
the corpus keeps accepting novel prefixes; a *saturated* campaign has
stopped learning — more budget buys nothing, and the instance either
holds (at this fuzzing power) or needs a different placement or
mutation mix.  These helpers turn the history rows a
:class:`~repro.fuzz.fuzzer.ScheduleFuzzer` records (run counter,
cumulative actions, coverage counters, corpus size, failures) into the
table ``repro fuzz`` prints and a saturation verdict consumers can gate
on.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = [
    "coverage_growth_rows",
    "coverage_saturation",
    "describe_growth",
]


def coverage_growth_rows(
    history: Sequence[Dict[str, object]]
) -> List[Dict[str, object]]:
    """History snapshots as table rows with per-snapshot novelty deltas.

    ``new_states`` is the canonical-state coverage gained since the
    previous snapshot — the column to watch: a long tail of zeros means
    the campaign has saturated.
    """
    rows = []
    previous_states = 0
    for point in history:
        states = int(point["states"])
        rows.append(
            {
                "run": point["run"],
                "actions": point["steps"],
                "states": states,
                "new_states": states - previous_states,
                "patterns": point["patterns"],
                "corpus": point["corpus"],
                "failures": point["failures"],
            }
        )
        previous_states = states
    return rows


def coverage_saturation(
    history: Sequence[Dict[str, object]], *, window: float = 0.25
) -> float:
    """The fraction of total state coverage found in the trailing window.

    0.0 means the last ``window`` fraction of the campaign discovered
    nothing new (fully saturated); values near ``window`` mean coverage
    is still growing linearly.  Returns ``window`` (i.e. "still
    growing") when the history is too short to judge.
    """
    if len(history) < 3:
        return window
    total = int(history[-1]["states"])
    if total <= 0:
        return 0.0
    cut = max(0, len(history) - max(1, int(len(history) * window)) - 1)
    late_gain = total - int(history[cut]["states"])
    return late_gain / total


def describe_growth(history: Sequence[Dict[str, object]]) -> str:
    """One-line coverage verdict for CLI summaries."""
    if not history:
        return "coverage growth: (no history)"
    saturation = coverage_saturation(history)
    if saturation < 0.02:
        verdict = "saturated (more budget is unlikely to help)"
    elif saturation < 0.10:
        verdict = "slowing"
    else:
        verdict = "still growing"
    return (
        f"coverage growth: {int(history[-1]['states'])} states after "
        f"{history[-1]['run']} runs, trailing-window gain "
        f"{saturation:.0%} -> {verdict}"
    )
