"""ASCII charts for sweep results (no plotting dependency).

Benchmarks and the CLI print tables; for eyeballing trends a bar chart
is faster.  :func:`bar_chart` renders labelled horizontal bars scaled
to the largest value; :func:`scaling_chart` renders an (x, y) series
with per-point bars plus the fitted log-log slope, which is how the
Table 1 sweeps are summarised in terminal output.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.analysis.complexity import loglog_slope
from repro.errors import ConfigurationError

__all__ = ["bar_chart", "scaling_chart"]


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 50,
    unit: str = "",
) -> str:
    """Render horizontal bars, one per (label, value), scaled to width."""
    if len(labels) != len(values):
        raise ConfigurationError("labels and values must have equal length")
    if not values:
        return "(no data)"
    if any(value < 0 for value in values):
        raise ConfigurationError("bar chart values must be non-negative")
    peak = max(values) or 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(1 if value > 0 else 0, round(width * value / peak))
        suffix = f" {value:g}{unit}"
        lines.append(f"{str(label).rjust(label_width)} | {bar}{suffix}")
    return "\n".join(lines)


def scaling_chart(
    xs: Sequence[float],
    ys: Sequence[float],
    x_name: str = "x",
    y_name: str = "y",
    width: int = 50,
    expected_slope: Optional[float] = None,
) -> str:
    """Bar chart of a sweep plus its log-log slope annotation."""
    labels = [f"{x_name}={x:g}" for x in xs]
    body = bar_chart(labels, list(ys), width=width)
    slope = loglog_slope(xs, ys)
    footer = f"log-log slope of {y_name} vs {x_name}: {slope:.2f}"
    if expected_slope is not None:
        footer += f" (expected ~{expected_slope:g})"
    return f"{body}\n{footer}"
