"""Analysis toolkit: sequences, verification, invariants, coverage, viz."""

from repro.analysis.chart import bar_chart, scaling_chart
from repro.analysis.complexity import (
    bound_ratio_spread,
    is_bounded_by,
    loglog_slope,
    ratios,
)
from repro.analysis.coverage import (
    mean_service_gap,
    service_gaps,
    simulate_sweep,
    worst_service_gap,
)
from repro.analysis.invariants import InvariantReport, check_all
from repro.analysis.render import render_configuration, render_gaps, render_positions
from repro.analysis.timeline import Timeline, record_timeline

from repro.analysis.sequences import (
    configuration_distance_sequence,
    distances_from_positions,
    fourfold_prefix_period,
    is_fourfold_repetition,
    is_periodic,
    minimal_period,
    minimal_rotation,
    minimal_rotation_index,
    positions_from_distances,
    prefix_alignment_shift,
    rotation_rank,
    shift,
    symmetry_degree,
)
from repro.analysis.verification import (
    VerificationReport,
    allowed_gaps,
    require_uniform_deployment,
    verify_positions,
    verify_uniform_deployment,
)

__all__ = [
    "InvariantReport",
    "Timeline",
    "bar_chart",
    "bound_ratio_spread",
    "check_all",
    "configuration_distance_sequence",
    "is_bounded_by",
    "loglog_slope",
    "mean_service_gap",
    "ratios",
    "record_timeline",
    "render_configuration",
    "scaling_chart",
    "render_gaps",
    "render_positions",
    "service_gaps",
    "simulate_sweep",
    "worst_service_gap",
    "distances_from_positions",
    "fourfold_prefix_period",
    "is_fourfold_repetition",
    "is_periodic",
    "minimal_period",
    "minimal_rotation",
    "minimal_rotation_index",
    "positions_from_distances",
    "prefix_alignment_shift",
    "rotation_rank",
    "shift",
    "symmetry_degree",
    "VerificationReport",
    "allowed_gaps",
    "require_uniform_deployment",
    "verify_positions",
    "verify_uniform_deployment",
]
