"""Executable model invariants checked against execution traces.

DESIGN.md Section 5 lists the invariants the paper's proofs rely on.
This module turns them into trace predicates so property tests (and
suspicious users) can verify any run:

* **I1 FIFO link order** — for every node, the order of arrivals
  equals the order of entries into the incoming link (a MOVE at the
  predecessor node, or the initial home buffer).  This is exactly the
  model's no-overtaking guarantee: an agent can pass a *staying* agent
  (patrollers pass suspended sleepers; actives lap parked followers)
  but never reorders inside a queue (see :func:`check_fifo_order`).
* **I2 Token monotonicity** — token counts never decrease, and exactly
  one token release per agent.
* **I3 Single placement** — an agent settles at most once per arrival
  and is never in two places (enforced structurally by the Ring; the
  trace check validates arrive/settle/move pairing).
* **I4 Terminal stability** — after an agent's HALT event it never
  appears in the trace again.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder

__all__ = [
    "InvariantReport",
    "check_fifo_order",
    "check_token_events",
    "check_action_pairing",
    "check_halt_stability",
    "check_all",
]


@dataclass
class InvariantReport:
    """Outcome of the invariant checks over one trace."""

    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    def add(self, message: str) -> None:
        self.violations.append(message)

    def describe(self) -> str:
        if self.ok:
            return "all invariants hold"
        return "; ".join(self.violations)


def check_fifo_order(
    trace: TraceRecorder,
    report: InvariantReport,
    ring_size: int,
    homes: Tuple[int, ...],
) -> None:
    """I1: per-node arrival order equals incoming-link entry order.

    The queue into node ``v`` is fed by MOVE events at node ``v-1``
    (and, at time zero, by the initial home buffers).  A legal run
    dequeues strictly in entry order, so the ARRIVE sequence at ``v``
    must be a prefix of the entry sequence (a proper prefix only when
    agents are still queued at the end of the trace).
    """
    entries: Dict[int, List[int]] = {node: [] for node in range(ring_size)}
    for agent_id, home in enumerate(homes):
        entries[home].append(agent_id)  # the paper's initial buffers
    arrivals: Dict[int, List[int]] = {node: [] for node in range(ring_size)}
    for event in trace.events:
        if event.kind is TraceEventKind.MOVE:
            entries[(event.node + 1) % ring_size].append(event.agent_id)
        elif event.kind is TraceEventKind.ARRIVE:
            arrivals[event.node].append(event.agent_id)
    for node in range(ring_size):
        entered = entries[node]
        arrived = arrivals[node]
        if arrived != entered[: len(arrived)]:
            report.add(
                f"node {node}: arrival order {arrived[:8]}... diverges from "
                f"link entry order {entered[:8]}... (queue reorder)"
            )


def check_token_events(
    trace: TraceRecorder, report: InvariantReport, agent_count: int
) -> None:
    """I2: exactly one token release per agent, at its first node."""
    releases = trace.of_kind(TraceEventKind.TOKEN)
    by_agent: Dict[int, int] = {}
    for event in releases:
        by_agent[event.agent_id] = by_agent.get(event.agent_id, 0) + 1
    for agent, count in by_agent.items():
        if count != 1:
            report.add(f"agent {agent} released {count} tokens")
    if len(by_agent) != agent_count:
        report.add(
            f"{len(by_agent)}/{agent_count} agents released a token"
        )


def check_action_pairing(trace: TraceRecorder, report: InvariantReport) -> None:
    """I3: every arrival is followed by exactly one MOVE or SETTLE."""
    pending: Dict[int, TraceEvent] = {}
    for event in trace.events:
        if event.kind in (TraceEventKind.ARRIVE, TraceEventKind.ACT_IN_PLACE):
            if event.agent_id in pending:
                report.add(
                    f"agent {event.agent_id} activated twice without "
                    f"resolving its previous action (step {event.step})"
                )
            pending[event.agent_id] = event
        elif event.kind in (TraceEventKind.MOVE, TraceEventKind.SETTLE):
            started = pending.pop(event.agent_id, None)
            if started is None:
                report.add(
                    f"agent {event.agent_id} moved/settled without an "
                    f"activation (step {event.step})"
                )
            elif started.node != event.node:
                report.add(
                    f"agent {event.agent_id} activated at node "
                    f"{started.node} but resolved at node {event.node}"
                )
    for agent, event in pending.items():
        report.add(
            f"agent {agent} has an unresolved activation at step {event.step}"
        )


def check_halt_stability(trace: TraceRecorder, report: InvariantReport) -> None:
    """I4: no event for an agent after its HALT event."""
    halted_at: Dict[int, int] = {}
    for event in trace.events:
        if event.agent_id in halted_at and event.step > halted_at[event.agent_id]:
            report.add(
                f"agent {event.agent_id} acted at step {event.step} after "
                f"halting at step {halted_at[event.agent_id]}"
            )
        if event.kind is TraceEventKind.HALT:
            halted_at[event.agent_id] = event.step


def check_all(
    trace: TraceRecorder, ring_size: int, homes: Tuple[int, ...]
) -> InvariantReport:
    """Run every invariant check; a full (unfiltered) trace is required."""
    report = InvariantReport()
    check_fifo_order(trace, report, ring_size, homes)
    check_token_events(trace, report, len(homes))
    check_action_pairing(trace, report)
    check_halt_stability(trace, report)
    return report
