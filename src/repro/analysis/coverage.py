"""Service-coverage metrics: what uniform deployment buys (paper §1.1).

The paper motivates uniform deployment through network management:
agents providing a service (updates, health checks) should visit every
node at short intervals.  This module quantifies that benefit:

* :func:`service_gaps` — per-node distance to the nearest upstream
  agent (the wait until the next service visit if agents sweep
  forward at unit speed),
* :func:`worst_service_gap` / :func:`mean_service_gap` — the headline
  quality-of-service numbers before and after deployment,
* :func:`simulate_sweep` — an explicit patrol simulation: all agents
  sweep forward for ``rounds`` steps; returns per-node visit counts
  and the largest observed inter-visit interval, verifying the
  ceil(n/k) cadence bound that uniform deployment guarantees.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "service_gaps",
    "worst_service_gap",
    "mean_service_gap",
    "simulate_sweep",
]


def service_gaps(ring_size: int, agent_nodes: Sequence[int]) -> List[int]:
    """For each node, the forward distance from the nearest agent behind.

    This is the time until the node's next visit when all agents sweep
    forward at unit speed: a node hosting an agent has gap 0, the node
    after it gap 1, etc.
    """
    if not agent_nodes:
        raise ConfigurationError("coverage of zero agents is undefined")
    occupied = sorted(set(node % ring_size for node in agent_nodes))
    gaps = [0] * ring_size
    for node in range(ring_size):
        # distance from the closest agent at or before `node` (cyclically)
        best = min((node - agent) % ring_size for agent in occupied)
        gaps[node] = best
    return gaps


def worst_service_gap(ring_size: int, agent_nodes: Sequence[int]) -> int:
    """The worst-served node's wait (max over :func:`service_gaps`)."""
    return max(service_gaps(ring_size, agent_nodes))


def mean_service_gap(ring_size: int, agent_nodes: Sequence[int]) -> float:
    """The average node's wait."""
    gaps = service_gaps(ring_size, agent_nodes)
    return sum(gaps) / len(gaps)


def simulate_sweep(
    ring_size: int, agent_nodes: Sequence[int], rounds: int
) -> Tuple[Dict[int, int], int]:
    """Sweep all agents forward for ``rounds`` unit steps.

    Returns ``(visits per node, max inter-visit interval observed)``.
    From a uniform configuration the max interval is exactly
    ``ceil(n/k)`` once the sweep is warmed up.
    """
    if rounds < 0:
        raise ConfigurationError(f"rounds must be non-negative, got {rounds}")
    positions = [node % ring_size for node in agent_nodes]
    visits: Dict[int, int] = {node: 0 for node in range(ring_size)}
    last_visit: Dict[int, int] = {}
    max_interval = 0
    for position in positions:
        visits[position] += 1
        last_visit[position] = 0
    for step in range(1, rounds + 1):
        positions = [(position + 1) % ring_size for position in positions]
        for position in positions:
            visits[position] += 1
            if position in last_visit:
                max_interval = max(max_interval, step - last_visit[position])
            last_visit[position] = step
    return visits, max_interval
