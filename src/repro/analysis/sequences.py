"""Distance-sequence toolkit (paper Sections 2.1, 3.1 and 4.2).

The paper reasons about initial configurations through their *distance
sequences*: for agents ``a_0 .. a_{k-1}`` in ring order, the sequence
``D_i = (d_0, ..., d_{k-1})`` lists the gap from each agent's home node to
the next agent's home node, starting at ``a_i``.  Three notions built on
top of distance sequences drive all three algorithms:

* the **lexicographically minimal rotation** (Algorithm 1 and the
  deployment phase of Algorithms 4-6 select base nodes through it),
* the **minimal period** and the derived **symmetry degree** ``l``
  (Section 2.1 and Figure 1), and
* the **4-fold repetition test** of the estimating phase (Algorithm 4)
  together with the Lemma-2 prefix property used in its analysis.

All functions are pure and operate on plain sequences of non-negative
integers, so they are reusable both inside agents (operating on the
distances an agent measured) and in offline analysis of configurations.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "shift",
    "minimal_rotation_index",
    "minimal_rotation",
    "rotation_rank",
    "minimal_period",
    "symmetry_degree",
    "is_periodic",
    "is_fourfold_repetition",
    "fourfold_prefix_period",
    "distances_from_positions",
    "positions_from_distances",
    "configuration_distance_sequence",
    "prefix_alignment_shift",
]


def shift(sequence: Sequence[int], amount: int) -> Tuple[int, ...]:
    """Return ``shift(D, x) = (d_x, ..., d_{k-1}, d_0, ..., d_{x-1})``.

    This is the paper's rotation operator (Section 2.1).  ``amount`` may be
    any integer; it is reduced modulo the sequence length.  Rotating the
    empty sequence returns the empty tuple.
    """
    items = tuple(sequence)
    if not items:
        return items
    amount %= len(items)
    return items[amount:] + items[:amount]


def minimal_rotation_index(sequence: Sequence[int]) -> int:
    """Return the smallest ``x`` with ``shift(D, x)`` lexicographically minimal.

    Implemented with Booth's algorithm, which runs in O(k) time and O(k)
    auxiliary space.  Ties (which occur exactly when the sequence is
    periodic) are broken toward the smallest index, matching the paper's
    ``rank = min{x >= 0 | shift(D, x) = Dmin}`` (Algorithm 1, line 14).
    """
    items = tuple(sequence)
    n = len(items)
    if n == 0:
        return 0
    doubled = items + items
    failure = [-1] * (2 * n)
    best = 0
    for index in range(1, 2 * n):
        symbol = doubled[index]
        candidate = failure[index - best - 1]
        while candidate != -1 and symbol != doubled[best + candidate + 1]:
            if symbol < doubled[best + candidate + 1]:
                best = index - candidate - 1
            candidate = failure[candidate]
        if symbol != doubled[best + candidate + 1]:
            if symbol < doubled[best]:
                best = index
            failure[index - best] = -1
        else:
            failure[index - best] = candidate + 1
    return best % n


def minimal_rotation(sequence: Sequence[int]) -> Tuple[int, ...]:
    """Return the lexicographically minimal rotation ``Dmin`` itself."""
    return shift(sequence, minimal_rotation_index(sequence))


def rotation_rank(sequence: Sequence[int]) -> int:
    """Return the paper's ``rank`` for an agent observing ``sequence``.

    ``rank`` is the minimal ``x`` such that ``shift(D, x)`` equals the
    minimal rotation (Algorithm 1, line 14; Algorithm 6, line 3).  It
    equals :func:`minimal_rotation_index` and is provided under the
    paper's name for readability at call sites.
    """
    return minimal_rotation_index(sequence)


def minimal_period(sequence: Sequence[int]) -> int:
    """Return the smallest ``p > 0`` with ``shift(D, p) == D``.

    For an aperiodic sequence this is ``len(sequence)``.  Computed with the
    Knuth-Morris-Pratt failure function in O(k): the candidate period is
    ``k - failure[k-1]`` and it is a true rotation period only when it
    divides ``k`` (standard border argument).
    """
    items = tuple(sequence)
    n = len(items)
    if n == 0:
        return 0
    failure = [0] * n
    length = 0
    for index in range(1, n):
        while length > 0 and items[index] != items[length]:
            length = failure[length - 1]
        if items[index] == items[length]:
            length += 1
        failure[index] = length
    candidate = n - failure[n - 1]
    if candidate != n and n % candidate == 0:
        return candidate
    return n


def is_periodic(sequence: Sequence[int]) -> bool:
    """Return ``True`` when ``shift(D, x) == D`` for some ``0 < x < k``."""
    items = tuple(sequence)
    return len(items) > 0 and minimal_period(items) < len(items)


def symmetry_degree(sequence: Sequence[int]) -> int:
    """Return the symmetry degree ``l = k / p`` of a distance sequence.

    ``p`` is the minimal period; ``l`` is the number of repetitions of the
    aperiodic fundamental block (Section 2.1 and Figure 1).  ``l == 1``
    for aperiodic sequences and ``l == k`` for the all-equal sequence of a
    uniformly deployed configuration.
    """
    items = tuple(sequence)
    if not items:
        raise ConfigurationError("symmetry degree of an empty sequence is undefined")
    return len(items) // minimal_period(items)


def is_fourfold_repetition(sequence: Sequence[int]) -> bool:
    """Return ``True`` when ``D == S^4`` for the length-``k/4`` prefix ``S``.

    This is the stopping rule of the estimating phase (Algorithm 4,
    line 7): the agent stops once the distances it observed so far consist
    of exactly four repetitions of their first quarter.
    """
    items = tuple(sequence)
    n = len(items)
    if n == 0 or n % 4 != 0:
        return False
    quarter = n // 4
    block = items[:quarter]
    return items == block * 4


def fourfold_prefix_period(sequence: Sequence[int]) -> Optional[int]:
    """Return the quarter length ``k'`` if ``sequence`` is a 4-fold repetition.

    Returns ``None`` otherwise.  The estimating phase uses this to read
    off its estimated agent count ``k' = j/4``.
    """
    if is_fourfold_repetition(sequence):
        return len(sequence) // 4
    return None


def distances_from_positions(positions: Sequence[int], ring_size: int) -> Tuple[int, ...]:
    """Return the distance sequence of agents sitting at ``positions``.

    ``positions`` are node indices on a ring of ``ring_size`` nodes; they
    are sorted into ring order first.  The ``i``-th entry is the forward
    gap from the ``i``-th occupied node to the next occupied node, so the
    entries are positive and sum to ``ring_size``.
    """
    if ring_size <= 0:
        raise ConfigurationError(f"ring size must be positive, got {ring_size}")
    if not positions:
        raise ConfigurationError("cannot derive distances from zero positions")
    ordered = sorted(position % ring_size for position in positions)
    if len(set(ordered)) != len(ordered):
        raise ConfigurationError(f"positions are not distinct: {sorted(positions)}")
    gaps = []
    for index, node in enumerate(ordered):
        nxt = ordered[(index + 1) % len(ordered)]
        gaps.append((nxt - node) % ring_size or ring_size)
    return tuple(gaps)


def positions_from_distances(
    distances: Sequence[int], start: int = 0, ring_size: Optional[int] = None
) -> List[int]:
    """Return node positions realising ``distances`` starting at ``start``.

    The inverse of :func:`distances_from_positions`.  When ``ring_size``
    is given the distances must sum to it; otherwise the sum defines the
    ring size implicitly.
    """
    total = sum(distances)
    if ring_size is None:
        ring_size = total
    if total != ring_size:
        raise ConfigurationError(
            f"distance sequence sums to {total}, expected ring size {ring_size}"
        )
    if any(distance <= 0 for distance in distances):
        raise ConfigurationError(f"distances must be positive: {tuple(distances)}")
    positions = []
    node = start % ring_size
    for distance in distances:
        positions.append(node)
        node = (node + distance) % ring_size
    return positions


def configuration_distance_sequence(
    positions: Sequence[int], ring_size: int
) -> Tuple[int, ...]:
    """Return ``D(C0)``: the lexicographically minimal agent distance sequence.

    Section 2.1 defines the distance sequence *of a configuration* as the
    minimum over all agents' distance sequences, i.e. the minimal rotation
    of any one agent's sequence.
    """
    return minimal_rotation(distances_from_positions(positions, ring_size))


def prefix_alignment_shift(
    own: Sequence[int],
    other_block: Sequence[int],
    distance_gap: int,
) -> Optional[int]:
    """Return the shift ``t`` aligning ``own`` inside the periodic ``other_block``.

    Used by the resume rule of Algorithm 6 (see ``repro.core.unknown``):
    the suspended agent checks that its own observed sequence appears in
    the sender's sequence shifted by ``t`` token nodes, where the prefix
    sum of the sender's first ``t`` distances equals the home-to-home
    distance ``distance_gap`` (taken modulo the sender's estimated ring
    size, the periodic extension of the literal paper condition).

    Returns the token shift ``t`` in ``[0, len(other_block))`` or ``None``
    when no alignment exists.
    """
    block = tuple(other_block)
    if not block:
        return None
    period_sum = sum(block)
    if period_sum <= 0:
        return None
    target = distance_gap % period_sum
    running = 0
    for candidate in range(len(block)):
        if running == target:
            if _matches_periodic(tuple(own), block, candidate):
                return candidate
        running += block[candidate]
    return None


def _matches_periodic(own: Tuple[int, ...], block: Tuple[int, ...], start: int) -> bool:
    """Check ``own[j] == block[(start + j) mod len(block)]`` for all ``j``."""
    length = len(block)
    for offset, value in enumerate(own):
        if value != block[(start + offset) % length]:
            return False
    return True
