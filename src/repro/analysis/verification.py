"""Uniform-deployment verification (paper Definitions 1 and 2).

The problem requires, at quiescence:

* all agents staying at distinct nodes,
* every link queue empty,
* no undelivered messages (Definition 2),
* every gap between adjacent agents equal to ``floor(n/k)`` or
  ``ceil(n/k)`` — and, implied, exactly ``n mod k`` gaps of the larger
  size so the gaps sum to ``n``.

:func:`verify_uniform_deployment` checks all of it against an engine (or
raw positions) and returns a :class:`VerificationReport`; ``strict=True``
callers can use :func:`require_uniform_deployment` to raise instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.sequences import distances_from_positions
from repro.errors import VerificationError

__all__ = [
    "VerificationReport",
    "allowed_gaps",
    "audit_configuration",
    "verify_positions",
    "verify_uniform_deployment",
    "require_uniform_deployment",
]


def audit_configuration(
    configuration: "repro.ring.configuration.Configuration",  # noqa: F821
) -> List[str]:
    """Structural integrity audit of one global snapshot.

    Checks the model's conservation laws on the raw 5-tuple — the
    properties every reachable configuration must satisfy regardless of
    algorithm:

    * every agent occupies exactly one place (one staying set, one link
      queue, one delay buffer, or — under link faults — the lost set;
      never two, never zero),
    * token counters and inbox sizes are non-negative,
    * ``inbox_sizes`` agrees with the full ``inboxes`` contents when the
      snapshot carries them,
    * under link faults: the lost set's size matches the spent loss
      budget (phantom queue/buffer entries are anonymous and occupy no
      agent slot).

    Returns a list of human-readable failure strings (empty when the
    snapshot is structurally sound).  Used by the model checker as a
    per-state safety property and by the stateful property tests.
    """
    failures: List[str] = []
    seen: dict = {}
    for node, agents in configuration.staying.items():
        for agent_id in agents:
            if agent_id in seen:
                failures.append(
                    f"agent {agent_id} at node {node} and {seen[agent_id]}"
                )
            seen[agent_id] = f"staying at {node}"
    for node, queue in configuration.queues.items():
        for agent_id in queue:
            if agent_id < 0:
                continue  # phantom duplicate: anonymous, not an agent
            if agent_id in seen:
                failures.append(
                    f"agent {agent_id} queued toward {node} and {seen[agent_id]}"
                )
            seen[agent_id] = f"queued toward {node}"
    if configuration.faults is not None:
        buffers, lost, _ordinal, loss_used, _dup_used = configuration.faults
        for node, buffer in enumerate(buffers):
            for payload, remaining in buffer:
                if payload < 0:
                    continue  # phantom duplicate
                if payload in seen:
                    failures.append(
                        f"agent {payload} buffered toward {node} "
                        f"and {seen[payload]}"
                    )
                seen[payload] = f"buffered toward {node}"
                if remaining < 0:
                    failures.append(
                        f"negative remaining delay for agent {payload}"
                    )
        for agent_id in lost:
            if agent_id in seen:
                failures.append(
                    f"agent {agent_id} lost in transit and {seen[agent_id]}"
                )
            seen[agent_id] = "lost in transit"
        if len(lost) != loss_used:
            failures.append(
                f"{len(lost)} agents lost but loss budget shows {loss_used} spent"
            )
    missing = sorted(set(configuration.agent_states) - set(seen))
    if missing:
        failures.append(f"agents {missing} are nowhere on the ring")
    unknown = sorted(set(seen) - set(configuration.agent_states))
    if unknown:
        failures.append(f"unknown agent ids {unknown} on the ring")
    if any(tokens < 0 for tokens in configuration.tokens):
        failures.append(f"negative token count in {configuration.tokens}")
    if any(size < 0 for size in configuration.inbox_sizes.values()):
        failures.append("negative inbox size")
    if configuration.inboxes is not None:
        for agent_id, inbox in configuration.inboxes.items():
            declared = configuration.inbox_sizes.get(agent_id, 0)
            if len(inbox) != declared:
                failures.append(
                    f"agent {agent_id}: inbox_sizes says {declared} but "
                    f"{len(inbox)} messages recorded"
                )
    return failures


@dataclass(frozen=True)
class VerificationReport:
    """Outcome of a uniform-deployment check."""

    ok: bool
    ring_size: int
    agent_count: int
    gaps: Tuple[int, ...]
    failures: Tuple[str, ...]

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        status = "UNIFORM" if self.ok else "NOT UNIFORM"
        detail = "; ".join(self.failures) if self.failures else "all checks passed"
        return (
            f"{status}: n={self.ring_size} k={self.agent_count} "
            f"gaps={self.gaps} ({detail})"
        )


def allowed_gaps(ring_size: int, agent_count: int) -> Tuple[int, int]:
    """Return ``(floor(n/k), ceil(n/k))``, the two legal adjacent gaps."""
    low = ring_size // agent_count
    high = low if ring_size % agent_count == 0 else low + 1
    return low, high


def verify_positions(
    positions: Sequence[int], ring_size: int
) -> VerificationReport:
    """Check the spacing condition for explicit agent positions."""
    failures: List[str] = []
    agent_count = len(positions)
    if agent_count == 0:
        return VerificationReport(False, ring_size, 0, (), ("no agents",))
    if len(set(p % ring_size for p in positions)) != agent_count:
        failures.append("two agents share a node")
        return VerificationReport(
            False, ring_size, agent_count, (), tuple(failures)
        )
    gaps = distances_from_positions(positions, ring_size)
    low, high = allowed_gaps(ring_size, agent_count)
    bad = sorted(set(gap for gap in gaps if gap not in (low, high)))
    if bad:
        failures.append(f"gaps {bad} outside {{{low}, {high}}}")
    expected_high = ring_size % agent_count
    if expected_high and gaps.count(high) != expected_high:
        failures.append(
            f"{gaps.count(high)} gaps of size {high}, expected {expected_high}"
        )
    return VerificationReport(
        ok=not failures,
        ring_size=ring_size,
        agent_count=agent_count,
        gaps=gaps,
        failures=tuple(failures),
    )


def verify_uniform_deployment(
    engine: "repro.sim.engine.Engine",  # noqa: F821 - forward ref, avoids cycle
    require_halted: bool = False,
    require_suspended: bool = False,
) -> VerificationReport:
    """Check Definitions 1/2 against a finished engine run.

    ``require_halted`` asserts every agent is in the halt state
    (Definition 1); ``require_suspended`` asserts every agent is in a
    suspended state with an empty inbox (Definition 2).
    """
    failures: List[str] = []
    ring = engine.ring
    if not ring.all_queues_empty():
        failures.append("agents still in transit on links")
    faults = ring.faults
    if faults is not None:
        if any(faults.buffers):
            failures.append("agents still held in link delay buffers")
        for agent_id in sorted(faults.lost):
            failures.append(f"agent {agent_id} was lost in transit (link fault)")
    snapshot = engine.snapshot()
    if snapshot.total_messages_pending() > 0:
        failures.append("undelivered messages remain")
    for agent_id in engine.agent_ids:
        agent = engine.agent(agent_id)
        if require_halted and not agent.halted:
            failures.append(f"agent {agent_id} is not halted")
        if require_suspended and not (agent.suspended or agent.halted):
            failures.append(f"agent {agent_id} is neither suspended nor halted")
    if failures:
        return VerificationReport(
            False, ring.size, len(engine.agent_ids), (), tuple(failures)
        )
    positions = sorted(engine.final_positions().values())
    report = verify_positions(positions, ring.size)
    return report


def require_uniform_deployment(
    engine: "repro.sim.engine.Engine",  # noqa: F821
    require_halted: bool = False,
    require_suspended: bool = False,
) -> VerificationReport:
    """Like :func:`verify_uniform_deployment` but raise on failure."""
    report = verify_uniform_deployment(
        engine, require_halted=require_halted, require_suspended=require_suspended
    )
    if not report:
        raise VerificationError(report.describe())
    return report
