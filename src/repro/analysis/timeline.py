"""Space-time diagrams of executions (ASCII, no plotting dependency).

A :class:`Timeline` samples the engine's configuration once per
synchronous round and renders a classic distributed-computing
space-time diagram: rows are rounds, columns are nodes, cells show
agents (by id for k <= 10), tokens and emptiness.  Reading one is the
fastest way to *see* an algorithm: the selection circuits, the
followers parking, the leaders' notification walks, the final uniform
spread.

Example (Algorithm 1, n=12, k=3)::

    t=  0 | 0..1......2.
    t=  4 | ....0..1...2     <- agents circling
    ...
    t= 30 | 0...1...2...     <- uniform, halted

Use :func:`record_timeline` for the common run-and-render path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.ring.configuration import Configuration
from repro.sim.engine import Engine

__all__ = ["Timeline", "record_timeline"]


@dataclass
class Timeline:
    """Sampled per-round node occupancy of one execution."""

    ring_size: int
    rows: List[str] = field(default_factory=list)
    sampled_rounds: List[int] = field(default_factory=list)

    def snapshot(self, round_index: int, configuration: Configuration) -> None:
        """Record one row from a configuration snapshot."""
        cells = []
        for node in range(self.ring_size):
            staying = configuration.staying.get(node, ())
            queued = configuration.queues.get(node, ())
            if len(staying) == 1:
                cells.append(_agent_glyph(staying[0]))
            elif len(staying) > 1:
                cells.append("*")  # multiple agents (transient only)
            elif len(queued) == 1:
                cells.append(_agent_glyph(queued[0]).lower() if _agent_glyph(queued[0]).isalpha() else _agent_glyph(queued[0]))
            elif len(queued) > 1:
                cells.append("+")
            elif configuration.tokens[node] > 0:
                cells.append("-")
            else:
                cells.append(".")
        self.rows.append("".join(cells))
        self.sampled_rounds.append(round_index)

    def render(self, limit: Optional[int] = None) -> str:
        """Render sampled rows as aligned ``t= R | cells`` lines."""
        shown = self.rows if limit is None else self.rows[:limit]
        lines = [
            f"t={self.sampled_rounds[index]:>4} | {row}"
            for index, row in enumerate(shown)
        ]
        if limit is not None and len(self.rows) > limit:
            lines.append(f"... ({len(self.rows) - limit} more rows)")
        return "\n".join(lines)

    @property
    def final_row(self) -> str:
        return self.rows[-1] if self.rows else ""


def _agent_glyph(agent_id: int) -> str:
    """Digit for ids 0-9, letters beyond."""
    if agent_id < 10:
        return str(agent_id)
    return chr(ord("A") + (agent_id - 10) % 26)


def record_timeline(
    engine: Engine, sample_every: int = 1, max_rounds: int = 100_000
) -> Timeline:
    """Run ``engine`` to quiescence, sampling one row per round batch.

    Requires a time-counting scheduler (the synchronous default).  Each
    sample is taken *before* the round executes, plus a final sample at
    quiescence.
    """
    timeline = Timeline(ring_size=engine.ring.size)
    round_index = 0
    while not engine.quiescent and round_index < max_rounds:
        if round_index % sample_every == 0:
            timeline.snapshot(round_index, engine.snapshot())
        engine.run_rounds(1)
        round_index += 1
    timeline.snapshot(round_index, engine.snapshot())
    return timeline
