"""ASCII rendering of ring configurations (used by the examples).

Renders a ring as a single line of cells, marking agent homes, tokens
and current agent positions — enough to eyeball an execution without
any plotting dependency:

    n=12  [A]..[a][T].[a]...[T]..
           0   3  4    6       10

Legend: ``A`` agent staying on a token node, ``a`` agent staying on a
plain node, ``T`` token only, ``.`` empty node.
"""

from __future__ import annotations

from typing import Dict, Sequence

from repro.ring.configuration import Configuration

__all__ = ["render_positions", "render_configuration", "render_gaps"]


def render_positions(
    ring_size: int,
    agent_nodes: Sequence[int],
    token_nodes: Sequence[int] = (),
    width: int = 1,
) -> str:
    """Render explicit agent/token positions as one text line."""
    agents = {node % ring_size for node in agent_nodes}
    tokens = {node % ring_size for node in token_nodes}
    cells = []
    for node in range(ring_size):
        if node in agents and node in tokens:
            cells.append("A")
        elif node in agents:
            cells.append("a")
        elif node in tokens:
            cells.append("T")
        else:
            cells.append(".")
    return "".join(cell * width for cell in cells)


def render_configuration(snapshot: Configuration) -> str:
    """Render an engine snapshot: staying agents, queues and tokens."""
    cells = []
    for node in range(snapshot.ring_size):
        staying = len(snapshot.staying.get(node, ()))
        queued = len(snapshot.queues.get(node, ()))
        tokens = snapshot.tokens[node]
        if staying > 1:
            cell = str(min(staying, 9))
        elif staying == 1:
            cell = "A" if tokens else "a"
        elif queued:
            cell = ">"
        elif tokens:
            cell = "T"
        else:
            cell = "."
        cells.append(cell)
    return "".join(cells)


def render_gaps(ring_size: int, agent_nodes: Sequence[int]) -> str:
    """Summarise the gap multiset, e.g. ``gaps: 4 x3, 5 x1``."""
    ordered = sorted(node % ring_size for node in agent_nodes)
    if not ordered:
        return "gaps: (none)"
    counts: Dict[int, int] = {}
    for index, node in enumerate(ordered):
        nxt = ordered[(index + 1) % len(ordered)]
        gap = (nxt - node) % ring_size or ring_size
        counts[gap] = counts.get(gap, 0) + 1
    parts = [f"{gap} x{count}" for gap, count in sorted(counts.items())]
    return "gaps: " + ", ".join(parts)
