"""Exception hierarchy for the ``repro`` package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class ConfigurationError(ReproError):
    """An initial configuration violates the model of Section 2.1.

    Examples: two agents placed on the same node, more agents than nodes,
    a distance sequence whose elements do not sum to the ring size.
    """


class ProtocolViolation(ReproError):
    """An agent produced an action that the atomic-action model forbids.

    Examples: moving and halting in the same action, releasing a second
    token, broadcasting after entering the halt state.
    """


class SimulationError(ReproError):
    """The engine reached an inconsistent or unexpected internal state."""


class SimulationLimitExceeded(SimulationError):
    """The engine hit its safety cap before reaching quiescence.

    The cap exists to turn livelocks and schedule starvation bugs into
    loud failures instead of hangs; correct executions of the paper's
    algorithms terminate well under the default budget.
    """


class BackendMismatch(SimulationError):
    """The batch backend diverged from the object-engine oracle.

    Raised by the differential gate (``validate=True`` sampling in
    :func:`repro.sim.batch.runner.run_batch`, or the cross-backend test
    suite) when a sampled trial's activation log, metrics or final
    positions differ between the columnar and object engines.  Any
    occurrence is a bug in one of the engines, never expected noise.
    """


class VerificationError(ReproError):
    """A terminal configuration failed the uniform-deployment predicate."""


class CampaignInterrupted(ReproError):
    """A long-running campaign was interrupted (SIGINT/SIGTERM) cleanly.

    Raised *after* graceful degradation has already happened: completed
    work is flushed to the store, workers are torn down, and the
    carried ``outcome`` reports everything that finished.  CLI handlers
    catch this before the generic :class:`ReproError` path and turn it
    into accounting plus an exact resume command instead of a
    traceback.
    """

    def __init__(
        self, message: str, *, outcome=None, resume_hint: str = ""
    ) -> None:
        super().__init__(message)
        self.outcome = outcome
        self.resume_hint = resume_hint


class ProvenanceWarning(UserWarning):
    """Archived records being reused were computed under a different
    environment fingerprint (interpreter, platform or package version)
    than the current one — results may mix provenance."""
