"""The Theorem 5 impossibility construction (paper §4.1, Figure 7, E3).

No algorithm can solve uniform deployment *with termination detection*
when agents know neither k nor n.  The proof builds, from any solving
execution on a ring ``R`` (n nodes, k agents, gap ``d = n/k``), an
expanded ring ``R'`` with ``2qn + 2n`` nodes and ``kq + k`` agents whose
occupied prefix repeats ``R``'s layout ``q + 1`` times, where
``q = ceil(T / n)`` and ``T`` is the length of the solving execution.
Lemma 1: for ``t <= T`` every node of the shrinking window ``V'_t``
has the same *local configuration* as its corresponding node in ``R``,
so the first agents behave identically, halt after ``T`` steps — and
sit at spacing ``d`` while uniformity in ``R'`` demands ``2d``.

This module makes the construction executable with the paper's own
knowledge-of-k algorithms playing the role of "the" algorithm: agents
are given the *believed* ``k`` of ``R`` (exactly the misestimation the
theorem says is unavoidable), run on ``R'``, and provably fail:

* :func:`expanded_placement` builds ``R'`` from ``R``'s placement;
* :func:`lemma1_window_agreement` replays both rings round by round in
  lockstep and measures local-configuration agreement on the window;
* :func:`demonstrate_impossibility` runs the deceived agents on ``R'``
  to quiescence and returns the (non-uniform) outcome.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.verification import VerificationReport, verify_positions
from repro.errors import ConfigurationError
from repro.experiments.runner import build_agents, build_engine, run_experiment
from repro.ring.placement import Placement
from repro.sim.engine import Engine
from repro.registry import build_scheduler

__all__ = [
    "ImpossibilityOutcome",
    "expanded_placement",
    "lemma1_window_agreement",
    "demonstrate_impossibility",
]


@dataclass(frozen=True)
class ImpossibilityOutcome:
    """Everything the Theorem 5 demonstration produced."""

    base: Placement  # R
    expanded: Placement  # R'
    rounds_in_base: int  # T(E_R): solving-execution length on R
    q: int  # repetition parameter, q*n >= T
    base_gap: int  # d: the uniform gap in R
    expanded_gap: int  # 2d-ish: the required gap in R'
    final_positions: Tuple[int, ...]  # where the deceived agents halted in R'
    observed_prefix_gaps: Tuple[int, ...]  # gaps among halted agents in the window
    report: VerificationReport  # verification of R' (must fail)

    @property
    def failed_as_predicted(self) -> bool:
        """True when the deceived run violates uniformity on R'."""
        return not self.report.ok


def expanded_placement(base: Placement, q: int) -> Placement:
    """Build R' from R: ``q + 1`` copies of the layout, then empty arc.

    R' has ``2qn + 2n`` nodes; agent ``i`` (0 <= i < k(q+1)) starts at
    ``f(i mod k) + n * floor(i / k)`` where ``f`` is R's home map, so
    nodes ``0 .. qn + n - 1`` repeat R and the second half is empty.
    """
    if q < 1:
        raise ConfigurationError(f"q must be >= 1, got {q}")
    n = base.ring_size
    ring_size = 2 * q * n + 2 * n
    homes: List[int] = []
    for block in range(q + 1):
        homes.extend(home + block * n for home in base.homes)
    return Placement(ring_size=ring_size, homes=tuple(homes))


def _solving_rounds(base: Placement, algorithm: str) -> int:
    """Length (synchronous rounds) of the solving execution on R."""
    result = run_experiment(algorithm, base)
    if not result.ok:
        raise ConfigurationError(
            f"{algorithm} failed on the base ring; cannot build the construction"
        )
    return result.ideal_time or 0


def lemma1_window_agreement(
    base: Placement, algorithm: str = "known_k_full", rounds: int = 32
) -> List[float]:
    """Replay R and R' in lockstep; return per-round window agreement.

    Round ``t`` compares the local configuration of every node
    ``v'_j`` in the window ``V'_t = {v'_t, ..., v'_{qn+n-1}}`` with node
    ``v_{j mod n}`` of R (Lemma 1).  Returns the fraction of agreeing
    nodes per round — 1.0 throughout while ``t <= T``.
    """
    k = base.agent_count
    n = base.ring_size
    rounds_needed = _solving_rounds(base, algorithm)
    q = max(1, -(-rounds_needed // n))
    expanded = expanded_placement(base, q)

    engine_base = build_engine(algorithm, base)
    # The deception: agents of R' believe R's k (and, for the
    # knowledge-of-n variant, R's n).
    deceived = tuple(
        agent
        for _ in range(expanded.agent_count // k)
        for agent in build_agents(algorithm, k, n)
    )
    engine_expanded = Engine(
        placement=expanded,
        agents=deceived,
        scheduler=build_scheduler("sync"),
        memory_audit_interval=1_000_000,
    )

    window_end = q * n + n  # exclusive
    agreements: List[float] = []
    for round_index in range(rounds):
        snap_base = engine_base.snapshot()
        snap_expanded = engine_expanded.snapshot()
        window = range(round_index, window_end)
        agree = sum(
            1
            for node in window
            if snap_expanded.local(node) == snap_base.local(node % n)
        )
        agreements.append(agree / max(1, len(window)))
        engine_base.run_rounds(1)
        engine_expanded.run_rounds(1)
    return agreements


def demonstrate_impossibility(
    base: Placement, algorithm: str = "known_k_full"
) -> ImpossibilityOutcome:
    """Run the deceived agents on R' to quiescence; they halt non-uniformly."""
    n = base.ring_size
    k = base.agent_count
    if n % k != 0:
        raise ConfigurationError(
            "the Theorem 5 construction uses d = n/k integral; pick n = c*k"
        )
    rounds_needed = _solving_rounds(base, algorithm)
    q = max(1, -(-rounds_needed // n))
    expanded = expanded_placement(base, q)
    deceived = tuple(
        agent
        for _ in range(expanded.agent_count // k)
        for agent in build_agents(algorithm, k, n)
    )
    engine = Engine(
        placement=expanded,
        agents=deceived,
        scheduler=build_scheduler("sync"),
    )
    engine.run()
    positions = tuple(sorted(engine.final_positions().values()))
    report = verify_positions(positions, expanded.ring_size)
    # Gaps among agents that halted inside the repeated window [qn, qn+n):
    window = [p for p in positions if q * n <= p < q * n + n]
    prefix_gaps = tuple(
        window[i + 1] - window[i] for i in range(len(window) - 1)
    )
    return ImpossibilityOutcome(
        base=base,
        expanded=expanded,
        rounds_in_base=rounds_needed,
        q=q,
        base_gap=n // k,
        expanded_gap=expanded.ring_size // expanded.agent_count,
        final_positions=positions,
        observed_prefix_gaps=prefix_gaps,
        report=report,
    )
