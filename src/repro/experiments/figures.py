"""The paper's exact figure configurations, as a single registry.

Every figure in the paper that depicts a concrete initial
configuration is reproduced here once, so tests, benchmarks and
examples all reference the same objects:

* ``figure_1a`` / ``figure_1b`` — the symmetry-degree examples (l=1, l=2),
* ``figure_2``  — the uniform-deployment illustration (n=16, k=4),
* ``figure_3``  — the quarter-packed lower-bound configuration,
* ``figure_4``  — the base/target illustration (2-symmetric, 6 agents),
* ``figure_5``  — the base-node-conditions example (n=18, k=9, 3 bases),
* ``figure_8_9`` — the estimating-phase trap ring (n=27, k=9 with the
  (1,3)^4 subsequence; Figure 8 shows the window, Figure 9 the run),
* ``figure_11`` — the (6,2)-node periodic ring (n=12),
* ``theorem_5_base`` — the base ring R used by the E3 construction.

Each entry also records what the paper says should happen, so callers
can assert against ``expectation`` fields instead of re-deriving them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.ring.placement import (
    Placement,
    periodic_placement,
    placement_from_distances,
    quarter_packed_placement,
)

__all__ = ["FigureConfig", "FIGURES", "figure"]


@dataclass(frozen=True)
class FigureConfig:
    """One paper figure: the placement plus its documented expectations."""

    name: str
    caption: str
    placement: Placement
    symmetry_degree: int
    expected_gap_low: int
    expected_gap_high: int
    note: str = ""


def _entry(
    name: str,
    caption: str,
    placement: Placement,
    note: str = "",
) -> FigureConfig:
    n = placement.ring_size
    k = placement.agent_count
    return FigureConfig(
        name=name,
        caption=caption,
        placement=placement,
        symmetry_degree=placement.symmetry_degree,
        expected_gap_low=n // k,
        expected_gap_high=n // k if n % k == 0 else n // k + 1,
        note=note,
    )


FIGURES: Dict[str, FigureConfig] = {
    entry.name: entry
    for entry in (
        _entry(
            "figure_1a",
            "Fig. 1(a): aperiodic distance sequence (1,4,2,1,2,2), l = 1",
            placement_from_distances((1, 4, 2, 1, 2, 2)),
        ),
        _entry(
            "figure_1b",
            "Fig. 1(b): (1,2,3) repeated twice, l = 2",
            placement_from_distances((1, 2, 3, 1, 2, 3)),
        ),
        _entry(
            "figure_2",
            "Fig. 2: uniform deployment target, n = 16, k = 4",
            placement_from_distances((4, 4, 4, 4)),
            note="the caption's d = 3 counts nodes strictly between agents",
        ),
        _entry(
            "figure_3",
            "Fig. 3: all agents packed in one quarter (lower bound)",
            quarter_packed_placement(32, 8),
        ),
        _entry(
            "figure_4",
            "Fig. 4: 2-symmetric ring, 6 agents, two base nodes",
            periodic_placement((1, 4, 7), 2),
        ),
        _entry(
            "figure_5",
            "Fig. 5: n = 18, k = 9, three base nodes (base-node conditions)",
            periodic_placement((1, 2, 3), 3),
            note="3 leaders emerge; 2 homes between adjacent bases",
        ),
        _entry(
            "figure_8_9",
            "Figs. 8-9: n = 27, k = 9 with the (1,3)^4 estimating trap",
            placement_from_distances((11, 1, 3, 1, 3, 1, 3, 1, 3)),
            note="one agent first estimates n' = 4, then is corrected to 27",
        ),
        _entry(
            "figure_11",
            "Fig. 11: the (6,2)-node periodic ring, n = 12",
            periodic_placement((1, 2, 3), 2),
            note="all agents estimate N = 6 and move 12N = 72 before deploying",
        ),
        _entry(
            "theorem_5_base",
            "Theorem 5 base ring R: n = 24, k = 4, d = 6",
            placement_from_distances((5, 7, 4, 8)),
        ),
    )
}


def figure(name: str) -> FigureConfig:
    """Look up a figure configuration by name (KeyError lists options)."""
    try:
        return FIGURES[name]
    except KeyError:
        raise KeyError(
            f"unknown figure {name!r}; available: {sorted(FIGURES)}"
        ) from None
