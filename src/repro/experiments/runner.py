"""One-call experiment runner shared by tests, examples and benchmarks.

:func:`run_experiment` builds the engine for a placement and an
algorithm, runs it to quiescence, verifies uniform deployment with the
right terminal-state requirement, and returns a :class:`RunResult`
bundling the metrics and the verification report.

Both :func:`run_experiment` and :func:`build_engine` accept either the
classic ``(algorithm_name, placement, **kwargs)`` form or a single
declarative :class:`repro.spec.ExperimentSpec` — the serialized-spec
path and the kwargs path produce byte-identical executions (pinned by
``tests/test_spec.py``).

Algorithm metadata lives in :mod:`repro.registry`; the module-level
``ALGORITHMS`` mapping survives as a backward-compatible live view of
the registry in the historical ``name -> (factory, halts, description)``
tuple format.  Mutating it still works but raises a
``DeprecationWarning`` — register through
:func:`repro.registry.register_algorithm` instead.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    MutableMapping,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a module cycle
    from repro.store.records import RunRecord

from repro.analysis.verification import VerificationReport, verify_uniform_deployment
from repro.errors import ConfigurationError
from repro.registry import (
    AlgorithmInfo,
    algorithm_names,
    build_scheduler,
    get_algorithm,
    register_algorithm_info,
    unregister_algorithm,
)
from repro.ring.faults import LinkSpec
from repro.ring.placement import Placement
from repro.sim.agent import Agent
from repro.sim.engine import Engine
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceRecorder
from repro.spec import ExperimentSpec

__all__ = ["ALGORITHMS", "RunResult", "build_agents", "build_engine", "run_experiment"]

_MUTATION_WARNING = (
    "mutating ALGORITHMS is deprecated; use repro.registry."
    "register_algorithm / unregister_algorithm instead"
)


class _AlgorithmsView(MutableMapping):
    """Live ``name -> (factory, halts, description)`` view of the registry.

    Read access mirrors the historical dict exactly (self-test agents
    such as ``wake_race`` are hidden, as before).  Writes are deprecated
    but still functional: assignment of a legacy tuple forwards to the
    registry with placeholder Table 1 metadata, deletion unregisters —
    both after a ``DeprecationWarning``.
    """

    def __getitem__(self, name: str) -> Tuple[object, bool, str]:
        try:
            info = get_algorithm(name)
        except ConfigurationError:
            raise KeyError(name) from None
        if info.selftest:
            raise KeyError(name)
        return (info.factory, info.halts, info.description)

    def __iter__(self) -> Iterator[str]:
        return iter(algorithm_names())

    def __len__(self) -> int:
        return len(algorithm_names())

    def __setitem__(self, name: str, value: Tuple[object, bool, str]) -> None:
        warnings.warn(_MUTATION_WARNING, DeprecationWarning, stacklevel=2)
        try:
            factory, halts, description = value
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"ALGORITHMS[{name!r}] expects a (factory, halts, description) "
                f"tuple, got {value!r}"
            ) from None
        register_algorithm_info(
            AlgorithmInfo(
                name=name,
                factory=factory,
                halts=bool(halts),
                knowledge="unspecified",
                memory_bound="unspecified",
                time_bound="unspecified",
                table1_row="unregistered",
                description=str(description),
            ),
            replace=True,
        )

    def __delitem__(self, name: str) -> None:
        warnings.warn(_MUTATION_WARNING, DeprecationWarning, stacklevel=2)
        self[name]  # raise KeyError for unknown/hidden names
        unregister_algorithm(name)

    def __repr__(self) -> str:
        return f"ALGORITHMS({dict(self)!r})"


#: Backward-compatible registry view: name -> (factory, halts, description).
ALGORITHMS: MutableMapping[str, Tuple[object, bool, str]] = _AlgorithmsView()


@dataclass(frozen=True)
class RunResult:
    """Everything one experiment run produced."""

    algorithm: str
    placement: Placement
    scheduler: str
    total_moves: int
    max_moves: int
    ideal_time: Optional[int]
    max_memory_bits: int
    messages_sent: int
    report: VerificationReport
    final_positions: Tuple[int, ...]

    @property
    def ok(self) -> bool:
        """True when the run achieved uniform deployment."""
        return self.report.ok

    def row(self) -> Dict[str, object]:
        """Flat row for benchmark tables and EXPERIMENTS.md."""
        return {
            "algorithm": self.algorithm,
            "n": self.placement.ring_size,
            "k": self.placement.agent_count,
            "l": self.placement.symmetry_degree,
            "scheduler": self.scheduler,
            "total_moves": self.total_moves,
            "max_moves": self.max_moves,
            "ideal_time": self.ideal_time,
            "max_memory_bits": self.max_memory_bits,
            "messages": self.messages_sent,
            "uniform": self.report.ok,
        }

    def to_record(self, spec: Optional[ExperimentSpec] = None) -> "RunRecord":
        """The canonical archived form of this run (see :mod:`repro.store`).

        With ``spec`` the record is content-addressed by the spec's hash
        — the key :class:`~repro.store.jsonl.RunStore` memoises on.
        Without one (legacy flat-file archives) the hash is derived from
        the result payload itself, so the record is still addressable.
        """
        from repro.store.records import (
            RunRecord,
            payload_hash,
            result_to_payload,
        )

        payload = result_to_payload(self)
        if spec is not None:
            if spec.algorithm != self.algorithm:
                raise ConfigurationError(
                    f"spec algorithm {spec.algorithm!r} does not match "
                    f"result algorithm {self.algorithm!r}"
                )
            return RunRecord(
                content_hash=spec.content_hash(),
                result=payload,
                spec=spec.to_dict(),
            )
        return RunRecord(content_hash=payload_hash(payload), result=payload)

    @classmethod
    def from_record(cls, record: "RunRecord") -> "RunResult":
        """Rebuild the :class:`RunResult` a record archived.

        Inverse of :meth:`to_record` up to the spec/env envelope: the
        returned value equals the originally computed result (metrics,
        final positions, verification report) field for field.
        """
        from repro.store.records import result_from_payload

        return result_from_payload(record.result)


def _reject_spec_overrides(caller: str, **values) -> None:
    """Fail loudly when spec calls also pass engine-option kwargs.

    A spec carries its own engine options; silently discarding an
    explicit ``max_steps=...`` (etc.) would drop the caller's limits.
    Each value is compared against the signature default — passing the
    default explicitly is indistinguishable from omitting it, which is
    harmless because the spec then decides, exactly as documented.
    """
    conflicting = sorted(
        name for name, (value, default) in values.items() if value != default
    )
    if conflicting:
        raise ConfigurationError(
            f"{caller}(spec) carries its own engine options; move "
            f"{conflicting} into the spec (ExperimentSpec.with_options) "
            f"instead of passing them alongside it"
        )


def build_agents(
    algorithm: str, agent_count: int, ring_size: int = 0
) -> Tuple[Agent, ...]:
    """Instantiate one agent per home for a registered algorithm.

    ``ring_size`` is required only by knowledge-of-n algorithms; the
    knowledge-of-k and no-knowledge factories ignore it.  Self-test
    algorithms (``wake_race``) resolve here too — they are hidden only
    from experiment-facing listings.
    """
    return get_algorithm(algorithm).make_agents(agent_count, ring_size)


def build_engine(
    algorithm: Union[str, ExperimentSpec],
    placement: Optional[Placement] = None,
    scheduler: Optional[Scheduler] = None,
    trace: Optional[TraceRecorder] = None,
    memory_audit_interval: int = 16,
    max_steps: Optional[int] = None,
    collect_metrics: bool = True,
    validate_enabledness: bool = False,
    record_views: bool = False,
    links: Optional[LinkSpec] = None,
) -> Engine:
    """Build an engine wired with fresh agents for ``algorithm``.

    ``algorithm`` may be a registered name plus a ``placement`` (the
    classic form) or a single :class:`~repro.spec.ExperimentSpec`
    carrying the placement, scheduler and engine options itself (an
    explicit ``scheduler``/``trace`` argument still wins, so replays
    and recordings compose with specs).

    ``collect_metrics=False`` makes the run a pure-throughput measurement
    (the metrics object stays empty); ``validate_enabledness=True`` runs
    the O(k) enabled-set oracle after every batch as a differential
    check against the incremental set; ``record_views=True`` logs every
    agent view so the engine supports copy-on-branch ``fork()`` (the
    model checker needs this); ``links`` injects a
    :class:`~repro.ring.faults.LinkSpec` (faulty delivery on every
    link — specs carry their own via ``spec.links``).
    """
    if isinstance(algorithm, ExperimentSpec):
        spec = algorithm
        if placement is not None:
            raise ConfigurationError(
                "build_engine(spec) carries its own placement; do not pass one"
            )
        _reject_spec_overrides(
            "build_engine",
            memory_audit_interval=(memory_audit_interval, 16),
            max_steps=(max_steps, None),
            collect_metrics=(collect_metrics, True),
            validate_enabledness=(validate_enabledness, False),
            record_views=(record_views, False),
            links=(links, None),
        )
        algorithm = spec.algorithm
        placement = spec.build_placement()
        scheduler = scheduler or spec.build_scheduler()
        memory_audit_interval = spec.memory_audit_interval
        max_steps = spec.max_steps
        collect_metrics = spec.collect_metrics
        validate_enabledness = spec.validate_enabledness
        record_views = spec.record_views
        links = spec.links
    elif placement is None:
        raise ConfigurationError(
            "build_engine(name, placement) requires a placement "
            "(or pass an ExperimentSpec)"
        )
    agents = build_agents(algorithm, placement.agent_count, placement.ring_size)
    return Engine(
        placement=placement,
        agents=agents,
        scheduler=scheduler or build_scheduler("sync"),
        trace=trace,
        memory_audit_interval=memory_audit_interval,
        max_steps=max_steps,
        collect_metrics=collect_metrics,
        validate_enabledness=validate_enabledness,
        record_views=record_views,
        links=links,
    )


def run_experiment(
    algorithm: Union[str, ExperimentSpec],
    placement: Optional[Placement] = None,
    scheduler: Optional[Scheduler] = None,
    trace: Optional[TraceRecorder] = None,
    memory_audit_interval: int = 16,
    max_steps: Optional[int] = None,
    validate_enabledness: bool = False,
    links: Optional[LinkSpec] = None,
) -> RunResult:
    """Run ``algorithm`` on ``placement`` to quiescence and verify it.

    Accepts either the classic ``(name, placement, **kwargs)`` form or a
    single declarative :class:`~repro.spec.ExperimentSpec`; the two
    forms produce byte-identical executions for equivalent inputs.
    """
    if isinstance(algorithm, ExperimentSpec):
        spec = algorithm
        if placement is not None:
            raise ConfigurationError(
                "run_experiment(spec) carries its own placement; do not pass one"
            )
        _reject_spec_overrides(
            "run_experiment",
            memory_audit_interval=(memory_audit_interval, 16),
            max_steps=(max_steps, None),
            validate_enabledness=(validate_enabledness, False),
            links=(links, None),
        )
        engine = build_engine(spec, scheduler=scheduler, trace=trace)
        name = spec.algorithm
    else:
        if placement is None:
            raise ConfigurationError(
                "run_experiment(name, placement) requires a placement "
                "(or pass an ExperimentSpec)"
            )
        engine = build_engine(
            algorithm,
            placement,
            scheduler=scheduler,
            trace=trace,
            memory_audit_interval=memory_audit_interval,
            max_steps=max_steps,
            validate_enabledness=validate_enabledness,
            links=links,
        )
        name = algorithm
    metrics = engine.run()
    halts = get_algorithm(name).halts
    report = verify_uniform_deployment(
        engine, require_halted=halts, require_suspended=not halts
    )
    faults = engine.ring.faults
    if faults is None:
        positions = tuple(sorted(engine.final_positions().values()))
    else:
        # Lost agents have no position; report the survivors' nodes (at
        # quiescence every survivor is staying — a queued or buffered
        # agent would keep some actor enabled).
        positions = tuple(
            sorted(
                node
                for agent_id in engine.agent_ids
                if agent_id not in faults.lost
                for kind, node in (engine.ring.locate(agent_id),)
                if kind == "node"
            )
        )
    return RunResult(
        algorithm=name,
        placement=engine.placement,
        scheduler=engine.scheduler.describe(),
        total_moves=metrics.total_moves,
        max_moves=metrics.max_moves,
        ideal_time=metrics.rounds,
        max_memory_bits=metrics.max_memory_bits,
        messages_sent=metrics.messages_sent,
        report=report,
        final_positions=positions,
    )
