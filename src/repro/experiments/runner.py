"""One-call experiment runner shared by tests, examples and benchmarks.

:func:`run_experiment` builds the engine for a placement and an
algorithm, runs it to quiescence, verifies uniform deployment with the
right terminal-state requirement, and returns a :class:`RunResult`
bundling the metrics and the verification report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.analysis.verification import VerificationReport, verify_uniform_deployment
from repro.core.known_k_full import KnownKFullAgent
from repro.core.known_k_logspace import KnownKLogSpaceAgent
from repro.core.known_n_full import KnownNFullAgent
from repro.core.unknown import UnknownKAgent
from repro.errors import ConfigurationError
from repro.ring.placement import Placement
from repro.sim.agent import Agent
from repro.sim.engine import Engine
from repro.sim.scheduler import Scheduler, SynchronousScheduler
from repro.sim.trace import TraceRecorder

__all__ = ["ALGORITHMS", "RunResult", "build_agents", "build_engine", "run_experiment"]

#: Registry: algorithm name -> (agent factory given (k, n), halts?, description).
ALGORITHMS: Dict[str, Tuple[Callable[[int, int], Agent], bool, str]] = {
    "known_k_full": (
        lambda k, n: KnownKFullAgent(k),
        True,
        "Algorithm 1: knowledge of k, O(k log n) memory, O(n) time",
    ),
    "known_n_full": (
        lambda k, n: KnownNFullAgent(n),
        True,
        "Algorithm 1 variant (footnote 2): knowledge of n instead of k",
    ),
    "known_k_logspace": (
        lambda k, n: KnownKLogSpaceAgent(k),
        True,
        "Algorithms 2+3: knowledge of k, O(log n) memory, O(n log k) time",
    ),
    "unknown": (
        lambda k, n: UnknownKAgent(),
        False,
        "Algorithms 4-6: no knowledge, relaxed problem, adaptive in l",
    ),
}


@dataclass(frozen=True)
class RunResult:
    """Everything one experiment run produced."""

    algorithm: str
    placement: Placement
    scheduler: str
    total_moves: int
    max_moves: int
    ideal_time: Optional[int]
    max_memory_bits: int
    messages_sent: int
    report: VerificationReport
    final_positions: Tuple[int, ...]

    @property
    def ok(self) -> bool:
        """True when the run achieved uniform deployment."""
        return self.report.ok

    def row(self) -> Dict[str, object]:
        """Flat row for benchmark tables and EXPERIMENTS.md."""
        return {
            "algorithm": self.algorithm,
            "n": self.placement.ring_size,
            "k": self.placement.agent_count,
            "l": self.placement.symmetry_degree,
            "scheduler": self.scheduler,
            "total_moves": self.total_moves,
            "max_moves": self.max_moves,
            "ideal_time": self.ideal_time,
            "max_memory_bits": self.max_memory_bits,
            "messages": self.messages_sent,
            "uniform": self.report.ok,
        }


def build_agents(
    algorithm: str, agent_count: int, ring_size: int = 0
) -> Tuple[Agent, ...]:
    """Instantiate one agent per home for a registered algorithm.

    ``ring_size`` is required only by knowledge-of-n algorithms; the
    knowledge-of-k and no-knowledge factories ignore it.
    """
    if algorithm not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
        )
    factory, _, _ = ALGORITHMS[algorithm]
    return tuple(factory(agent_count, ring_size) for _ in range(agent_count))


def build_engine(
    algorithm: str,
    placement: Placement,
    scheduler: Optional[Scheduler] = None,
    trace: Optional[TraceRecorder] = None,
    memory_audit_interval: int = 16,
    max_steps: Optional[int] = None,
    collect_metrics: bool = True,
    validate_enabledness: bool = False,
    record_views: bool = False,
) -> Engine:
    """Build an engine wired with fresh agents for ``algorithm``.

    ``collect_metrics=False`` makes the run a pure-throughput measurement
    (the metrics object stays empty); ``validate_enabledness=True`` runs
    the O(k) enabled-set oracle after every batch as a differential
    check against the incremental set; ``record_views=True`` logs every
    agent view so the engine supports copy-on-branch ``fork()`` (the
    model checker needs this).
    """
    agents = build_agents(algorithm, placement.agent_count, placement.ring_size)
    return Engine(
        placement=placement,
        agents=agents,
        scheduler=scheduler or SynchronousScheduler(),
        trace=trace,
        memory_audit_interval=memory_audit_interval,
        max_steps=max_steps,
        collect_metrics=collect_metrics,
        validate_enabledness=validate_enabledness,
        record_views=record_views,
    )


def run_experiment(
    algorithm: str,
    placement: Placement,
    scheduler: Optional[Scheduler] = None,
    trace: Optional[TraceRecorder] = None,
    memory_audit_interval: int = 16,
    max_steps: Optional[int] = None,
    validate_enabledness: bool = False,
) -> RunResult:
    """Run ``algorithm`` on ``placement`` to quiescence and verify it."""
    scheduler = scheduler or SynchronousScheduler()
    engine = build_engine(
        algorithm,
        placement,
        scheduler=scheduler,
        trace=trace,
        memory_audit_interval=memory_audit_interval,
        max_steps=max_steps,
        validate_enabledness=validate_enabledness,
    )
    metrics = engine.run()
    _, halts, _ = ALGORITHMS[algorithm]
    report = verify_uniform_deployment(
        engine, require_halted=halts, require_suspended=not halts
    )
    positions = tuple(sorted(engine.final_positions().values()))
    return RunResult(
        algorithm=algorithm,
        placement=placement,
        scheduler=scheduler.describe(),
        total_moves=metrics.total_moves,
        max_moves=metrics.max_moves,
        ideal_time=metrics.rounds,
        max_memory_bits=metrics.max_memory_bits,
        messages_sent=metrics.messages_sent,
        report=report,
        final_positions=positions,
    )
