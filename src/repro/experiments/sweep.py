"""Parallel sweep runner: fan experiment grids across a process pool.

The paper's tables and figures are sweeps over thousands of
``(algorithm, n, k, scheduler, seed)`` cells.  Each cell is an
independent simulation, so the sweep is embarrassingly parallel; this
module provides the deterministic plumbing:

* :class:`SweepSpec` — the grid description (algorithms x (n, k) pairs
  x schedulers x trials),
* :func:`expand_cells` — the spec flattened into :class:`SweepCell`\\ s
  in a fixed canonical order,
* :func:`cell_seed` — a stable per-cell seed derived by hashing the
  cell coordinates, so cell results never depend on sweep order,
  worker count, or which process ran them,
* :func:`run_cell` — one cell to one flat result row (picklable both
  ways, so it can cross a process boundary),
* :func:`run_sweep` — the driver: a ``multiprocessing`` pool when
  ``processes > 1``, a plain loop otherwise, identical rows either way.

Determinism contract: ``run_sweep(spec, processes=1)`` and
``run_sweep(spec, processes=32)`` return byte-identical row lists.
This is what lets later PRs track benchmark trajectories cell by cell.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import warnings
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.runner import RunResult, run_experiment
from repro.registry import (
    build_scheduler,
    get_algorithm,
    parse_scheduler_spec,
    scheduler_names,
)
from repro.sim.scheduler import Scheduler
from repro.spec import ExperimentSpec, PlacementSpec

__all__ = [
    "SCHEDULER_SPECS",
    "SweepCell",
    "SweepSpec",
    "cell_seed",
    "expand_cells",
    "make_scheduler",
    "run_cell",
    "run_sweep",
    "rows_to_json",
    "summarize_rows",
]

class _SchedulerSpecsView(Mapping):
    """Deprecated read-only view: spec name -> factory taking the cell seed.

    Kept so historical ``SCHEDULER_SPECS[name](seed)`` call sites keep
    working; the factories now delegate to
    :func:`repro.registry.build_scheduler`, so the registry is the only
    place schedulers are constructed.
    """

    def __getitem__(self, name: str) -> object:
        try:
            parse_scheduler_spec(name)
        except ConfigurationError:
            # Mapping contract: `in` / `.get` must see KeyError, not a
            # domain error, to keep legacy membership tests working.
            raise KeyError(name) from None
        return lambda seed, _name=name: build_scheduler(_name, seed=seed)

    def __iter__(self) -> Iterator[str]:
        return iter(scheduler_names())

    def __len__(self) -> int:
        return len(scheduler_names())


#: Deprecated registry view (use scheduler spec strings instead).
SCHEDULER_SPECS: Mapping[str, object] = _SchedulerSpecsView()


def make_scheduler(spec_name: str, seed: int) -> Scheduler:
    """Deprecated alias for :func:`repro.registry.build_scheduler`.

    The sweep runner used to own its own scheduler table; the typed
    registry replaced it.  ``spec_name`` may now be any scheduler spec
    string (``"laggard:victims=0,patience=5"``), not just a bare name.
    """
    warnings.warn(
        "repro.experiments.sweep.make_scheduler is deprecated; use "
        "repro.registry.build_scheduler",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_scheduler(spec_name, seed=seed)


def cell_seed(
    base_seed: int,
    algorithm: str,
    ring_size: int,
    agent_count: int,
    scheduler: str,
    trial: int,
) -> int:
    """Derive a stable 63-bit seed from the cell coordinates.

    SHA-256 of the coordinate string, not Python's ``hash`` — the value
    must be identical across processes, interpreter runs and platforms.
    """
    key = f"{base_seed}|{algorithm}|{ring_size}x{agent_count}|{scheduler}|{trial}"
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation in a sweep (picklable)."""

    algorithm: str
    ring_size: int
    agent_count: int
    scheduler: str
    trial: int
    seed: int
    max_steps: Optional[int] = None

    def to_experiment_spec(self) -> ExperimentSpec:
        """The declarative :class:`~repro.spec.ExperimentSpec` of this cell.

        The cell seed doubles as the random-placement seed; the
        scheduler seed is decorrelated from it by a fixed XOR (no second
        hash needed).  ``run_cell`` executes exactly this spec, so a
        sweep is nothing but a grid of serializable experiment specs.
        """
        return ExperimentSpec(
            algorithm=self.algorithm,
            placement=PlacementSpec(
                kind="random",
                ring_size=self.ring_size,
                agent_count=self.agent_count,
                seed=self.seed,
            ),
            scheduler=self.scheduler,
            scheduler_seed=self.seed ^ 0x5DEECE66D,
            max_steps=self.max_steps,
        )


@dataclass(frozen=True)
class SweepSpec:
    """A full sweep grid: the cross product of every axis."""

    algorithms: Tuple[str, ...]
    grid: Tuple[Tuple[int, int], ...]
    schedulers: Tuple[str, ...] = ("sync",)
    trials: int = 1
    base_seed: int = 0
    max_steps: Optional[int] = None

    def __post_init__(self) -> None:
        for algorithm in self.algorithms:
            get_algorithm(algorithm)  # raises on unknown names
        for scheduler in self.schedulers:
            parse_scheduler_spec(scheduler)  # full spec strings are allowed
        if self.trials < 1:
            raise ConfigurationError("trials must be >= 1")


def expand_cells(spec: SweepSpec) -> List[SweepCell]:
    """Flatten the spec into cells in canonical (stable) order."""
    cells = []
    for algorithm in spec.algorithms:
        for ring_size, agent_count in spec.grid:
            for scheduler in spec.schedulers:
                for trial in range(spec.trials):
                    cells.append(
                        SweepCell(
                            algorithm=algorithm,
                            ring_size=ring_size,
                            agent_count=agent_count,
                            scheduler=scheduler,
                            trial=trial,
                            seed=cell_seed(
                                spec.base_seed,
                                algorithm,
                                ring_size,
                                agent_count,
                                scheduler,
                                trial,
                            ),
                            max_steps=spec.max_steps,
                        )
                    )
    return cells


def _result_for_cell(cell: SweepCell) -> RunResult:
    return run_experiment(cell.to_experiment_spec())


def run_cell(cell: SweepCell) -> Dict[str, object]:
    """Run one cell to quiescence and return its flat result row.

    Top-level function returning plain dicts so ``Pool.map`` can ship
    cells out and rows back across process boundaries.
    """
    result = _result_for_cell(cell)
    row = result.row()
    row["scheduler"] = cell.scheduler  # spec name, not describe() text
    row["trial"] = cell.trial
    row["seed"] = cell.seed
    return row


def run_sweep(
    spec: SweepSpec, processes: Optional[int] = None
) -> List[Dict[str, object]]:
    """Run every cell of ``spec``; return rows in canonical cell order.

    ``processes`` defaults to the machine's CPU count, capped at the
    number of cells.  With one process (or one cell) the pool is skipped
    entirely.  ``Pool.map`` preserves input order, so the returned rows
    are identical regardless of parallelism.
    """
    cells = expand_cells(spec)
    if not cells:
        return []
    if processes is None:
        processes = multiprocessing.cpu_count()
    processes = max(1, min(processes, len(cells)))
    if processes == 1:
        return [run_cell(cell) for cell in cells]
    chunksize = max(1, len(cells) // (processes * 4))
    with multiprocessing.Pool(processes) as pool:
        return pool.map(run_cell, cells, chunksize=chunksize)


def summarize_rows(
    rows: Sequence[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Aggregate trial rows per (algorithm, n, k, scheduler) group.

    Means are reported for moves/time, maxima for memory (a high-water
    measure), and ``uniform`` is the conjunction over trials.
    """
    groups: Dict[Tuple[object, ...], List[Dict[str, object]]] = {}
    for row in rows:
        key = (row["algorithm"], row["n"], row["k"], row["scheduler"])
        groups.setdefault(key, []).append(row)
    summary = []
    for (algorithm, n, k, scheduler), members in groups.items():
        trials = len(members)
        mean_moves = sum(int(m["total_moves"]) for m in members) / trials
        times = [m["ideal_time"] for m in members if m["ideal_time"] is not None]
        summary.append(
            {
                "algorithm": algorithm,
                "n": n,
                "k": k,
                "scheduler": scheduler,
                "trials": trials,
                "mean_moves": round(mean_moves, 1),
                "mean_ideal_time": (
                    round(sum(times) / len(times), 1) if times else None
                ),
                "max_memory_bits": max(int(m["max_memory_bits"]) for m in members),
                "uniform": all(bool(m["uniform"]) for m in members),
            }
        )
    return summary


def rows_to_json(
    spec: SweepSpec, rows: Sequence[Dict[str, object]], indent: int = 2
) -> str:
    """Serialise a sweep (spec + rows) for trajectory tracking."""
    payload = {
        "spec": {
            "algorithms": list(spec.algorithms),
            "grid": [list(pair) for pair in spec.grid],
            "schedulers": list(spec.schedulers),
            "trials": spec.trials,
            "base_seed": spec.base_seed,
            "max_steps": spec.max_steps,
        },
        "rows": list(rows),
    }
    return json.dumps(payload, indent=indent)
