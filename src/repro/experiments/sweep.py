"""Parallel sweep runner: fan experiment grids across a process pool.

The paper's tables and figures are sweeps over thousands of
``(algorithm, n, k, scheduler, seed)`` cells.  Each cell is an
independent simulation, so the sweep is embarrassingly parallel; this
module provides the deterministic plumbing:

* :class:`SweepSpec` — the grid description (algorithms x (n, k) pairs
  x schedulers x trials),
* :func:`expand_cells` — the spec flattened into :class:`SweepCell`\\ s
  in a fixed canonical order,
* :func:`cell_seed` — a stable per-cell seed derived by hashing the
  cell coordinates, so cell results never depend on sweep order,
  worker count, or which process ran them,
* :func:`cell_row` — the one row-shaping helper: a cell plus its
  :class:`RunResult` to the flat row every consumer sees,
* :func:`run_cell` — one cell to one flat result row (picklable both
  ways, so it can cross a process boundary),
* :func:`run_sweep` / :func:`execute_sweep` — the driver: a
  ``multiprocessing`` pool when ``processes > 1``, a plain loop
  otherwise, identical rows either way.

Determinism contract: ``run_sweep(spec, processes=1)`` and
``run_sweep(spec, processes=32)`` return byte-identical row lists.
This is what lets later PRs track benchmark trajectories cell by cell.

Sweeps are resumable: pass ``store=RunStore(dir)`` and every completed
cell streams into the content-addressed archive *as workers finish*
(the store is a checkpoint — a killed sweep loses at most the cells in
flight).  With ``resume=True`` (the default) cells whose spec hash is
already archived are served from the store without executing anything,
so re-running a completed sweep costs zero simulations and overlapping
sweeps only pay for their new cells.  :func:`rows_from_store` and
:func:`summarize_rows` turn an archive back into canonical rows and
aggregates without re-running — ``repro report`` can render from a
store alone.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import warnings
from dataclasses import dataclass
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.errors import (
    CampaignInterrupted,
    ConfigurationError,
    ProvenanceWarning,
)
from repro.experiments.runner import RunResult, run_experiment
from repro.registry import (
    build_scheduler,
    get_algorithm,
    parse_scheduler_spec,
    scheduler_names,
)
from repro.ring.faults import LinkSpec
from repro.sim.scheduler import Scheduler
from repro.spec import ExperimentSpec, PlacementSpec
from repro.store import RunRecord, RunStore, env_fingerprint

__all__ = [
    "SCHEDULER_SPECS",
    "SUMMARY_GROUP_KEYS",
    "SweepCell",
    "SweepOutcome",
    "SweepSpec",
    "cell_row",
    "cell_seed",
    "execute_sweep",
    "expand_cells",
    "make_scheduler",
    "rows_from_store",
    "run_cell",
    "run_sweep",
    "rows_to_json",
    "summarize_rows",
]

class _SchedulerSpecsView(Mapping):
    """Deprecated read-only view: spec name -> factory taking the cell seed.

    Kept so historical ``SCHEDULER_SPECS[name](seed)`` call sites keep
    working; the factories now delegate to
    :func:`repro.registry.build_scheduler`, so the registry is the only
    place schedulers are constructed.
    """

    def __getitem__(self, name: str) -> object:
        try:
            parse_scheduler_spec(name)
        except ConfigurationError:
            # Mapping contract: `in` / `.get` must see KeyError, not a
            # domain error, to keep legacy membership tests working.
            raise KeyError(name) from None
        return lambda seed, _name=name: build_scheduler(_name, seed=seed)

    def __iter__(self) -> Iterator[str]:
        return iter(scheduler_names())

    def __len__(self) -> int:
        return len(scheduler_names())


#: Deprecated registry view (use scheduler spec strings instead).
SCHEDULER_SPECS: Mapping[str, object] = _SchedulerSpecsView()


def make_scheduler(spec_name: str, seed: int) -> Scheduler:
    """Deprecated alias for :func:`repro.registry.build_scheduler`.

    The sweep runner used to own its own scheduler table; the typed
    registry replaced it.  ``spec_name`` may now be any scheduler spec
    string (``"laggard:victims=0,patience=5"``), not just a bare name.
    """
    warnings.warn(
        "repro.experiments.sweep.make_scheduler is deprecated; use "
        "repro.registry.build_scheduler",
        DeprecationWarning,
        stacklevel=2,
    )
    return build_scheduler(spec_name, seed=seed)


def cell_seed(
    base_seed: int,
    algorithm: str,
    ring_size: int,
    agent_count: int,
    scheduler: str,
    trial: int,
) -> int:
    """Derive a stable 63-bit seed from the cell coordinates.

    SHA-256 of the coordinate string, not Python's ``hash`` — the value
    must be identical across processes, interpreter runs and platforms.
    """
    key = f"{base_seed}|{algorithm}|{ring_size}x{agent_count}|{scheduler}|{trial}"
    digest = hashlib.sha256(key.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF


@dataclass(frozen=True)
class SweepCell:
    """One independent simulation in a sweep (picklable)."""

    algorithm: str
    ring_size: int
    agent_count: int
    scheduler: str
    trial: int
    seed: int
    max_steps: Optional[int] = None
    links: Optional[LinkSpec] = None

    def to_experiment_spec(self) -> ExperimentSpec:
        """The declarative :class:`~repro.spec.ExperimentSpec` of this cell.

        The cell seed doubles as the random-placement seed; the
        scheduler seed is decorrelated from it by a fixed XOR (no second
        hash needed).  ``run_cell`` executes exactly this spec, so a
        sweep is nothing but a grid of serializable experiment specs.
        ``links`` rides along verbatim: fault draws have their own seed
        inside the :class:`~repro.ring.faults.LinkSpec`, so cell seeds
        stay comparable between faulty and reliable sweeps.
        """
        return ExperimentSpec(
            algorithm=self.algorithm,
            placement=PlacementSpec(
                kind="random",
                ring_size=self.ring_size,
                agent_count=self.agent_count,
                seed=self.seed,
            ),
            scheduler=self.scheduler,
            scheduler_seed=self.seed ^ 0x5DEECE66D,
            max_steps=self.max_steps,
            links=self.links,
        )


@dataclass(frozen=True)
class SweepSpec:
    """A full sweep grid: the cross product of every axis."""

    algorithms: Tuple[str, ...]
    grid: Tuple[Tuple[int, int], ...]
    schedulers: Tuple[str, ...] = ("sync",)
    trials: int = 1
    base_seed: int = 0
    max_steps: Optional[int] = None
    links: Optional[LinkSpec] = None

    def __post_init__(self) -> None:
        for algorithm in self.algorithms:
            get_algorithm(algorithm)  # raises on unknown names
        for scheduler in self.schedulers:
            parse_scheduler_spec(scheduler)  # full spec strings are allowed
        if self.trials < 1:
            raise ConfigurationError("trials must be >= 1")
        if self.links is not None:
            if not isinstance(self.links, LinkSpec):
                raise ConfigurationError(
                    f"links must be a LinkSpec, got {type(self.links).__name__}"
                )
            if not self.links.active:
                # All-zero budgets mean reliable links; normalise so the
                # grid (and every cell spec hash) matches a links-less one.
                object.__setattr__(self, "links", None)

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready description of the grid (one schema, used by
        :func:`rows_to_json` and the CLI alike).  ``links`` is emitted
        only when set, so reliable sweep specs keep their historical
        serialised form."""
        out: Dict[str, object] = {
            "algorithms": list(self.algorithms),
            "grid": [list(pair) for pair in self.grid],
            "schedulers": list(self.schedulers),
            "trials": self.trials,
            "base_seed": self.base_seed,
            "max_steps": self.max_steps,
        }
        if self.links is not None:
            out["links"] = self.links.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SweepSpec":
        """Inverse of :meth:`to_dict` (the ``--spec file.json`` path).

        Grid pairs arrive as 2-lists from JSON; everything else maps
        straight onto the dataclass, with unknown keys rejected loudly
        so a mistyped field never silently falls back to a default.
        """
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"sweep spec must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "algorithms", "grid", "schedulers", "trials",
            "base_seed", "max_steps", "links",
        }
        if unknown:
            raise ConfigurationError(
                f"sweep spec has unknown keys {sorted(unknown)}"
            )
        try:
            algorithms = tuple(data["algorithms"])
            grid_pairs = data["grid"]
        except KeyError as missing:
            raise ConfigurationError(
                f"sweep spec is missing required key {missing}"
            ) from None
        grid = []
        for pair in grid_pairs:
            if not isinstance(pair, (list, tuple)) or len(pair) != 2:
                raise ConfigurationError(
                    f"sweep grid entries must be [n, k] pairs, got {pair!r}"
                )
            grid.append((int(pair[0]), int(pair[1])))
        max_steps = data.get("max_steps")
        links_data = data.get("links")
        return cls(
            algorithms=algorithms,
            grid=tuple(grid),
            schedulers=tuple(data.get("schedulers", ("sync",))),
            trials=int(data.get("trials", 1)),
            base_seed=int(data.get("base_seed", 0)),
            max_steps=None if max_steps is None else int(max_steps),
            links=None if links_data is None else LinkSpec.from_dict(links_data),
        )


def expand_cells(spec: SweepSpec) -> List[SweepCell]:
    """Flatten the spec into cells in canonical (stable) order."""
    cells = []
    for algorithm in spec.algorithms:
        for ring_size, agent_count in spec.grid:
            for scheduler in spec.schedulers:
                for trial in range(spec.trials):
                    cells.append(
                        SweepCell(
                            algorithm=algorithm,
                            ring_size=ring_size,
                            agent_count=agent_count,
                            scheduler=scheduler,
                            trial=trial,
                            seed=cell_seed(
                                spec.base_seed,
                                algorithm,
                                ring_size,
                                agent_count,
                                scheduler,
                                trial,
                            ),
                            max_steps=spec.max_steps,
                            links=spec.links,
                        )
                    )
    return cells


def _result_for_cell(cell: SweepCell) -> RunResult:
    return run_experiment(cell.to_experiment_spec())


def cell_row(cell: SweepCell, result: RunResult) -> Dict[str, object]:
    """The canonical flat row of one completed cell.

    This is the *only* place the sweep row schema is shaped — the
    executing path, the store-resume path and :func:`rows_from_store`
    all call it, so cached and freshly computed rows are byte-identical
    by construction.  ``scheduler`` reports the cell's spec name (not
    the instance's ``describe()`` text) and the cell coordinates ride
    along for grouping.
    """
    row = result.row()
    row["scheduler"] = cell.scheduler  # spec name, not describe() text
    row["trial"] = cell.trial
    row["seed"] = cell.seed
    return row


def run_cell(cell: SweepCell) -> Dict[str, object]:
    """Run one cell to quiescence and return its flat result row.

    Top-level function returning plain dicts so ``Pool.map`` can ship
    cells out and rows back across process boundaries.
    """
    return cell_row(cell, _result_for_cell(cell))


def _record_for_cell(
    indexed_cell: Tuple[int, SweepCell]
) -> Tuple[int, Dict[str, object]]:
    """Pool worker: run one cell, return its archived-record dict.

    Records (not rows) cross the process boundary so the parent can
    stream them straight into the store; the row is derived afterwards
    via :func:`cell_row`, exactly as on the cache-hit path.
    """
    index, cell = indexed_cell
    spec = cell.to_experiment_spec()
    result = run_experiment(spec)
    return index, result.to_record(spec).to_dict()


def _row_for_cell(
    indexed_cell: Tuple[int, SweepCell]
) -> Tuple[int, Dict[str, object]]:
    """Pool worker for storeless sweeps: flat rows only, no record
    envelope (spec dict + env fingerprint) to build, ship and re-parse."""
    index, cell = indexed_cell
    return index, run_cell(cell)


@dataclass(frozen=True)
class SweepOutcome:
    """What one sweep invocation did: the rows plus cache accounting."""

    rows: List[Dict[str, object]]
    total: int
    executed: int
    cached: int

    def describe(self) -> str:
        return (
            f"{self.total} cells: {self.executed} executed, "
            f"{self.cached} cached"
        )


def execute_sweep(
    spec: SweepSpec,
    processes: Optional[int] = None,
    *,
    store: Optional[RunStore] = None,
    resume: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    backend: str = "object",
    validate_backend: bool = False,
) -> SweepOutcome:
    """Run ``spec`` through an optional run store; return rows + stats.

    Without a store this is exactly the classic sweep.  With one:

    * ``resume=True`` (default) serves every cell whose spec content
      hash is already archived straight from the store — re-running a
      completed sweep executes **zero** cells,
    * every freshly executed cell is archived *as its worker finishes*
      (``imap_unordered``), so the store is a live checkpoint: killing
      the sweep loses at most the in-flight cells and a later
      ``resume`` run completes the remainder losslessly,
    * rows come back in canonical cell order regardless of which cells
      were cached, which were computed, and in what order workers
      finished — byte-identical to a storeless serial run.

    ``backend="batch"`` executes the pending cells on the columnar
    engine (:mod:`repro.sim.batch`): cells are grouped per (algorithm,
    n, k, scheduler, budget) and each group runs as one vectorized
    batch in the parent process.  Results — rows, archived records,
    content hashes — are byte-identical to the object path by
    construction; cells the batch backend does not cover silently fall
    back to the object pool.  ``validate_backend=True`` additionally
    re-runs a deterministic sample of every batch on the object engine
    and raises :class:`~repro.errors.BackendMismatch` on any
    divergence (the differential-oracle gate).

    ``progress(done, pending_total)`` is called after each *executed*
    cell is safely archived (or completed, when storeless); a callback
    that raises aborts the sweep without losing archived cells.
    """
    if backend not in ("object", "batch"):
        raise ConfigurationError(
            f"unknown sweep backend {backend!r} (choose 'object' or 'batch')"
        )
    cells = expand_cells(spec)
    if not cells:
        return SweepOutcome(rows=[], total=0, executed=0, cached=0)
    rows: List[Optional[Dict[str, object]]] = [None] * len(cells)
    pending: List[Tuple[int, SweepCell]] = []
    cached = 0
    if store is not None and resume:
        store.refresh()  # see cells other writers archived since open
        hit_indices: List[int] = []
        hit_hashes: List[str] = []
        for index, cell in enumerate(cells):
            content_hash = cell.to_experiment_spec().content_hash()
            if store.contains(content_hash):
                hit_indices.append(index)
                hit_hashes.append(content_hash)
            else:
                pending.append((index, cell))
        # Bulk-read the hits (one open per shard): on a fully warm
        # resume this IS the whole sweep, so per-record opens would
        # dominate the wall clock.
        foreign_envs: Dict[Tuple[Tuple[str, str], ...], int] = {}
        current_env = env_fingerprint()
        for index, record in zip(hit_indices, store.get_many(hit_hashes)):
            rows[index] = cell_row(cells[index], record.to_run_result())
            if record.env and record.env != current_env:
                key = tuple(sorted(record.env.items()))
                foreign_envs[key] = foreign_envs.get(key, 0) + 1
        cached = len(hit_indices)
        if foreign_envs:
            # Warn, don't refuse: mixed-provenance archives are often
            # fine (a patch release, a different host), but they must
            # never be *silent* — the consumer decides whether the mix
            # matters for their numbers.
            details = "; ".join(
                f"{count} from {dict(env)}"
                for env, count in sorted(foreign_envs.items())
            )
            warnings.warn(
                f"resume is reusing {sum(foreign_envs.values())} archived "
                f"cell(s) computed under a different environment than the "
                f"current {current_env} ({details}); pass resume=False to "
                f"recompute them here",
                ProvenanceWarning,
                stacklevel=2,
            )
    else:
        pending = list(enumerate(cells))

    # Storeless sweeps ship flat rows (the historical fast path); only
    # archiving sweeps pay for the record envelope crossing the pool.
    worker = _row_for_cell if store is None else _record_for_cell

    # Batch backend: peel the batchable cells off the pool's work list
    # and group them into homogeneous vectorizable batches.  Grouping by
    # scheduler spec keeps all-sync groups on the engine's fused round
    # path; unbatchable cells stay on `pool_pending` and run exactly as
    # before, so a partially covered sweep still completes.
    pool_pending = pending
    batch_groups: List[List[Tuple[int, SweepCell]]] = []
    if backend == "batch" and pending:
        from repro.sim.batch import batch_supported, run_batch

        grouped: Dict[Tuple[object, ...], List[Tuple[int, SweepCell]]] = {}
        pool_pending = []
        for index, cell in pending:
            if batch_supported(cell.to_experiment_spec()) is None:
                key = (
                    cell.algorithm,
                    cell.ring_size,
                    cell.agent_count,
                    cell.scheduler,
                    cell.max_steps,
                )
                grouped.setdefault(key, []).append((index, cell))
            else:
                pool_pending.append((index, cell))
        batch_groups = list(grouped.values())

    def _complete(index: int, payload: Dict[str, object], done: int) -> None:
        if store is None:
            rows[index] = payload
        else:
            record = RunRecord.from_dict(payload)
            # Checkpoint before anything else sees the row.  A
            # --no-resume run recomputed this cell on purpose, so the
            # fresh record must supersede any archived one — otherwise
            # the printed rows and the archive silently diverge.
            store.put(record, replace=not resume)
            rows[index] = cell_row(cells[index], record.to_run_result())
        if progress is not None:
            progress(done, len(pending))

    executed = 0
    try:
        for group in batch_groups:
            specs = [cell.to_experiment_spec() for _, cell in group]
            results = run_batch(specs, validate=validate_backend)
            for (index, cell), cell_spec, result in zip(group, specs, results):
                if store is None:
                    payload = cell_row(cell, result)
                else:
                    payload = result.to_record(cell_spec).to_dict()
                executed += 1
                _complete(index, payload, executed)
        if pool_pending:
            if processes is None:
                processes = multiprocessing.cpu_count()
            processes = max(1, min(processes, len(pool_pending)))
            if processes == 1:
                for done, (index, cell) in enumerate(
                    pool_pending, start=executed + 1
                ):
                    _, payload = worker((index, cell))
                    _complete(index, payload, done)
                    executed = done
            else:
                chunksize = max(1, len(pool_pending) // (processes * 4))
                with multiprocessing.Pool(processes) as pool:
                    completed = pool.imap_unordered(
                        worker, pool_pending, chunksize=chunksize
                    )
                    for done, (index, payload) in enumerate(
                        completed, start=executed + 1
                    ):
                        _complete(index, payload, done)
                        executed = done
    except KeyboardInterrupt:
        # Graceful degradation: everything completed so far is already
        # flushed (the store is written per-completion, before the row
        # is exposed), so tear down the pool and hand the caller an
        # honest partial outcome plus the exact way to finish the job —
        # never a raw traceback over work that is safely archived.
        partial = SweepOutcome(
            rows=[row for row in rows if row is not None],
            total=len(cells),
            executed=executed,
            cached=cached,
        )
        if store is not None:
            resume_hint = (
                f"re-run the same sweep with store={store.root} and "
                f"resume=True to finish the remaining "
                f"{len(pending) - executed} cell(s)"
            )
        else:
            resume_hint = (
                "no store was attached, so the partial rows are lost on "
                "exit; re-run with a store to make sweeps resumable"
            )
        raise CampaignInterrupted(
            f"sweep interrupted: {executed + cached} of {len(cells)} "
            f"cells done ({executed} executed, {cached} cached)",
            outcome=partial,
            resume_hint=resume_hint,
        ) from None
    return SweepOutcome(
        rows=rows, total=len(cells), executed=len(pending), cached=cached
    )


def run_sweep(
    spec: SweepSpec,
    processes: Optional[int] = None,
    *,
    store: Optional[RunStore] = None,
    resume: bool = True,
    progress: Optional[Callable[[int, int], None]] = None,
    backend: str = "object",
    validate_backend: bool = False,
) -> List[Dict[str, object]]:
    """Run every cell of ``spec``; return rows in canonical cell order.

    ``processes`` defaults to the machine's CPU count, capped at the
    number of cells.  With one process (or one cell) the pool is skipped
    entirely.  Completed cells stream back as workers finish, but the
    returned rows are identical regardless of parallelism.  ``store``/
    ``resume``/``progress``/``backend``/``validate_backend`` are
    forwarded to :func:`execute_sweep` (which also reports cache-hit
    accounting).
    """
    return execute_sweep(
        spec,
        processes,
        store=store,
        resume=resume,
        progress=progress,
        backend=backend,
        validate_backend=validate_backend,
    ).rows


def rows_from_store(
    store: RunStore, spec: SweepSpec, *, strict: bool = False
) -> List[Dict[str, object]]:
    """The canonical rows of ``spec`` served purely from an archive.

    No cell is executed: rows are reconstructed (in canonical cell
    order, byte-identical to a live sweep) for every cell whose spec
    hash is archived.  Missing cells are skipped — or, with
    ``strict=True``, raise a :class:`ConfigurationError` naming how
    many are absent (use :func:`execute_sweep` to fill them in).
    """
    store.refresh()
    hit_cells = []
    hit_hashes = []
    missing = 0
    for cell in expand_cells(spec):
        content_hash = cell.to_experiment_spec().content_hash()
        if store.contains(content_hash):
            hit_cells.append(cell)
            hit_hashes.append(content_hash)
        else:
            missing += 1
    rows = [
        cell_row(cell, record.to_run_result())
        for cell, record in zip(hit_cells, store.get_many(hit_hashes))
    ]
    if strict and missing:
        raise ConfigurationError(
            f"store {store.root} is missing {missing} of the sweep's "
            f"{missing + len(rows)} cells; run execute_sweep(..., "
            f"store=...) to fill them in"
        )
    return rows


#: The coordinates one summary row aggregates over (trials collapse).
SUMMARY_GROUP_KEYS: Tuple[str, ...] = ("algorithm", "n", "k", "scheduler")


def summarize_rows(
    rows: Sequence[Dict[str, object]]
) -> List[Dict[str, object]]:
    """Aggregate trial rows per :data:`SUMMARY_GROUP_KEYS` group.

    Means are reported for moves/time, maxima for memory (a high-water
    measure), and ``uniform`` is the conjunction over trials.
    """
    groups: Dict[Tuple[object, ...], List[Dict[str, object]]] = {}
    for row in rows:
        key = tuple(row[name] for name in SUMMARY_GROUP_KEYS)
        groups.setdefault(key, []).append(row)
    summary = []
    for key, members in groups.items():
        trials = len(members)
        mean_moves = sum(int(m["total_moves"]) for m in members) / trials
        times = [m["ideal_time"] for m in members if m["ideal_time"] is not None]
        entry: Dict[str, object] = dict(zip(SUMMARY_GROUP_KEYS, key))
        entry.update(
            {
                "trials": trials,
                "mean_moves": round(mean_moves, 1),
                "mean_ideal_time": (
                    round(sum(times) / len(times), 1) if times else None
                ),
                "max_memory_bits": max(int(m["max_memory_bits"]) for m in members),
                "uniform": all(bool(m["uniform"]) for m in members),
            }
        )
        summary.append(entry)
    return summary


def rows_to_json(
    spec: SweepSpec, rows: Sequence[Dict[str, object]], indent: int = 2
) -> str:
    """Serialise a sweep (spec + rows) for trajectory tracking."""
    payload = {"spec": spec.to_dict(), "rows": list(rows)}
    return json.dumps(payload, indent=indent)
