"""Multi-trial experiment statistics (seeded aggregation).

Single runs are deterministic given a placement and a scheduler seed,
but Table 1 claims hold over *distributions* of initial configurations.
:func:`aggregate_trials` runs one algorithm over many seeded random
placements (optionally many scheduler seeds each) and reports
mean / min / max / stdev per metric, so benchmark tables can show
variation rather than single draws.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.runner import RunResult, run_experiment
from repro.ring.placement import random_placement
from repro.registry import build_scheduler
from repro.sim.scheduler import Scheduler

__all__ = ["MetricSummary", "TrialAggregate", "aggregate_trials"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread of one metric across trials."""

    mean: float
    minimum: float
    maximum: float
    stdev: float

    @staticmethod
    def of(values: Sequence[float]) -> "MetricSummary":
        if not values:
            raise ConfigurationError("cannot summarise zero values")
        mean = sum(values) / len(values)
        if len(values) == 1:
            spread = 0.0
        else:
            spread = math.sqrt(
                sum((value - mean) ** 2 for value in values) / (len(values) - 1)
            )
        return MetricSummary(
            mean=mean, minimum=min(values), maximum=max(values), stdev=spread
        )

    def describe(self, digits: int = 1) -> str:
        return (
            f"{self.mean:.{digits}f} "
            f"[{self.minimum:.{digits}f}..{self.maximum:.{digits}f}] "
            f"(sd {self.stdev:.{digits}f})"
        )


@dataclass(frozen=True)
class TrialAggregate:
    """All trials of one (algorithm, n, k) cell."""

    algorithm: str
    ring_size: int
    agent_count: int
    trials: int
    all_uniform: bool
    total_moves: MetricSummary
    ideal_time: Optional[MetricSummary]
    max_memory_bits: MetricSummary
    results: Sequence[RunResult]

    def row(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "n": self.ring_size,
            "k": self.agent_count,
            "trials": self.trials,
            "moves": self.total_moves.describe(0),
            "time": self.ideal_time.describe(0) if self.ideal_time else "-",
            "memory_bits": self.max_memory_bits.describe(0),
            "uniform": self.all_uniform,
        }


def aggregate_trials(
    algorithm: str,
    ring_size: int,
    agent_count: int,
    trials: int = 5,
    seed: int = 0,
    scheduler_factory: Optional[Callable[[int], Scheduler]] = None,
    memory_audit_interval: int = 16,
) -> TrialAggregate:
    """Run ``trials`` seeded random placements and summarise the metrics.

    ``scheduler_factory`` maps a trial index to a scheduler; the default
    keeps the synchronous scheduler (so ideal time is measured).  Pass
    ``lambda i: RandomScheduler(i)`` to sample asynchronous executions.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    rng = random.Random(seed)
    results: List[RunResult] = []
    for index in range(trials):
        placement = random_placement(ring_size, agent_count, rng)
        scheduler = (
            scheduler_factory(index) if scheduler_factory else build_scheduler("sync")
        )
        results.append(
            run_experiment(
                algorithm,
                placement,
                scheduler=scheduler,
                memory_audit_interval=memory_audit_interval,
            )
        )
    times = [result.ideal_time for result in results]
    return TrialAggregate(
        algorithm=algorithm,
        ring_size=ring_size,
        agent_count=agent_count,
        trials=trials,
        all_uniform=all(result.ok for result in results),
        total_moves=MetricSummary.of([result.total_moves for result in results]),
        ideal_time=(
            MetricSummary.of([t for t in times]) if all(t is not None for t in times) else None
        ),
        max_memory_bits=MetricSummary.of(
            [result.max_memory_bits for result in results]
        ),
        results=tuple(results),
    )
