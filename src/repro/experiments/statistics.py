"""Multi-trial experiment statistics (seeded aggregation).

Single runs are deterministic given a placement and a scheduler seed,
but Table 1 claims hold over *distributions* of initial configurations.
:func:`aggregate_trials` runs one algorithm over many seeded random
placements (optionally many scheduler seeds each) and reports
mean / min / max / stdev per metric, so benchmark tables can show
variation rather than single draws.

Trials are content-addressed: pass ``store=RunStore(dir)`` and every
trial whose spec is already archived is served from the store instead
of re-simulated (the placements are declarative, so the aggregate over
archived runs equals the aggregate over fresh ones).  Store-backed
aggregation requires a declarative ``scheduler_spec`` — an opaque
``scheduler_factory`` cannot be content-addressed.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.experiments.runner import RunResult, run_experiment
from repro.ring.placement import random_placement
from repro.spec import ExperimentSpec
from repro.store import RunStore, cached_run
from repro.sim.scheduler import Scheduler

__all__ = ["MetricSummary", "TrialAggregate", "aggregate_trials"]


@dataclass(frozen=True)
class MetricSummary:
    """Mean / spread of one metric across trials."""

    mean: float
    minimum: float
    maximum: float
    stdev: float

    @staticmethod
    def of(values: Sequence[float]) -> "MetricSummary":
        if not values:
            raise ConfigurationError("cannot summarise zero values")
        mean = sum(values) / len(values)
        if len(values) == 1:
            spread = 0.0
        else:
            spread = math.sqrt(
                sum((value - mean) ** 2 for value in values) / (len(values) - 1)
            )
        return MetricSummary(
            mean=mean, minimum=min(values), maximum=max(values), stdev=spread
        )

    def describe(self, digits: int = 1) -> str:
        return (
            f"{self.mean:.{digits}f} "
            f"[{self.minimum:.{digits}f}..{self.maximum:.{digits}f}] "
            f"(sd {self.stdev:.{digits}f})"
        )


@dataclass(frozen=True)
class TrialAggregate:
    """All trials of one (algorithm, n, k) cell."""

    algorithm: str
    ring_size: int
    agent_count: int
    trials: int
    all_uniform: bool
    total_moves: MetricSummary
    ideal_time: Optional[MetricSummary]
    max_memory_bits: MetricSummary
    results: Sequence[RunResult]

    def row(self) -> Dict[str, object]:
        return {
            "algorithm": self.algorithm,
            "n": self.ring_size,
            "k": self.agent_count,
            "trials": self.trials,
            "moves": self.total_moves.describe(0),
            "time": self.ideal_time.describe(0) if self.ideal_time else "-",
            "memory_bits": self.max_memory_bits.describe(0),
            "uniform": self.all_uniform,
        }


def aggregate_trials(
    algorithm: str,
    ring_size: int,
    agent_count: int,
    trials: int = 5,
    seed: int = 0,
    scheduler_factory: Optional[Callable[[int], Scheduler]] = None,
    memory_audit_interval: int = 16,
    scheduler_spec: Optional[str] = None,
    store: Optional[RunStore] = None,
) -> TrialAggregate:
    """Run ``trials`` seeded random placements and summarise the metrics.

    ``scheduler_factory`` maps a trial index to a scheduler; the default
    keeps the synchronous scheduler (so ideal time is measured).  Pass
    ``lambda i: RandomScheduler(i)`` to sample asynchronous executions —
    or, preferably, a declarative ``scheduler_spec`` string such as
    ``"random"`` (the trial index fills its unpinned seed parameters),
    which also makes the trials archivable: with ``store=`` given, each
    trial spec's content hash is looked up first and only missing trials
    are simulated.
    """
    if trials <= 0:
        raise ConfigurationError(f"trials must be positive, got {trials}")
    if scheduler_factory is not None and scheduler_spec is not None:
        raise ConfigurationError(
            "pass either scheduler_factory or scheduler_spec, not both"
        )
    if scheduler_factory is not None and store is not None:
        raise ConfigurationError(
            "store-backed aggregation needs a declarative scheduler_spec; "
            "an opaque scheduler_factory cannot be content-addressed"
        )
    rng = random.Random(seed)
    results: List[RunResult] = []
    for index in range(trials):
        placement = random_placement(ring_size, agent_count, rng)
        if scheduler_factory is not None:
            results.append(
                run_experiment(
                    algorithm,
                    placement,
                    scheduler=scheduler_factory(index),
                    memory_audit_interval=memory_audit_interval,
                )
            )
            continue
        spec = ExperimentSpec.for_placement(
            algorithm,
            placement,
            scheduler=scheduler_spec or "sync",
            scheduler_seed=index,
            memory_audit_interval=memory_audit_interval,
        )
        results.append(cached_run(spec, store)[0])
    times = [result.ideal_time for result in results]
    return TrialAggregate(
        algorithm=algorithm,
        ring_size=ring_size,
        agent_count=agent_count,
        trials=trials,
        all_uniform=all(result.ok for result in results),
        total_moves=MetricSummary.of([result.total_moves for result in results]),
        ideal_time=(
            MetricSummary.of([t for t in times]) if all(t is not None for t in times) else None
        ),
        max_memory_bits=MetricSummary.of(
            [result.max_memory_bits for result in results]
        ),
        results=tuple(results),
    )
