"""JSON serialisation of experiment results.

Sweeps take minutes at large sizes; users want to keep the numbers.
:func:`results_to_json` / :func:`results_from_json` round-trip
:class:`RunResult` lists (placement, scheduler, metrics, verification)
through plain JSON so results can be archived, diffed and re-plotted
without re-running.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.analysis.verification import VerificationReport
from repro.errors import ConfigurationError
from repro.experiments.runner import RunResult
from repro.ring.placement import Placement

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "results_to_json",
    "results_from_json",
    "save_results",
    "load_results",
]

_FORMAT_VERSION = 1


def result_to_dict(result: RunResult) -> dict:
    """Flatten one RunResult into JSON-safe primitives."""
    return {
        "algorithm": result.algorithm,
        "ring_size": result.placement.ring_size,
        "homes": list(result.placement.homes),
        "scheduler": result.scheduler,
        "total_moves": result.total_moves,
        "max_moves": result.max_moves,
        "ideal_time": result.ideal_time,
        "max_memory_bits": result.max_memory_bits,
        "messages_sent": result.messages_sent,
        "final_positions": list(result.final_positions),
        "report": {
            "ok": result.report.ok,
            "ring_size": result.report.ring_size,
            "agent_count": result.report.agent_count,
            "gaps": list(result.report.gaps),
            "failures": list(result.report.failures),
        },
    }


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a RunResult from :func:`result_to_dict` output."""
    try:
        report_data = data["report"]
        report = VerificationReport(
            ok=report_data["ok"],
            ring_size=report_data["ring_size"],
            agent_count=report_data["agent_count"],
            gaps=tuple(report_data["gaps"]),
            failures=tuple(report_data["failures"]),
        )
        return RunResult(
            algorithm=data["algorithm"],
            placement=Placement(
                ring_size=data["ring_size"], homes=tuple(data["homes"])
            ),
            scheduler=data["scheduler"],
            total_moves=data["total_moves"],
            max_moves=data["max_moves"],
            ideal_time=data["ideal_time"],
            max_memory_bits=data["max_memory_bits"],
            messages_sent=data["messages_sent"],
            report=report,
            final_positions=tuple(data["final_positions"]),
        )
    except KeyError as missing:
        raise ConfigurationError(
            f"malformed result record: missing key {missing}"
        ) from None


def results_to_json(results: Sequence[RunResult]) -> str:
    """Serialise results (with a format version) to a JSON string."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "results": [result_to_dict(result) for result in results],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def results_from_json(text: str) -> List[RunResult]:
    """Parse a string produced by :func:`results_to_json`."""
    payload = json.loads(text)
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported results format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    return [result_from_dict(record) for record in payload["results"]]


def save_results(results: Sequence[RunResult], path: Union[str, Path]) -> None:
    """Write results to a JSON file."""
    Path(path).write_text(results_to_json(results), encoding="utf-8")


def load_results(path: Union[str, Path]) -> List[RunResult]:
    """Read results from a JSON file."""
    return results_from_json(Path(path).read_text(encoding="utf-8"))
