"""JSON serialisation of experiment results.

Sweeps take minutes at large sizes; users want to keep the numbers.
:func:`results_to_json` / :func:`results_from_json` round-trip
:class:`RunResult` lists (placement, scheduler, metrics, verification)
through plain JSON so results can be archived, diffed and re-plotted
without re-running.

Since the content-addressed run store landed (:mod:`repro.store`),
this module is a thin *versioned wrapper* over the one canonical
result schema — :func:`repro.store.records.result_to_payload` /
:func:`result_from_payload`, the same converters behind
``RunResult.to_record``/``from_record`` — rather than a second
hand-maintained copy of it.  The flat-file format itself is unchanged
(format version 1 files keep loading bit for bit); files written by a
*newer* repro are rejected with an explicit error instead of being
best-effort parsed into silently wrong results.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Sequence, Union

from repro.errors import ConfigurationError
from repro.experiments.runner import RunResult
from repro.store.records import result_from_payload, result_to_payload

__all__ = [
    "result_to_dict",
    "result_from_dict",
    "results_to_json",
    "results_from_json",
    "save_results",
    "load_results",
]

_FORMAT_VERSION = 1


def result_to_dict(result: RunResult) -> dict:
    """Flatten one RunResult into JSON-safe primitives.

    Delegates to the canonical payload schema shared with the run
    store, so there is exactly one place the result shape is defined.
    """
    return result_to_payload(result)


def result_from_dict(data: dict) -> RunResult:
    """Rebuild a RunResult from :func:`result_to_dict` output."""
    return result_from_payload(data)


def results_to_json(results: Sequence[RunResult]) -> str:
    """Serialise results (with a format version) to a JSON string."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "results": [result_to_dict(result) for result in results],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def results_from_json(text: str) -> List[RunResult]:
    """Parse a string produced by :func:`results_to_json`.

    The format version is checked before any record is touched:
    versions newer than this build understands raise a
    :class:`ConfigurationError` naming both versions (upgrade to read
    the file), and a missing or non-integer version is rejected as not
    a results file at all.
    """
    payload = json.loads(text)
    version = payload.get("format_version") if isinstance(payload, dict) else None
    if not isinstance(version, int):
        raise ConfigurationError(
            f"not a results file: format_version is {version!r} "
            f"(expected an integer)"
        )
    if version > _FORMAT_VERSION:
        raise ConfigurationError(
            f"results file uses format version {version}, but this build "
            f"reads at most {_FORMAT_VERSION}; upgrade repro to read it"
        )
    if version < 1:
        raise ConfigurationError(
            f"unsupported results format version {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    records = payload.get("results")
    if not isinstance(records, list):
        raise ConfigurationError(
            "not a results file: no 'results' list"
        )
    return [result_from_dict(record) for record in records]


def save_results(results: Sequence[RunResult], path: Union[str, Path]) -> None:
    """Write results to a JSON file."""
    Path(path).write_text(results_to_json(results), encoding="utf-8")


def load_results(path: Union[str, Path]) -> List[RunResult]:
    """Read results from a JSON file."""
    return results_from_json(Path(path).read_text(encoding="utf-8"))
