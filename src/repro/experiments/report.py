"""One-shot report generator: re-run every experiment, emit markdown.

``python -m repro report`` (or :func:`generate_report`) re-runs the
complete experiment suite at a chosen scale and renders a markdown
report mirroring EXPERIMENTS.md: Table 1 rows with measured slopes,
the lower bounds, the impossibility construction, the adaptivity
sweep, the figure configurations and the rendezvous contrast.  The
``quick`` profile (default) finishes in well under a minute; ``full``
matches the benchmark sizes.

Pass ``store=RunStore(dir)`` (CLI: ``repro report --store DIR``) and
every plain experiment run in the report is content-addressed: runs
already archived — by an earlier report, a sweep, or ``repro run
--store`` — render from the store without re-executing, so a report
over a warm archive costs only the constructions (impossibility,
lower-bound optima) that are not plain runs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.complexity import loglog_slope
from repro.baselines.rendezvous import RendezvousAgent
from repro.experiments.figures import FIGURES
from repro.experiments.impossibility import demonstrate_impossibility
from repro.experiments.lower_bound import quarter_sweep
from repro.experiments.table1 import format_rows, symmetry_sweep
from repro.ring.placement import Placement, random_placement
from repro.sim.engine import Engine
from repro.spec import ExperimentSpec
from repro.store import RunStore, cached_run

__all__ = ["ReportProfile", "PROFILES", "generate_report"]


@dataclass(frozen=True)
class ReportProfile:
    """Sweep sizes for one report scale."""

    name: str
    n_sweep: Tuple[int, ...]
    k_sweep: Tuple[int, ...]
    fixed_n: int
    fixed_k: int
    degrees: Tuple[int, ...]
    quarter_sizes: Tuple[Tuple[int, int], ...]


def _run(algorithm: str, placement: Placement, store: Optional[RunStore]):
    """One content-addressed report run (archived when a store is given)."""
    spec = ExperimentSpec.for_placement(algorithm, placement)
    return cached_run(spec, store)[0]


PROFILES: Dict[str, ReportProfile] = {
    "quick": ReportProfile(
        name="quick",
        n_sweep=(32, 64, 128),
        k_sweep=(4, 8, 16),
        fixed_n=96,
        fixed_k=8,
        degrees=(1, 2, 4),
        quarter_sizes=((48, 8),),
    ),
    "full": ReportProfile(
        name="full",
        n_sweep=(64, 128, 256, 512),
        k_sweep=(4, 8, 16, 32),
        fixed_n=256,
        fixed_k=8,
        degrees=(1, 2, 4, 8),
        quarter_sizes=((64, 8), (128, 16)),
    ),
}


def _table1_section(
    profile: ReportProfile,
    algorithm: str,
    seed: int,
    store: Optional[RunStore] = None,
) -> List[str]:
    rng = random.Random(seed)
    results = [
        _run(algorithm, random_placement(n, profile.fixed_k, rng), store)
        for n in profile.n_sweep
    ]
    rows = [result.row() for result in results]
    times = [result.ideal_time for result in results]
    moves = [result.total_moves for result in results]
    lines = [f"### {algorithm}", "", "```"]
    lines.extend(format_rows(rows).splitlines())
    lines.append("```")
    lines.append("")
    lines.append(
        "- log-log slope of ideal time vs n: "
        f"**{loglog_slope(profile.n_sweep, times):.2f}**"
    )
    lines.append(
        "- log-log slope of total moves vs n: "
        f"**{loglog_slope(profile.n_sweep, moves):.2f}**"
    )
    lines.append(f"- all runs uniform: **{all(r.ok for r in results)}**")
    lines.append("")
    return lines


def _adaptivity_section(
    profile: ReportProfile, store: Optional[RunStore] = None
) -> List[str]:
    results = symmetry_sweep(
        profile.fixed_n * 2, profile.fixed_k * 2, profile.degrees, store=store
    )
    rows = [result.row() for result in results]
    slope = loglog_slope(profile.degrees, [r.total_moves for r in results])
    lines = ["## Result 4 adaptivity (moves ~ kn/l)", "", "```"]
    lines.extend(format_rows(rows).splitlines())
    lines.append("```")
    lines.append("")
    lines.append(f"- log-log slope of moves vs l: **{slope:.2f}** (expected ~ -1)")
    lines.append("")
    return lines


def _lower_bound_section(profile: ReportProfile) -> List[str]:
    lines = ["## Theorem 1 lower bound (quarter-packed)", "", "```"]
    rows = []
    for row in quarter_sweep(profile.quarter_sizes):
        entry = {
            "n": row.ring_size,
            "k": row.agent_count,
            "kn/16": row.quarter_floor,
            "optimal": row.optimal_moves,
        }
        for name in sorted(row.algorithm_moves):
            entry[f"{name}/opt"] = round(row.ratio(name), 1)
        rows.append(entry)
    lines.extend(format_rows(rows).splitlines())
    lines.extend(["```", ""])
    return lines


def _impossibility_section() -> List[str]:
    base = FIGURES["theorem_5_base"].placement
    outcome = demonstrate_impossibility(base)
    return [
        "## Theorem 5 impossibility construction",
        "",
        f"- base ring R: n={base.ring_size}, k={base.agent_count}, "
        f"d={outcome.base_gap}; T(E_R)={outcome.rounds_in_base} rounds",
        f"- expanded R': n={outcome.expanded.ring_size}, "
        f"k={outcome.expanded.agent_count}, required gap 2d={outcome.expanded_gap}",
        f"- window gaps of the deceived run: {outcome.observed_prefix_gaps}",
        f"- uniform on R': **{outcome.report.ok}** (theorem predicts False)",
        "",
    ]


def _figures_section(store: Optional[RunStore] = None) -> List[str]:
    lines = ["## Figure configurations x all algorithms", "", "```"]
    rows = []
    for name, config in sorted(FIGURES.items()):
        for algorithm in ("known_k_full", "known_k_logspace", "unknown"):
            result = _run(algorithm, config.placement, store)
            rows.append(
                {
                    "figure": name,
                    "algorithm": algorithm,
                    "l": config.symmetry_degree,
                    "moves": result.total_moves,
                    "uniform": result.ok,
                }
            )
    lines.extend(format_rows(rows).splitlines())
    lines.extend(["```", ""])
    return lines


def _rendezvous_section(store: Optional[RunStore] = None) -> List[str]:
    lines = ["## Rendezvous contrast", ""]
    for name in ("figure_1a", "figure_1b"):
        placement = FIGURES[name].placement
        agents = [RendezvousAgent(placement.agent_count) for _ in placement.homes]
        engine = Engine(placement, agents)
        engine.run()
        gathered = len(set(engine.final_positions().values())) == 1
        deployment = _run("known_k_full", placement, store).ok
        lines.append(
            f"- {name} (l={placement.symmetry_degree}): rendezvous "
            f"{'succeeds' if gathered else 'detects symmetry and stops'}; "
            f"uniform deployment succeeds: **{deployment}**"
        )
    lines.append("")
    return lines


def generate_report(
    profile_name: str = "quick",
    seed: int = 0,
    store: Optional[RunStore] = None,
) -> str:
    """Re-run the experiment suite and return a markdown report.

    With ``store=`` given, plain experiment runs are served from the
    content-addressed archive when present and archived when not — a
    second report over the same store re-executes none of them.
    """
    if profile_name not in PROFILES:
        raise KeyError(
            f"unknown profile {profile_name!r}; choose from {sorted(PROFILES)}"
        )
    profile = PROFILES[profile_name]
    lines: List[str] = [
        "# Experiment report",
        "",
        f"Profile: **{profile.name}** (n sweep {list(profile.n_sweep)}, "
        f"k sweep {list(profile.k_sweep)}, degrees {list(profile.degrees)}).",
        "",
        "## Table 1 sweeps (time and moves vs n)",
        "",
    ]
    for algorithm in ("known_k_full", "known_n_full", "known_k_logspace", "unknown"):
        lines.extend(_table1_section(profile, algorithm, seed, store=store))
    lines.extend(_adaptivity_section(profile, store=store))
    lines.extend(_lower_bound_section(profile))
    lines.extend(_impossibility_section())
    lines.extend(_figures_section(store=store))
    lines.extend(_rendezvous_section(store=store))
    return "\n".join(lines)
