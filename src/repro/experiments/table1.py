"""Table 1 sweep drivers (E1, E2, E4) and report formatting.

The paper's Table 1 states, per algorithm, the memory, time and move
complexities.  :func:`table1_sweep` measures all three across (n, k)
grids; :func:`symmetry_sweep` fixes (n, k) and sweeps the symmetry
degree ``l`` for the relaxed algorithm (Result 4's adaptivity, E16).
:func:`format_rows` renders aligned text tables for benchmark output
and EXPERIMENTS.md.
"""

from __future__ import annotations

import random
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.experiments.runner import RunResult
from repro.ring.placement import (
    Placement,
    periodic_placement,
    random_placement,
)
from repro.spec import ExperimentSpec
from repro.store import RunStore, cached_run

__all__ = [
    "table1_sweep",
    "symmetry_sweep",
    "symmetry_placement",
    "format_rows",
]


def table1_sweep(
    algorithm: str,
    grid: Sequence[Tuple[int, int]],
    seed: int = 0,
    trials: int = 1,
    store: Optional[RunStore] = None,
    links=None,
) -> List[RunResult]:
    """Run ``algorithm`` over random placements for every (n, k) in ``grid``.

    With ``store=`` given, each run is content-addressed: archived
    placements are served from the store and fresh ones are archived,
    so repeating a sweep (or overlapping grids) re-simulates nothing.
    ``links`` (a :class:`~repro.ring.faults.LinkSpec`) subjects every
    run to the same link-fault model.
    """
    rng = random.Random(seed)
    results = []
    for n, k in grid:
        for _ in range(trials):
            placement = random_placement(n, k, rng)
            spec = ExperimentSpec.for_placement(algorithm, placement, links=links)
            results.append(cached_run(spec, store)[0])
    return results


def symmetry_placement(
    ring_size: int, agent_count: int, degree: int, seed: int = 0
) -> Placement:
    """A placement with exact symmetry degree ``degree`` on ~ring_size nodes.

    The fundamental block has ``agent_count / degree`` agents over
    ``ring_size / degree`` nodes; gaps are drawn randomly and the last
    gap absorbs the remainder so the block sums exactly.
    """
    if agent_count % degree != 0 or ring_size % degree != 0:
        raise ConfigurationError(
            f"degree {degree} must divide both n={ring_size} and k={agent_count}"
        )
    block_agents = agent_count // degree
    block_nodes = ring_size // degree
    if block_agents > block_nodes:
        raise ConfigurationError("more agents than nodes in the fundamental block")
    rng = random.Random(seed)
    while True:
        positions = sorted(rng.sample(range(block_nodes), block_agents))
        gaps = [
            (positions[(i + 1) % block_agents] - positions[i]) % block_nodes
            or block_nodes
            for i in range(block_agents)
        ]
        candidate = tuple(gaps)
        from repro.analysis.sequences import minimal_period

        if block_agents == 1 or minimal_period(candidate) == block_agents:
            return periodic_placement(candidate, degree)


def symmetry_sweep(
    ring_size: int,
    agent_count: int,
    degrees: Sequence[int],
    algorithm: str = "unknown",
    seed: int = 0,
    store: Optional[RunStore] = None,
) -> List[RunResult]:
    """Fix (n, k); measure the relaxed algorithm across symmetry degrees.

    ``store`` memoises runs by spec content hash, as in
    :func:`table1_sweep`.
    """
    results = []
    for degree in degrees:
        placement = symmetry_placement(ring_size, agent_count, degree, seed=seed)
        spec = ExperimentSpec.for_placement(algorithm, placement)
        results.append(cached_run(spec, store)[0])
    return results


def format_rows(
    rows: Iterable[Dict[str, object]], columns: Optional[Sequence[str]] = None
) -> str:
    """Render dictionaries as an aligned text table."""
    rows = list(rows)
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    widths = {
        column: max(len(str(column)), *(len(str(row.get(column, ""))) for row in rows))
        for column in columns
    }
    header = "  ".join(str(column).ljust(widths[column]) for column in columns)
    separator = "  ".join("-" * widths[column] for column in columns)
    lines = [header, separator]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(column, "")).ljust(widths[column]) for column in columns)
        )
    return "\n".join(lines)
