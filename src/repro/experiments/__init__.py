"""Experiment drivers for every table and figure (see DESIGN.md E1-E18)."""

from repro.experiments.comparison import AlgorithmComparison, compare_algorithms
from repro.experiments.figures import FIGURES, FigureConfig, figure
from repro.experiments.impossibility import (
    ImpossibilityOutcome,
    demonstrate_impossibility,
    expanded_placement,
    lemma1_window_agreement,
)
from repro.experiments.lower_bound import (
    LowerBoundRow,
    lower_bound_comparison,
    quarter_sweep,
)
from repro.experiments.report import PROFILES, ReportProfile, generate_report
from repro.experiments.runner import (
    ALGORITHMS,
    RunResult,
    build_agents,
    build_engine,
    run_experiment,
)
from repro.experiments.serialize import (
    load_results,
    results_from_json,
    results_to_json,
    save_results,
)
from repro.experiments.statistics import (
    MetricSummary,
    TrialAggregate,
    aggregate_trials,
)
from repro.experiments.sweep import (
    SCHEDULER_SPECS,
    SweepCell,
    SweepSpec,
    cell_seed,
    expand_cells,
    run_cell,
    run_sweep,
    rows_to_json,
    summarize_rows,
)
from repro.experiments.table1 import (
    format_rows,
    symmetry_placement,
    symmetry_sweep,
    table1_sweep,
)

__all__ = [
    "MetricSummary",
    "PROFILES",
    "ReportProfile",
    "TrialAggregate",
    "aggregate_trials",
    "generate_report",
    "load_results",
    "results_from_json",
    "results_to_json",
    "save_results",
    "ALGORITHMS",
    "AlgorithmComparison",
    "compare_algorithms",
    "FIGURES",
    "FigureConfig",
    "figure",
    "ImpossibilityOutcome",
    "LowerBoundRow",
    "RunResult",
    "build_agents",
    "build_engine",
    "demonstrate_impossibility",
    "expanded_placement",
    "format_rows",
    "lemma1_window_agreement",
    "lower_bound_comparison",
    "quarter_sweep",
    "run_experiment",
    "symmetry_placement",
    "symmetry_sweep",
    "table1_sweep",
    "SCHEDULER_SPECS",
    "SweepCell",
    "SweepSpec",
    "cell_seed",
    "expand_cells",
    "run_cell",
    "run_sweep",
    "rows_to_json",
    "summarize_rows",
]
