"""Theorem 1/2 lower bounds and the optimality comparison (E5, E6).

Theorem 1: from the quarter-packed configuration (Figure 3) any
algorithm needs Omega(kn) total moves — explicitly at least
``(k/4) * (n/4)``.  Theorem 2: time is Omega(n) likewise.  The drivers
here measure, per configuration:

* the exact omniscient minimum (``repro.baselines.optimal``),
* the explicit ``kn/16`` floor,
* each algorithm's measured total moves and ideal time,

so benchmarks can report the constant-factor gap (the paper's
"asymptotically optimal in total moves" claim, E5/E6).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from repro.baselines.optimal import optimal_uniform_plan, quarter_bound
from repro.experiments.runner import run_experiment
from repro.ring.placement import Placement, quarter_packed_placement

__all__ = ["LowerBoundRow", "lower_bound_comparison", "quarter_sweep"]


@dataclass(frozen=True)
class LowerBoundRow:
    """One configuration's bound-vs-measured numbers."""

    ring_size: int
    agent_count: int
    quarter_floor: int  # (k/4)*(n/4), Theorem 1's explicit bound
    optimal_moves: int  # exact omniscient minimum for this instance
    algorithm_moves: Dict[str, int]
    algorithm_time: Dict[str, Optional[int]]

    def ratio(self, algorithm: str) -> float:
        """Measured moves over the exact optimum (>= 1, O(1) expected)."""
        if self.optimal_moves == 0:
            return 1.0
        return self.algorithm_moves[algorithm] / self.optimal_moves


def lower_bound_comparison(
    placement: Placement,
    algorithms: Sequence[str] = ("known_k_full", "known_k_logspace", "unknown"),
) -> LowerBoundRow:
    """Measure every algorithm against the bounds on one placement."""
    plan = optimal_uniform_plan(placement)
    moves: Dict[str, int] = {}
    times: Dict[str, Optional[int]] = {}
    for algorithm in algorithms:
        result = run_experiment(algorithm, placement)
        moves[algorithm] = result.total_moves
        times[algorithm] = result.ideal_time
    return LowerBoundRow(
        ring_size=placement.ring_size,
        agent_count=placement.agent_count,
        quarter_floor=quarter_bound(placement.ring_size, placement.agent_count),
        optimal_moves=plan.total_moves,
        algorithm_moves=moves,
        algorithm_time=times,
    )


def quarter_sweep(
    sizes: Sequence[Tuple[int, int]],
    algorithms: Sequence[str] = ("known_k_full", "known_k_logspace", "unknown"),
) -> Tuple[LowerBoundRow, ...]:
    """Run the comparison over quarter-packed configs of the given (n, k)."""
    return tuple(
        lower_bound_comparison(quarter_packed_placement(n, k), algorithms)
        for n, k in sizes
    )
