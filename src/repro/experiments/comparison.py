"""Head-to-head comparison of all registered algorithms (one placement).

Running every algorithm on the same initial configuration shows the
Table 1 trade-offs concretely: Algorithm 1 is time-optimal but pays
O(k log n) memory; the log-space algorithm trades a log k time factor
for O(log n) memory; the relaxed algorithm needs no knowledge but pays
the 14n-per-agent constant (and cannot detect termination).  The
omniscient optimum anchors the move column.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.baselines.optimal import optimal_uniform_plan
from repro.experiments.runner import ALGORITHMS, RunResult, run_experiment
from repro.ring.placement import Placement
from repro.sim.scheduler import Scheduler

__all__ = ["AlgorithmComparison", "compare_algorithms"]


@dataclass(frozen=True)
class AlgorithmComparison:
    """All algorithms' results on one placement, plus the optimum."""

    placement: Placement
    optimal_moves: int
    results: Dict[str, RunResult]

    @property
    def all_uniform(self) -> bool:
        return all(result.ok for result in self.results.values())

    def rows(self) -> List[Dict[str, object]]:
        """One table row per algorithm, ready for ``format_rows``."""
        rows = []
        for name in sorted(self.results):
            result = self.results[name]
            rows.append(
                {
                    "algorithm": name,
                    "moves": result.total_moves,
                    "moves/optimal": (
                        round(result.total_moves / self.optimal_moves, 1)
                        if self.optimal_moves
                        else "-"
                    ),
                    "ideal_time": result.ideal_time,
                    "memory_bits": result.max_memory_bits,
                    "messages": result.messages_sent,
                    "uniform": result.ok,
                }
            )
        return rows

    def winner(self, metric: str) -> str:
        """Algorithm with the smallest value of ``metric`` (row key)."""
        rows = {row["algorithm"]: row for row in self.rows()}
        return min(
            rows,
            key=lambda name: (
                rows[name][metric] if isinstance(rows[name][metric], int) else 1 << 62
            ),
        )


def compare_algorithms(
    placement: Placement,
    algorithms: Optional[Sequence[str]] = None,
    scheduler_factory=None,
    memory_audit_interval: int = 1,
) -> AlgorithmComparison:
    """Run each algorithm on ``placement`` and bundle the outcomes.

    ``scheduler_factory`` maps an algorithm name to a fresh scheduler
    (default: a fresh synchronous scheduler each, so ideal times are
    comparable).
    """
    names = list(algorithms) if algorithms is not None else sorted(ALGORITHMS)
    results = {}
    for name in names:
        scheduler: Optional[Scheduler] = (
            scheduler_factory(name) if scheduler_factory else None
        )
        results[name] = run_experiment(
            name,
            placement,
            scheduler=scheduler,
            memory_audit_interval=memory_audit_interval,
        )
    plan = optimal_uniform_plan(placement)
    return AlgorithmComparison(
        placement=placement, optimal_moves=plan.total_moves, results=results
    )
