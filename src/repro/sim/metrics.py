"""Metrics collection: moves, ideal time, per-agent memory (Table 1).

The three complexity measures of the paper are observed directly:

* **total moves** — every link traversal of every agent,
* **ideal time** — rounds of the :class:`SynchronousScheduler` (other
  schedulers leave the time field ``None``, since asynchronous wall
  clocks are meaningless in the model),
* **agent memory** — the high-water mark of
  :meth:`repro.sim.agent.Agent.memory_bits` over the whole execution,
  audited after every atomic action.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

__all__ = ["Metrics"]


@dataclass
class Metrics:
    """Mutable metrics accumulator owned by one engine run."""

    moves_per_agent: Dict[int, int] = field(default_factory=dict)
    activations_per_agent: Dict[int, int] = field(default_factory=dict)
    memory_bits_per_agent: Dict[int, int] = field(default_factory=dict)
    messages_sent: int = 0
    messages_delivered: int = 0
    tokens_released: int = 0
    rounds: Optional[int] = None

    # ------------------------------------------------------------------
    # Recording (engine-facing)
    # ------------------------------------------------------------------

    def record_activation(self, agent_id: int) -> None:
        self.activations_per_agent[agent_id] = (
            self.activations_per_agent.get(agent_id, 0) + 1
        )

    def record_move(self, agent_id: int) -> None:
        self.moves_per_agent[agent_id] = self.moves_per_agent.get(agent_id, 0) + 1

    def record_memory(self, agent_id: int, bits: int) -> None:
        current = self.memory_bits_per_agent.get(agent_id, 0)
        if bits > current:
            self.memory_bits_per_agent[agent_id] = bits

    def record_broadcast(self, recipients: int) -> None:
        self.messages_sent += recipients

    def record_delivery(self, count: int) -> None:
        self.messages_delivered += count

    def record_token(self) -> None:
        self.tokens_released += 1

    def record_round(self) -> None:
        self.rounds = (self.rounds or 0) + 1

    # ------------------------------------------------------------------
    # Reading (analysis-facing)
    # ------------------------------------------------------------------

    @property
    def total_moves(self) -> int:
        """Total link traversals across all agents (the paper's move count)."""
        return sum(self.moves_per_agent.values())

    @property
    def max_moves(self) -> int:
        """The largest per-agent move count."""
        return max(self.moves_per_agent.values(), default=0)

    @property
    def max_memory_bits(self) -> int:
        """High-water memory of the most memory-hungry agent, in bits."""
        return max(self.memory_bits_per_agent.values(), default=0)

    @property
    def total_activations(self) -> int:
        """Total atomic actions executed."""
        return sum(self.activations_per_agent.values())

    def summary(self) -> Dict[str, Optional[int]]:
        """Flat dictionary used by benchmark tables and EXPERIMENTS.md."""
        return {
            "total_moves": self.total_moves,
            "max_moves": self.max_moves,
            "ideal_time": self.rounds,
            "max_memory_bits": self.max_memory_bits,
            "messages_sent": self.messages_sent,
            "tokens_released": self.tokens_released,
            "activations": self.total_activations,
        }
