"""The asynchronous discrete-event engine (paper Section 2.1).

The engine owns a :class:`repro.ring.network.Ring`, the agents, their
message inboxes and the schedule.  One engine *step* is one atomic
action of one agent:

1. the agent arrives from the incoming link (if queued at the head) or
   is activated in place (if staying),
2. all pending messages are delivered at once,
3. the agent computes (its protocol generator runs to the next yield),
4. an optional broadcast is appended to the inboxes of all *other*
   agents staying at the node,
5. the agent moves forward (entering the tail of the out-link's FIFO
   queue) or stays.

Model guarantees enforced here:

* **Initial buffer rule** — agents start inside the incoming buffer of
  their home node, so each agent acts at its home before any other
  agent can visit it.
* **Enabledness** — only agents that can actually act are schedulable:
  queue heads, staying non-suspended agents, and suspended agents with
  a non-empty inbox.  Halted agents are never schedulable.
* **Quiescence** — the run ends when no agent is enabled: for the
  termination-detection algorithms this means all agents halted; for
  the relaxed algorithm it is the paper's "all suspended, no messages
  pending, all links empty" condition (Definition 2).

Incremental enabledness
-----------------------

The engine maintains the enabled-agent set *live* instead of rescanning
all ``k`` agents before every scheduler batch.  Every state transition
updates the set in O(1):

* **dequeue** (arrival) — the actor leaves the queue head; the new head,
  if any, becomes enabled (queued agents are never halted or suspended:
  halt and suspend both imply STAY, and ``Agent.act`` clears the
  suspended flag before the protocol runs, so whatever enters a queue is
  an active agent),
* **settle** — the actor becomes enabled unless it halted or suspended
  (its inbox is always empty at this point: it was drained in step 2 and
  broadcasts never target the acting agent),
* **move** — the actor becomes enabled iff it is alone in the
  destination queue (i.e. it is the head),
* **wake** — a broadcast appended to the empty inbox of a suspended
  agent enables it (halted agents are never suspended, so they can
  accumulate messages without ever re-entering the set).

Single-agent-per-batch adversaries (``RandomScheduler`` and friends)
therefore cost O(1) *bookkeeping* per atomic action instead of an O(k)
rescan of locations, queue heads and inboxes.  (The per-batch handoff
to the scheduler still sorts the live set — O(E log E) for E enabled
agents — so the net effect is a large constant-factor win, ~4x at
n=1024, k=32, rather than a strict O(steps) bound.)  The original
full rescan survives as :meth:`Engine.recompute_enabled_agents`, the
differential oracle; construct the engine with ``validate_enabledness=
True`` to assert ``incremental == recompute`` after every batch.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import (
    ConfigurationError,
    SimulationError,
    SimulationLimitExceeded,
)
from repro.ring.configuration import Configuration
from repro.ring.faults import PHANTOM, LinkSpec
from repro.ring.network import Ring
from repro.ring.placement import Placement
from repro.sim.actions import Move, NodeView
from repro.sim.agent import Agent
from repro.sim.metrics import Metrics
from repro.sim.scheduler import Scheduler
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder

__all__ = ["Engine"]

#: Default safety multiplier: the paper's algorithms use O(k n) moves and
#: comparable numbers of waits; 64x that with slack catches livelocks
#: without tripping on legitimate executions.
_DEFAULT_STEP_SLACK = 64


class Engine:
    """Drives one execution of one algorithm on one initial configuration."""

    def __init__(
        self,
        placement: Placement,
        agents: Sequence[Agent],
        scheduler: Optional[Scheduler] = None,
        trace: Optional[TraceRecorder] = None,
        max_steps: Optional[int] = None,
        memory_audit_interval: int = 16,
        collect_metrics: bool = True,
        validate_enabledness: bool = False,
        record_views: bool = False,
        links: Optional[LinkSpec] = None,
    ) -> None:
        if len(agents) != placement.agent_count:
            raise ConfigurationError(
                f"{len(agents)} agents supplied for a placement of "
                f"{placement.agent_count} homes"
            )
        self._placement = placement
        self._ring = Ring(placement.ring_size, links)
        self._agents: Dict[int, Agent] = dict(enumerate(agents))
        self._homes: Dict[int, int] = dict(enumerate(placement.homes))
        self._inboxes: Dict[int, List[object]] = {i: [] for i in self._agents}
        self._started: Dict[int, bool] = {i: False for i in self._agents}
        if scheduler is None:
            # Late import: the registry lazily imports the algorithm
            # modules, which themselves import this module.
            from repro.registry import build_scheduler

            scheduler = build_scheduler("sync")
        self._scheduler = scheduler
        self._trace = trace
        self._record_views = record_views
        if record_views:
            for agent in self._agents.values():
                agent.begin_view_recording()
        self._metrics = Metrics()
        self._collect_metrics = collect_metrics
        self._validate = validate_enabledness
        self._steps = 0
        self._activation_log: List[int] = []
        if max_steps is None:
            budget = _DEFAULT_STEP_SLACK * placement.ring_size * placement.agent_count
            max_steps = budget + 10_000
        self._max_steps = max_steps
        if memory_audit_interval < 1:
            raise ConfigurationError("memory audit interval must be >= 1")
        self._audit_interval = memory_audit_interval
        # Hot-path references into the ring's structures (see
        # Ring.fast_state for the synchronisation contract).
        fast = self._ring.fast_state()
        self._tokens = fast.tokens
        self._staying = fast.staying
        self._queues = fast.queues
        self._locations = fast.locations
        self._faults = fast.faults
        self._size = placement.ring_size
        # The paper's C0: every agent sits in the incoming buffer of its
        # home node, guaranteeing it acts there first.  Initial placement
        # is fault-free: faults apply to *moves* on links, not to the
        # paper's C0 buffer rule.
        for agent_id, home in self._homes.items():
            self._ring.enqueue(agent_id, home)
        # Live enabled set: initially the head of every non-empty queue.
        self._enabled: Set[int] = {queue[0] for queue in self._queues if queue}

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    @property
    def ring(self) -> Ring:
        """The ring substrate (read-mostly; mutate only via agent actions)."""
        return self._ring

    @property
    def links(self) -> Optional[LinkSpec]:
        """The active link-fault spec, or ``None`` on reliable links."""
        return self._ring.links

    @property
    def metrics(self) -> Metrics:
        """Metrics accumulated so far."""
        return self._metrics

    @property
    def placement(self) -> Placement:
        """The initial configuration this engine was built from."""
        return self._placement

    @property
    def scheduler(self) -> Scheduler:
        """The scheduler driving this engine's batches."""
        return self._scheduler

    @property
    def steps(self) -> int:
        """Atomic actions executed so far."""
        return self._steps

    @property
    def activation_log(self) -> Tuple[int, ...]:
        """The agent-id sequence of every atomic action so far.

        Feed it to :class:`repro.sim.scheduler.ReplayScheduler` to
        reproduce this execution exactly on a fresh engine.
        """
        return tuple(self._activation_log)

    def agent(self, agent_id: int) -> Agent:
        """Return the agent object with the given id."""
        return self._agents[agent_id]

    @property
    def agent_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._agents))

    def enabled_agents(self) -> List[int]:
        """Ids that can take an atomic action right now, sorted ascending.

        With active link faults the list also contains *link actor*
        pseudo-ids (``-(v + 1)`` for the link into node ``v``) whenever
        that link has pending work — a non-empty delay buffer or a
        phantom at the queue head.  On reliable links every id is a
        plain agent id, exactly as before.
        """
        return sorted(self._enabled)

    def recompute_enabled_agents(self) -> List[int]:
        """Rebuild the enabled set from first principles (O(k) oracle).

        This is the seed engine's full rescan, kept as the differential
        oracle for the incremental set: the two must agree after every
        batch (``validate_enabledness=True`` asserts exactly that).
        With link faults it additionally derives each link actor's
        enabledness from the delay buffers and queue heads, and treats
        lost and buffer-held agents as disabled.
        """
        faults = self._faults
        enabled: List[int] = []
        if faults is not None:
            for node in range(self._size):
                queue = self._queues[node]
                if faults.buffers[node] or (queue and queue[0] == PHANTOM):
                    enabled.append(-(node + 1))
            enabled.sort()
        for agent_id, agent in sorted(self._agents.items()):
            if agent.halted:
                continue
            if faults is not None and agent_id in faults.lost:
                continue
            kind, node = self._ring.locate(agent_id)
            if kind == "queue":
                if self._ring.queue_head(node) == agent_id:
                    enabled.append(agent_id)
            elif kind == "buffer":
                pass  # held by the link until its delay drains
            else:
                if not agent.suspended or self._inboxes[agent_id]:
                    enabled.append(agent_id)
        return enabled

    def check_enabledness_invariant(self) -> None:
        """Raise :class:`SimulationError` if incremental != recomputed."""
        incremental = sorted(self._enabled)
        recomputed = self.recompute_enabled_agents()
        if incremental != recomputed:
            raise SimulationError(
                "incremental enabled set diverged from the full recompute: "
                f"incremental={incremental} recomputed={recomputed} "
                f"at step {self._steps}"
            )

    @property
    def quiescent(self) -> bool:
        """True when no agent is enabled (Definitions 1 and 2 terminal state)."""
        return not self._enabled

    def run(self) -> Metrics:
        """Run to quiescence; raise on exceeding the step budget."""
        while self._enabled:
            self._run_batch()
        return self._metrics

    def run_rounds(self, rounds: int) -> Metrics:
        """Run at most ``rounds`` scheduler batches (may stop earlier).

        Boundary contract: ``rounds <= 0`` runs nothing and returns the
        current metrics unchanged, and an engine that is already
        quiescent stays untouched (the scheduler is never consulted for
        an empty enabled set, so no scheduler RNG draws happen on
        boundary calls — :mod:`repro.sim.scheduler`'s consumption-order
        contract relies on this).
        """
        for _ in range(rounds):
            if not self._enabled:
                break
            self._run_batch()
        return self._metrics

    def run_until(self, predicate, max_rounds: int = 1_000_000) -> bool:
        """Run batches until ``predicate(engine)`` holds or quiescence.

        Returns ``True`` when the predicate fired, ``False`` when the
        run quiesced first.  Useful for watching for intermediate
        conditions ("some agent suspended", "half the agents halted")
        without writing the loop by hand.

        Boundary contract:

        * the predicate is evaluated *before* the first round — a
          predicate that already holds returns ``True`` with zero
          rounds run (and zero scheduler draws),
        * each evaluation happens at a batch boundary, exactly once per
          boundary: on quiescence the predicate was just found false at
          the top of the loop, so the run returns ``False`` without
          re-evaluating it (a side-effectful predicate is never
          double-called at the same boundary),
        * ``max_rounds`` elapsing performs one final boundary
          evaluation and returns its verdict; ``max_rounds=0`` is
          therefore a pure predicate probe that runs nothing.
        """
        for _ in range(max_rounds):
            if predicate(self):
                return True
            if not self._enabled:
                return False
            self._run_batch()
        return predicate(self)

    def iter_rounds(self):
        """Yield ``self`` after every scheduler batch until quiescence.

        Enables ``for _ in engine.iter_rounds(): ...`` observation loops
        (the timeline recorder and several examples use this shape).
        """
        while self._enabled:
            self._run_batch()
            yield self

    def step(self, agent_id: int) -> None:
        """Execute one atomic action of ``agent_id``, bypassing the scheduler.

        This is the single-step driver the model checker and property
        tests use to explore *chosen* interleavings: the caller picks any
        currently enabled agent and the engine performs exactly one
        atomic action.  Raises :class:`SimulationError` when the agent is
        not enabled (disabled, halted, mid-queue, or unknown).
        """
        if agent_id not in self._enabled:
            raise SimulationError(
                f"agent {agent_id} is not enabled "
                f"(enabled: {sorted(self._enabled)})"
            )
        if agent_id < 0:
            self._activate_link(agent_id)
        else:
            self._activate(agent_id)
        if self._validate:
            self.check_enabledness_invariant()

    def fork(self) -> "Engine":
        """Return an independent copy of the full simulation state.

        The copy-on-branch primitive of the model checker: the clone
        owns deep copies of the ring, inboxes and enabled set, and each
        agent is rebuilt by view replay (:meth:`repro.sim.agent.Agent.fork`),
        so stepping the clone never disturbs the original.  Requires the
        engine to have been built with ``record_views=True``.

        The clone shares the (stateless from its point of view)
        scheduler object but starts with fresh, empty metrics and no
        trace recorder — forks exist for state-space exploration, not
        accounting.  The activation log and step count carry over, so a
        violating fork's :attr:`activation_log` is directly replayable.
        """
        if not self._record_views:
            raise SimulationError(
                "cannot fork an engine built without record_views=True"
            )
        clone = Engine.__new__(Engine)
        clone._placement = self._placement
        clone._ring = self._ring.clone()
        clone._agents = {
            agent_id: agent.fork() for agent_id, agent in self._agents.items()
        }
        clone._homes = dict(self._homes)
        # Message payloads are immutable values; a shallow list copy
        # fully detaches the inboxes.
        clone._inboxes = {
            agent_id: list(inbox) for agent_id, inbox in self._inboxes.items()
        }
        clone._started = dict(self._started)
        clone._scheduler = self._scheduler
        clone._trace = None
        clone._record_views = True
        clone._metrics = Metrics()
        clone._collect_metrics = self._collect_metrics
        clone._validate = self._validate
        clone._steps = self._steps
        clone._activation_log = list(self._activation_log)
        clone._max_steps = self._max_steps
        clone._audit_interval = self._audit_interval
        fast = clone._ring.fast_state()
        clone._tokens = fast.tokens
        clone._staying = fast.staying
        clone._queues = fast.queues
        clone._locations = fast.locations
        clone._faults = fast.faults
        clone._size = self._size
        clone._enabled = set(self._enabled)
        return clone

    def snapshot(self) -> Configuration:
        """Return the current global configuration ``C = (S, T, M, P, Q)``.

        The snapshot carries full message contents (``inboxes``) and the
        per-agent started flags on top of the classic 5-tuple, so its
        canonical form (see :meth:`Configuration.canonical`) identifies
        the global state exactly — the model checker's memoisation key.
        """
        return Configuration(
            ring_size=self._ring.size,
            agent_states={
                agent_id: agent.state_fingerprint()
                for agent_id, agent in self._agents.items()
            },
            tokens=self._ring.token_counts,
            inbox_sizes={
                agent_id: len(inbox) for agent_id, inbox in self._inboxes.items()
            },
            staying={
                node: tuple(sorted(self._ring.staying_at(node)))
                for node in range(self._ring.size)
            },
            queues={
                node: self._ring.queue_contents(node)
                for node in range(self._ring.size)
            },
            inboxes={
                agent_id: tuple(inbox) for agent_id, inbox in self._inboxes.items()
            },
            started=dict(self._started),
            faults=None if self._faults is None else self._faults.snapshot(),
        )

    def final_positions(self) -> Dict[int, int]:
        """Map agent id -> node for all staying agents (post-quiescence)."""
        positions = {}
        faults = self._faults
        for agent_id in self._agents:
            if faults is not None and agent_id in faults.lost:
                raise SimulationError(
                    f"agent {agent_id} was lost in transit (link fault)"
                )
            kind, node = self._ring.locate(agent_id)
            if kind != "node":
                raise SimulationError(
                    f"agent {agent_id} is still in transit toward node {node}"
                )
            positions[agent_id] = node
        return positions

    # ------------------------------------------------------------------
    # Execution internals
    # ------------------------------------------------------------------

    def _run_batch(self) -> None:
        enabled = self._enabled
        batch = self._scheduler.next_batch(sorted(enabled))
        if not batch:
            raise SimulationError("scheduler returned an empty batch")
        activated = False
        for agent_id in batch:
            # An earlier activation in the batch can disable a later
            # agent (e.g. by moving into the queue slot ahead of it).
            if agent_id in enabled:
                if agent_id < 0:
                    self._activate_link(agent_id)
                else:
                    self._activate(agent_id)
                activated = True
        if not activated:
            # A well-behaved batch is a subsequence of ``enabled``, so its
            # first entry is always still enabled.  Zero activations means
            # the scheduler named stale/unknown agents — fail loudly
            # instead of looping forever without consuming step budget.
            raise SimulationError(
                f"scheduler batch {batch!r} activated no enabled agent "
                f"(enabled: {sorted(enabled)})"
            )
        if self._scheduler.counts_time and self._collect_metrics:
            self._metrics.record_round()
        if self._validate:
            self.check_enabledness_invariant()

    def _activate(self, agent_id: int) -> None:
        steps = self._steps + 1
        self._steps = steps
        self._activation_log.append(agent_id)
        if steps > self._max_steps:
            raise SimulationLimitExceeded(
                f"exceeded {self._max_steps} atomic actions without quiescence "
                f"(n={self._size}, k={len(self._agents)}, "
                f"scheduler={self._scheduler.describe()})"
            )
        agent = self._agents[agent_id]
        enabled = self._enabled
        locations = self._locations
        tracing = self._trace is not None
        metrics = self._metrics if self._collect_metrics else None

        enabled.discard(agent_id)
        code = locations.pop(agent_id)
        if code < 0:
            # Arrival: the actor is the queue head (only heads are enabled).
            node = -code - 1
            arrived = True
            queue = self._queues[node]
            queue.popleft()
            if queue:
                head = queue[0]
                if head >= 0:
                    enabled.add(head)  # the new head can act now
                else:
                    # A phantom surfaced at the head: the link actor
                    # consumes it (only reachable with active faults).
                    enabled.add(-(node + 1))
            if tracing:
                self._record(TraceEventKind.ARRIVE, agent_id, node)
        else:
            node = code
            arrived = False
            self._staying[node].discard(agent_id)
            if tracing:
                self._record(TraceEventKind.ACT_IN_PLACE, agent_id, node)

        inbox = self._inboxes[agent_id]
        if inbox:
            messages = tuple(inbox)
            inbox.clear()
            if metrics is not None:
                metrics.record_delivery(len(messages))
        else:
            messages = ()
        staying_here = self._staying[node]
        view = NodeView(
            tokens=self._tokens[node],
            agents_present=len(staying_here),
            messages=messages,
            arrived=arrived,
        )

        if self._started[agent_id]:
            action = agent.act(view)
        else:
            self._started[agent_id] = True
            action = agent.start(view)

        # Apply steps 3-5 (inlined: this runs once per atomic action).
        if action.release_token:
            self._tokens[node] += 1
            if metrics is not None:
                metrics.record_token()
            if tracing:
                self._record(TraceEventKind.TOKEN, agent_id, node)
        payload = action.broadcast
        if payload is not None:
            recipients = sorted(staying_here)
            inboxes = self._inboxes
            agents = self._agents
            for recipient in recipients:
                recipient_inbox = inboxes[recipient]
                if not recipient_inbox and agents[recipient].suspended:
                    # Wake: halted agents are never suspended, so this
                    # only ever re-enables genuinely sleeping agents.
                    enabled.add(recipient)
                    if tracing:
                        self._record(TraceEventKind.WAKE, recipient, node)
                recipient_inbox.append(payload)
            if metrics is not None:
                metrics.record_broadcast(len(recipients))
            if tracing:
                self._record(TraceEventKind.BROADCAST, agent_id, node, detail=payload)
        if action.move is Move.FORWARD:
            destination = node + 1
            if destination == self._size:
                destination = 0
            if self._faults is not None:
                self._move_with_faults(agent_id, destination)
            else:
                queue = self._queues[destination]
                queue.append(agent_id)
                locations[agent_id] = -(destination + 1)
                if len(queue) == 1:
                    enabled.add(agent_id)  # entered an empty queue: head at once
            if metrics is not None:
                metrics.record_move(agent_id)
            if tracing:
                self._record(TraceEventKind.MOVE, agent_id, node)
        else:
            staying_here.add(agent_id)
            locations[agent_id] = node
            if not (action.halt or action.suspend):
                # The inbox is empty here (drained above; broadcasts never
                # target the actor), so a suspending agent is disabled
                # until a wake and a halting agent is disabled forever.
                enabled.add(agent_id)
            if tracing:
                self._record(TraceEventKind.SETTLE, agent_id, node)
                if action.halt:
                    self._record(TraceEventKind.HALT, agent_id, node)
                if action.suspend:
                    self._record(TraceEventKind.SUSPEND, agent_id, node)
        if metrics is not None:
            metrics.record_activation(agent_id)
            if (
                steps % self._audit_interval == 0
                or action.halt
                or action.suspend
            ):
                metrics.record_memory(agent_id, agent.memory_bits())

    def _move_with_faults(self, agent_id: int, destination: int) -> None:
        """Place a forward-moving agent on the (faulty) link into ``destination``.

        One deterministic draw sequence per move event, keyed on the
        global move ordinal (see :mod:`repro.ring.faults` for why the
        key must be label-invariant): loss first (budget permitting),
        then duplication, then the delay of the surviving copy.  A
        delay of zero onto an empty buffer is the reliable fast path —
        direct enqueue, identical to the fault-free engine — so a
        ``delay=0`` spec with loss/dup budgets spent behaves exactly
        like reliable links from that point on.
        """
        faults = self._faults
        spec = faults.spec
        ordinal = faults.ordinal
        faults.ordinal = ordinal + 1
        if faults.loss_used < spec.loss and spec.draw_loss(ordinal):
            # Dropped in transit: the agent is nowhere on the ring and
            # never acts again (its entry in _locations stays popped).
            faults.loss_used += 1
            faults.lost.add(agent_id)
            return
        duplicate = faults.dup_used < spec.dup and spec.draw_dup(ordinal)
        if duplicate:
            faults.dup_used += 1
        delay = spec.draw_delay(ordinal)
        buffer = faults.buffers[destination]
        if delay == 0 and not buffer:
            queue = self._queues[destination]
            queue.append(agent_id)
            self._locations[agent_id] = -(destination + 1)
            if queue[0] == agent_id:
                self._enabled.add(agent_id)
            if duplicate:
                queue.append(PHANTOM)
        else:
            # FIFO delay buffer: the entry (and its phantom, riding
            # immediately behind) drains into the queue in send order.
            buffer.append([agent_id, delay])
            self._locations[agent_id] = -(destination + 1 + self._size)
            if duplicate:
                buffer.append([PHANTOM, 0])
            self._enabled.add(-(destination + 1))

    def _activate_link(self, actor_id: int) -> None:
        """One atomic action of the link actor into node ``-(actor_id) - 1``.

        Deterministic priority: a phantom at the queue head is consumed
        first; otherwise the delay buffer's head counts down one tick
        (transferring to the queue tail when it reaches zero).  Link
        actions count as steps and appear in the activation log — they
        are schedulable, replayable choices — but touch no per-agent
        metrics.
        """
        steps = self._steps + 1
        self._steps = steps
        self._activation_log.append(actor_id)
        if steps > self._max_steps:
            raise SimulationLimitExceeded(
                f"exceeded {self._max_steps} atomic actions without quiescence "
                f"(n={self._size}, k={len(self._agents)}, "
                f"scheduler={self._scheduler.describe()})"
            )
        node = -actor_id - 1
        faults = self._faults
        enabled = self._enabled
        queue = self._queues[node]
        if queue and queue[0] == PHANTOM:
            queue.popleft()
            if queue:
                head = queue[0]
                if head >= 0:
                    enabled.add(head)  # the duplicate's victim surfaces
        else:
            delivered = self._ring.tick_buffer(node)
            if delivered is not None and delivered >= 0:
                if queue[0] == delivered:
                    enabled.add(delivered)
        if queue and queue[0] == PHANTOM:
            pending = True
        else:
            pending = bool(faults.buffers[node])
        if pending:
            enabled.add(actor_id)
        else:
            enabled.discard(actor_id)

    def _record(
        self,
        kind: TraceEventKind,
        agent_id: int,
        node: int,
        detail: Optional[object] = None,
    ) -> None:
        self._trace.record(
            TraceEvent(
                step=self._steps,
                kind=kind,
                agent_id=agent_id,
                node=node,
                detail=detail,
            )
        )
