"""The asynchronous discrete-event engine (paper Section 2.1).

The engine owns a :class:`repro.ring.network.Ring`, the agents, their
message inboxes and the schedule.  One engine *step* is one atomic
action of one agent:

1. the agent arrives from the incoming link (if queued at the head) or
   is activated in place (if staying),
2. all pending messages are delivered at once,
3. the agent computes (its protocol generator runs to the next yield),
4. an optional broadcast is appended to the inboxes of all *other*
   agents staying at the node,
5. the agent moves forward (entering the tail of the out-link's FIFO
   queue) or stays.

Model guarantees enforced here:

* **Initial buffer rule** — agents start inside the incoming buffer of
  their home node, so each agent acts at its home before any other
  agent can visit it.
* **Enabledness** — only agents that can actually act are schedulable:
  queue heads, staying non-suspended agents, and suspended agents with
  a non-empty inbox.  Halted agents are never schedulable.
* **Quiescence** — the run ends when no agent is enabled: for the
  termination-detection algorithms this means all agents halted; for
  the relaxed algorithm it is the paper's "all suspended, no messages
  pending, all links empty" condition (Definition 2).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import (
    ConfigurationError,
    SimulationError,
    SimulationLimitExceeded,
)
from repro.ring.configuration import Configuration
from repro.ring.network import Ring
from repro.ring.placement import Placement
from repro.sim.actions import Action, Move, NodeView
from repro.sim.agent import Agent
from repro.sim.metrics import Metrics
from repro.sim.scheduler import Scheduler, SynchronousScheduler
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder

__all__ = ["Engine"]

#: Default safety multiplier: the paper's algorithms use O(k n) moves and
#: comparable numbers of waits; 64x that with slack catches livelocks
#: without tripping on legitimate executions.
_DEFAULT_STEP_SLACK = 64


class Engine:
    """Drives one execution of one algorithm on one initial configuration."""

    def __init__(
        self,
        placement: Placement,
        agents: Sequence[Agent],
        scheduler: Optional[Scheduler] = None,
        trace: Optional[TraceRecorder] = None,
        max_steps: Optional[int] = None,
        memory_audit_interval: int = 16,
    ) -> None:
        if len(agents) != placement.agent_count:
            raise ConfigurationError(
                f"{len(agents)} agents supplied for a placement of "
                f"{placement.agent_count} homes"
            )
        self._placement = placement
        self._ring = Ring(placement.ring_size)
        self._agents: Dict[int, Agent] = dict(enumerate(agents))
        self._homes: Dict[int, int] = dict(enumerate(placement.homes))
        self._inboxes: Dict[int, List[object]] = {i: [] for i in self._agents}
        self._started: Dict[int, bool] = {i: False for i in self._agents}
        self._scheduler = scheduler or SynchronousScheduler()
        self._trace = trace
        self._metrics = Metrics()
        self._steps = 0
        self._activation_log: List[int] = []
        if max_steps is None:
            budget = _DEFAULT_STEP_SLACK * placement.ring_size * placement.agent_count
            max_steps = budget + 10_000
        self._max_steps = max_steps
        if memory_audit_interval < 1:
            raise ConfigurationError("memory audit interval must be >= 1")
        self._audit_interval = memory_audit_interval
        # The paper's C0: every agent sits in the incoming buffer of its
        # home node, guaranteeing it acts there first.
        for agent_id, home in self._homes.items():
            self._ring.enqueue(agent_id, home)

    # ------------------------------------------------------------------
    # Public surface
    # ------------------------------------------------------------------

    @property
    def ring(self) -> Ring:
        """The ring substrate (read-mostly; mutate only via agent actions)."""
        return self._ring

    @property
    def metrics(self) -> Metrics:
        """Metrics accumulated so far."""
        return self._metrics

    @property
    def placement(self) -> Placement:
        """The initial configuration this engine was built from."""
        return self._placement

    @property
    def steps(self) -> int:
        """Atomic actions executed so far."""
        return self._steps

    @property
    def activation_log(self) -> Tuple[int, ...]:
        """The agent-id sequence of every atomic action so far.

        Feed it to :class:`repro.sim.scheduler.ReplayScheduler` to
        reproduce this execution exactly on a fresh engine.
        """
        return tuple(self._activation_log)

    def agent(self, agent_id: int) -> Agent:
        """Return the agent object with the given id."""
        return self._agents[agent_id]

    @property
    def agent_ids(self) -> Tuple[int, ...]:
        return tuple(sorted(self._agents))

    def enabled_agents(self) -> List[int]:
        """Agents that can take an atomic action right now, sorted by id."""
        enabled = []
        for agent_id, agent in sorted(self._agents.items()):
            if agent.halted:
                continue
            kind, node = self._ring.locate(agent_id)
            if kind == "queue":
                if self._ring.queue_head(node) == agent_id:
                    enabled.append(agent_id)
            else:
                if not agent.suspended or self._inboxes[agent_id]:
                    enabled.append(agent_id)
        return enabled

    @property
    def quiescent(self) -> bool:
        """True when no agent is enabled (Definitions 1 and 2 terminal state)."""
        return not self.enabled_agents()

    def run(self) -> Metrics:
        """Run to quiescence; raise on exceeding the step budget."""
        while True:
            enabled = self.enabled_agents()
            if not enabled:
                return self._metrics
            self._run_batch(enabled)

    def run_rounds(self, rounds: int) -> Metrics:
        """Run at most ``rounds`` scheduler batches (may stop earlier)."""
        for _ in range(rounds):
            enabled = self.enabled_agents()
            if not enabled:
                break
            self._run_batch(enabled)
        return self._metrics

    def run_until(self, predicate, max_rounds: int = 1_000_000) -> bool:
        """Run batches until ``predicate(engine)`` holds or quiescence.

        Returns ``True`` when the predicate fired, ``False`` when the
        run quiesced (or ``max_rounds`` elapsed) first.  Useful for
        watching for intermediate conditions ("some agent suspended",
        "half the agents halted") without writing the loop by hand.
        """
        for _ in range(max_rounds):
            if predicate(self):
                return True
            enabled = self.enabled_agents()
            if not enabled:
                return predicate(self)
            self._run_batch(enabled)
        return predicate(self)

    def iter_rounds(self):
        """Yield ``self`` after every scheduler batch until quiescence.

        Enables ``for _ in engine.iter_rounds(): ...`` observation loops
        (the timeline recorder and several examples use this shape).
        """
        while True:
            enabled = self.enabled_agents()
            if not enabled:
                return
            self._run_batch(enabled)
            yield self

    def snapshot(self) -> Configuration:
        """Return the current global configuration ``C = (S, T, M, P, Q)``."""
        return Configuration(
            ring_size=self._ring.size,
            agent_states={
                agent_id: agent.state_fingerprint()
                for agent_id, agent in self._agents.items()
            },
            tokens=self._ring.token_counts,
            inbox_sizes={
                agent_id: len(inbox) for agent_id, inbox in self._inboxes.items()
            },
            staying={
                node: tuple(sorted(self._ring.staying_at(node)))
                for node in range(self._ring.size)
            },
            queues={
                node: self._ring.queue_contents(node)
                for node in range(self._ring.size)
            },
        )

    def final_positions(self) -> Dict[int, int]:
        """Map agent id -> node for all staying agents (post-quiescence)."""
        positions = {}
        for agent_id in self._agents:
            kind, node = self._ring.locate(agent_id)
            if kind != "node":
                raise SimulationError(
                    f"agent {agent_id} is still in transit toward node {node}"
                )
            positions[agent_id] = node
        return positions

    # ------------------------------------------------------------------
    # Execution internals
    # ------------------------------------------------------------------

    def _run_batch(self, enabled: Sequence[int]) -> None:
        batch = self._scheduler.next_batch(list(enabled))
        if not batch:
            raise SimulationError("scheduler returned an empty batch")
        for agent_id in batch:
            if self._is_enabled(agent_id):
                self._activate(agent_id)
        if self._scheduler.counts_time:
            self._metrics.record_round()

    def _is_enabled(self, agent_id: int) -> bool:
        agent = self._agents[agent_id]
        if agent.halted:
            return False
        kind, node = self._ring.locate(agent_id)
        if kind == "queue":
            return self._ring.queue_head(node) == agent_id
        return not agent.suspended or bool(self._inboxes[agent_id])

    def _activate(self, agent_id: int) -> None:
        self._steps += 1
        self._activation_log.append(agent_id)
        if self._steps > self._max_steps:
            raise SimulationLimitExceeded(
                f"exceeded {self._max_steps} atomic actions without quiescence "
                f"(n={self._ring.size}, k={len(self._agents)}, "
                f"scheduler={self._scheduler.describe()})"
            )
        agent = self._agents[agent_id]
        kind, node = self._ring.locate(agent_id)
        arrived = kind == "queue"
        if arrived:
            self._ring.dequeue(agent_id, node)
            self._record(TraceEventKind.ARRIVE, agent_id, node)
        else:
            self._ring.depart(agent_id, node)
            self._record(TraceEventKind.ACT_IN_PLACE, agent_id, node)

        messages = tuple(self._inboxes[agent_id])
        self._inboxes[agent_id] = []
        if messages:
            self._metrics.record_delivery(len(messages))
        recipients = sorted(self._ring.staying_at(node))
        view = NodeView(
            tokens=self._ring.tokens_at(node),
            agents_present=len(recipients),
            messages=messages,
            arrived=arrived,
        )

        if self._started[agent_id]:
            action = agent.act(view)
        else:
            self._started[agent_id] = True
            action = agent.start(view)

        self._apply(agent_id, agent, node, action, recipients)
        self._metrics.record_activation(agent_id)
        if (
            self._steps % self._audit_interval == 0
            or action.halt
            or action.suspend
        ):
            self._metrics.record_memory(agent_id, agent.memory_bits())

    def _apply(
        self,
        agent_id: int,
        agent: Agent,
        node: int,
        action: Action,
        recipients: List[int],
    ) -> None:
        if action.release_token:
            self._ring.release_token(node)
            self._metrics.record_token()
            self._record(TraceEventKind.TOKEN, agent_id, node)
        if action.broadcast is not None:
            for recipient in recipients:
                was_starved = not self._inboxes[recipient]
                self._inboxes[recipient].append(action.broadcast)
                if was_starved and self._agents[recipient].suspended:
                    self._record(TraceEventKind.WAKE, recipient, node)
            self._metrics.record_broadcast(len(recipients))
            self._record(
                TraceEventKind.BROADCAST, agent_id, node, detail=action.broadcast
            )
        if action.move is Move.FORWARD:
            destination = self._ring.successor(node)
            self._ring.enqueue(agent_id, destination)
            self._metrics.record_move(agent_id)
            self._record(TraceEventKind.MOVE, agent_id, node)
        else:
            self._ring.settle(agent_id, node)
            self._record(TraceEventKind.SETTLE, agent_id, node)
            if action.halt:
                self._record(TraceEventKind.HALT, agent_id, node)
            if action.suspend:
                self._record(TraceEventKind.SUSPEND, agent_id, node)

    def _record(
        self,
        kind: TraceEventKind,
        agent_id: int,
        node: int,
        detail: Optional[object] = None,
    ) -> None:
        if self._trace is not None:
            self._trace.record(
                TraceEvent(
                    step=self._steps,
                    kind=kind,
                    agent_id=agent_id,
                    node=node,
                    detail=detail,
                )
            )
