"""Columnar batch-simulation backend (numpy state-as-columns engine).

The object engine in :mod:`repro.sim.engine` executes one trial at a
time, one Python-level atomic action at a time — ~280-480k actions/s
(BENCH_engine.json).  This package executes *B trials of one
(algorithm, n, k, scheduler family) cell as a single vectorized batch*:

* agent state lives in ``(B, k)`` numpy columns (location codes, phase
  counters, token tallies, inbox cursors, terminal flags),
* link queues are ``(B, n, k)`` ring buffers with head/length cursors,
* the four core algorithms' protocol generators are rewritten as masked
  column updates over an explicit phase machine
  (:mod:`repro.sim.batch.kernels`),
* scheduler decisions become per-trial index arrays: the synchronous
  family dispatches whole agent columns per round with no per-trial
  Python at all, while the randomized families drive one real
  per-trial :class:`~repro.sim.scheduler.Scheduler` instance each so
  every RNG draw is byte-identical to the object engine's.

The object engine stays on as the *differential oracle*, exactly the
pattern PR 1 established with ``recompute_enabled_agents``: on shared
seeds the batch backend reproduces the object engine's activation log,
Metrics and final positions bit for bit, and
:func:`repro.sim.batch.runner.run_batch` can sample-check that promise
(``validate=True``) on every production sweep.
"""

from repro.sim.batch.engine import BatchEngine
from repro.sim.batch.kernels import KERNELS, batch_supported
from repro.sim.batch.runner import run_batch

__all__ = ["BatchEngine", "KERNELS", "batch_supported", "run_batch"]
