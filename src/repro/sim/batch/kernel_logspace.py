"""Batch kernel for Algorithms 2+3 (``known_k_logspace``).

Linearisation of :class:`repro.core.known_k_logspace.KnownKLogSpaceAgent`:

====  ========  ====================================================
code  phase     generator position
====  ========  ====================================================
0     INIT      before the first ``move(release_token)`` yield
1     CIRCUIT   inside the sub-phase circuit loop
2     LEADER    Algorithm 3 leader walk (notify followers, halt)
3     WAIT      follower suspended at home for a ``LeaderNotice``
4     TOBASE    follower walking to the nearest base node
5     HOP       follower hopping target-to-target, vacancy checks
6     DONE      halted
====  ========  ====================================================

The ``fresh`` column captures a generator quirk the audit can see:
sub-phase-entry resets (``phase += 1``, flags, segment counters) run
*after* the departure yield, on the next resume — so an agent audited
while departing for sub-phase ``p+1`` still shows sub-phase ``p``'s
counters.  Segment measurement is fully columnar (including the
lexicographic ID comparison of ``_close_segment``); the at-home
leader/follower decision and the target-hop arithmetic drop to scalar
per-trial code sharing :func:`repro.core.targets.hop_to_next_target`
with the object agent.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from repro.core.messages import LeaderNotice
from repro.core.targets import hop_to_next_target
from repro.sim.batch.kernels import Kernel, bit_cost, register_kernel

__all__ = ["KnownKLogSpaceKernel"]

_INIT, _CIRCUIT, _LEADER, _WAIT, _TOBASE, _HOP, _DONE = range(7)


@register_kernel("known_k_logspace")
class KnownKLogSpaceKernel(Kernel):
    halts = True

    def __init__(self, trials: int, agent_count: int, ring_size: int) -> None:
        super().__init__(trials, agent_count, ring_size)
        flats = trials * agent_count
        z = lambda: np.zeros(flats, dtype=np.int64)  # noqa: E731
        self.kphase = np.full(flats, _INIT, dtype=np.int64)
        self.fresh = np.zeros(flats, dtype=bool)
        self.phase = z()  # the agent's audited sub-phase counter
        self.identical = np.zeros(flats, dtype=bool)
        self.min_id = np.zeros(flats, dtype=bool)
        self.id_d, self.id_f = z(), z()
        self.next_d, self.next_f = z(), z()
        self.seg_d, self.seg_f = z(), z()
        self.seg_index = z()
        self.tokens_seen = z()
        self.n_learned = z()
        self.is_leader = np.zeros(flats, dtype=bool)
        self.t = z()  # leader: token nodes visited
        self.t_base = z()
        self.b = z()
        self.target_index = z()
        self.hops = z()

    # ------------------------------------------------------------------

    def step(
        self,
        t_idx: np.ndarray,
        a_idx: np.ndarray,
        vtokens: np.ndarray,
        vagents: np.ndarray,
        msgs: Dict[int, Tuple[object, ...]],
    ):
        m = t_idx.size
        flat = t_idx * self.k + a_idx
        ph = self.kphase[flat]
        move = np.zeros(m, dtype=bool)
        release = np.zeros(m, dtype=bool)
        halt = np.zeros(m, dtype=bool)
        suspend = np.zeros(m, dtype=bool)
        broadcasts: List[Tuple[int, object]] = []

        init = ph == _INIT
        if init.any():
            # phase = 0, n = 0 pre-set by column init.
            self.kphase[flat[init]] = _CIRCUIT
            self.fresh[flat[init]] = True
            move[init] = True
            release[init] = True

        circ = ph == _CIRCUIT
        if circ.any():
            cf = flat[circ]
            entering = self.fresh[cf]
            if entering.any():
                ef = cf[entering]
                self.phase[ef] += 1
                self.identical[ef] = True
                self.min_id[ef] = True
                self.seg_index[ef] = 0
                self.seg_d[ef] = 0
                self.seg_f[ef] = 0
                self.tokens_seen[ef] = 0
                self.fresh[ef] = False
            self.seg_d[cf] += 1
            first_sub = self.phase[cf] == 1
            if first_sub.any():
                self.n_learned[cf[first_sub]] += 1  # learn n in sub-phase 1
            move[circ] = True

            saw_token = circ & (vtokens > 0)
            if saw_token.any():
                tf = flat[saw_token]
                self.tokens_seen[tf] += 1
                at_home = self.tokens_seen[tf] == self.k
                follower_home = (vagents[saw_token] > 0) & ~at_home
                if follower_home.any():
                    self.seg_f[tf[follower_home]] += 1
                closing = ~follower_home
                if closing.any():
                    self._close_segments(tf[closing])
                home_entries = np.flatnonzero(saw_token)[at_home]
                for i in home_entries.tolist():
                    self._decide(int(flat[i]), i, move, suspend)

        leader = ph == _LEADER
        if leader.any():
            saw_token = leader & (vtokens > 0)
            if saw_token.any():
                self.t[flat[saw_token]] += 1
            lf = flat[leader]
            arrived_base = self.t[lf] == self.id_f[lf] + 1
            done = np.flatnonzero(leader)[arrived_base]
            halt[done] = True
            self.kphase[flat[done]] = _DONE
            walking = np.flatnonzero(leader)[~arrived_base]
            move[walking] = True
            notify = saw_token.copy()
            notify[walking] = notify[walking] & (
                self.t[flat[walking]] <= self.id_f[flat[walking]]
            )
            notify &= ~halt
            for i in np.flatnonzero(notify).tolist():
                f = int(flat[i])
                broadcasts.append(
                    (
                        i,
                        LeaderNotice(
                            t_base=int(self.id_f[f] - (self.t[f] - 1)),
                            f_num=int(self.id_f[f]),
                        ),
                    )
                )

        waiting = ph == _WAIT
        if waiting.any():
            for i in np.flatnonzero(waiting).tolist():
                f = int(flat[i])
                notice = next(
                    (
                        msg
                        for msg in msgs.get(i, ())
                        if isinstance(msg, LeaderNotice)
                    ),
                    None,
                )
                if notice is None:
                    suspend[i] = True
                    continue
                self.t_base[f] = notice.t_base
                self.b[f] = self.k // (notice.f_num + 1)
                self.tokens_seen[f] = 0
                if self.tokens_seen[f] < self.t_base[f]:
                    self.kphase[f] = _TOBASE
                    move[i] = True
                else:  # t_base == 0: straight to the hop loop
                    self._enter_targets(f, i, 0, int(vagents[i]), move, halt)

        tobase = ph == _TOBASE
        if tobase.any():
            saw_token = tobase & (vtokens > 0)
            if saw_token.any():
                self.tokens_seen[flat[saw_token]] += 1
            bf = flat[tobase]
            walking = self.tokens_seen[bf] < self.t_base[bf]
            move[np.flatnonzero(tobase)[walking]] = True
            for i in np.flatnonzero(tobase)[~walking].tolist():
                self._enter_targets(
                    int(flat[i]), i, 0, int(vagents[i]), move, halt
                )

        hopping = ph == _HOP
        if hopping.any():
            hf = flat[hopping]
            mid_hop = self.hops[hf] > 0
            if mid_hop.any():
                self.hops[hf[mid_hop]] -= 1
                move[np.flatnonzero(hopping)[mid_hop]] = True
            for i in np.flatnonzero(hopping)[~mid_hop].tolist():
                f = int(flat[i])
                if vagents[i] == 0:  # vacant target: claim it
                    halt[i] = True
                    self.kphase[f] = _DONE
                else:
                    self._enter_targets(
                        f, i, int(self.target_index[f]), int(vagents[i]), move, halt
                    )

        return move, release, halt, suspend, broadcasts

    # ------------------------------------------------------------------

    def _close_segments(self, tf: np.ndarray) -> None:
        """Vectorized ``_close_segment`` over flat indices ``tf``."""
        own_seg = self.seg_index[tf] == 0
        if own_seg.any():
            of = tf[own_seg]
            self.id_d[of] = self.seg_d[of]
            self.id_f[of] = self.seg_f[of]
        later = ~own_seg
        if later.any():
            lf = tf[later]
            succ = self.seg_index[lf] == 1
            if succ.any():
                sf = lf[succ]
                self.next_d[sf] = self.seg_d[sf]
                self.next_f[sf] = self.seg_f[sf]
            differs = (self.seg_d[lf] != self.id_d[lf]) | (
                self.seg_f[lf] != self.id_f[lf]
            )
            self.identical[lf[differs]] = False
            # own > observed, tuple-lexicographic on (d, f).
            own_greater = (self.id_d[lf] > self.seg_d[lf]) | (
                (self.id_d[lf] == self.seg_d[lf])
                & (self.id_f[lf] > self.seg_f[lf])
            )
            self.min_id[lf[own_greater]] = False
        self.seg_index[tf] += 1
        self.seg_d[tf] = 0
        self.seg_f[tf] = 0

    def _decide(
        self, f: int, i: int, move: np.ndarray, suspend: np.ndarray
    ) -> None:
        """The at-home classification, same atomic action as the arrival."""
        sole_active = self.seg_index[f] == 1  # no other active node met
        if sole_active or self.identical[f]:
            self.is_leader[f] = True
            self.kphase[f] = _LEADER
            self.t[f] = 0
            # Leader entry: t == 0 < id_f + 1, so the first action is a
            # plain move (no broadcast); `move[i]` is already True.
        elif (not self.min_id[f]) or (
            self.id_d[f] == self.next_d[f] and self.id_f[f] == self.next_f[f]
        ):
            self.is_leader[f] = False
            self.kphase[f] = _WAIT
            move[i] = False
            suspend[i] = True
        else:
            # Stay active; loop-top resets run on the next resume.
            self.fresh[f] = True

    def _enter_targets(
        self,
        f: int,
        i: int,
        target_index: int,
        agents_present: int,
        move: np.ndarray,
        halt: np.ndarray,
    ) -> None:
        """Algorithm 3's hop loop entry: emit the first hop or claim.

        Mirrors the generator exactly: ``hops = step`` then the
        ``while hops > 0`` walk decrements before yielding, so the
        stored ``hops`` is ``step - 1`` at the departure yield.
        """
        ti = target_index
        while True:
            step, ti = hop_to_next_target(ti, int(self.n_learned[f]), self.k, int(self.b[f]))
            self.target_index[f] = ti
            self.hops[f] = step
            if step > 0:
                self.hops[f] = step - 1
                self.kphase[f] = _HOP
                move[i] = True
                return
            if agents_present == 0:
                halt[i] = True
                self.kphase[f] = _DONE
                return

    def memory_bits(self, t_idx: np.ndarray, a_idx: np.ndarray) -> np.ndarray:
        flat = t_idx * self.k + a_idx
        total = (
            bit_cost(self.phase[flat])
            + bit_cost(self.id_d[flat])
            + bit_cost(self.id_f[flat])
            + bit_cost(self.next_d[flat])
            + bit_cost(self.next_f[flat])
            + bit_cost(self.seg_d[flat])
            + bit_cost(self.seg_f[flat])
            + bit_cost(self.seg_index[flat])
            + bit_cost(self.tokens_seen[flat])
            + bit_cost(self.n_learned[flat])
            + bit_cost(self.t[flat])
            + bit_cost(self.t_base[flat])
            + bit_cost(self.b[flat])
            + bit_cost(self.target_index[flat])
            + bit_cost(self.hops[flat])
        )
        # k (the known constant) plus the three 1-bit booleans
        # (identical, min_id, is_leader — None and bool both cost 1).
        total += int(bit_cost(np.array([self.k]))[0]) + 3
        return total
