"""The columnar batch engine: B trials of one cell as numpy columns.

One :class:`BatchEngine` advances *every* trial of one (algorithm, n,
k, scheduler family) cell together.  The per-trial state the object
engine keeps in Python objects becomes arrays:

==================  ==========  ==========================================
column              shape       object-engine counterpart
==================  ==========  ==========================================
``loc``             (B, k)      ``Ring.locations`` (same code: node index
                                for staying agents, ``-(node+1)`` while
                                queued toward ``node``)
``staying``         (B, k)      membership of ``Ring._staying[node]``
``halted``/
``suspended``       (B, k)      ``Agent._halted`` / ``Agent._suspended``
``enabled``         (B, k)      ``Engine._enabled``
``tokens``          (B, n)      ``Ring.tokens``
``stay_count``      (B, n)      ``len(Ring._staying[node])``
``qbuf/qhead/qlen`` (B, n, k)   ``Ring._queues[node]`` as a ring buffer
``inbox_len``       (B, k)      ``len(Engine._inboxes[agent])``
``steps``           (B,)        ``Engine._steps``
==================  ==========  ==========================================

An engine *dispatch* replays :meth:`repro.sim.engine.Engine._activate`
for up to one agent per trial, as masked column updates in the exact
same order: budget check, dequeue/unsettle, inbox drain, kernel
transition, token release, broadcast+wake, move/settle, metrics and the
``steps % interval == 0 or halt or suspend`` memory audit.

Selectors, not flat indices, address the columns: a dispatch is
``(tsel, asel)`` where ``tsel`` is ``slice(None)`` (every trial) or a
trial-index array, and ``asel`` is a scalar agent id or a per-trial
array.  The synchronous fast path dispatches whole agent columns as
``(slice(None), j)`` — pure strided numpy, no gather/scatter — which is
where the >=10x-over-object throughput comes from; partially-enabled
columns and stepwise schedules fall back to fancy indexing with the
same code path, so both modes share one set of semantics.

Scheduling runs in one of two drivers:

* **synchronous fast path** — every scheduler is the ``sync`` family,
  so one round is a snapshot of the enabled columns dispatched
  column-by-column with zero per-trial Python,
* **stepwise mode** — every trial owns a real
  :class:`~repro.sim.scheduler.Scheduler` instance seeded exactly as
  the object path seeds it; per batch the engine hands each instance
  its sorted enabled list and dispatches the returned batches
  slot-by-slot, preserving each trial's in-batch order.  RNG identity
  is by construction, not by re-implementation.

Per-trial failures (step-budget exhaustion, a scheduler misbehaving)
quarantine just that trial: its columns freeze, the recorded exception
— message-identical to the object engine's — is re-raised when the
trial's result is materialised, and every other trial runs on.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.analysis.verification import VerificationReport, verify_positions
from repro.errors import (
    ConfigurationError,
    SimulationError,
    SimulationLimitExceeded,
)
from repro.ring.placement import Placement
from repro.sim.batch.kernels import KERNELS, load_kernels
from repro.sim.metrics import Metrics
from repro.sim.scheduler import Scheduler, SynchronousScheduler

__all__ = ["BatchEngine"]

_DEFAULT_STEP_SLACK = 64  # keep in lockstep with repro.sim.engine

_ALL = slice(None)


def _sub(asel: Union[int, np.ndarray], mask: np.ndarray):
    """Restrict an agent selector to a boolean mask over the dispatch."""
    return asel if isinstance(asel, int) else asel[mask]


class BatchEngine:
    """Drive B trials of one algorithm cell to quiescence, vectorized."""

    def __init__(
        self,
        algorithm: str,
        placements: Sequence[Placement],
        schedulers: Sequence[Scheduler],
        max_steps: Sequence[Optional[int]],
        memory_audit_interval: int = 16,
        collect_metrics: bool = True,
        record_log: bool = False,
    ) -> None:
        load_kernels()
        if algorithm not in KERNELS:
            raise ConfigurationError(
                f"algorithm {algorithm!r} has no batch kernel "
                f"(available: {sorted(KERNELS)})"
            )
        if not placements:
            raise ConfigurationError("a batch needs at least one trial")
        if not (len(placements) == len(schedulers) == len(max_steps)):
            raise ConfigurationError(
                "placements, schedulers and max_steps must align per trial"
            )
        n = placements[0].ring_size
        k = placements[0].agent_count
        for placement in placements:
            if placement.ring_size != n or placement.agent_count != k:
                raise ConfigurationError(
                    "all trials of one batch must share (n, k); got "
                    f"{placement.ring_size}x{placement.agent_count} vs {n}x{k}"
                )
        if memory_audit_interval < 1:
            raise ConfigurationError("memory audit interval must be >= 1")
        B = len(placements)
        self.B, self.n, self.k = B, n, k
        self.algorithm = algorithm
        self.placements = list(placements)
        self.schedulers = list(schedulers)
        self.collect_metrics = collect_metrics
        self.audit_interval = memory_audit_interval
        self.record_log = record_log
        self.logs: List[List[int]] = [[] for _ in range(B)] if record_log else []
        self.kernel = KERNELS[algorithm](B, k, n)

        default_budget = _DEFAULT_STEP_SLACK * n * k + 10_000
        self.budget = np.array(
            [default_budget if m is None else int(m) for m in max_steps],
            dtype=np.int64,
        )
        self.max_steps = list(max_steps)
        self.steps = np.zeros(B, dtype=np.int64)
        # Budget checks are elided while this per-dispatch upper bound on
        # any trial's step count stays within the smallest budget.
        self._dispatches = 0
        self._budget_min = int(self.budget.min())

        # -- ring + agent columns ---------------------------------------
        homes = np.array([p.homes for p in placements], dtype=np.int64)  # (B, k)
        self.loc = -(homes + 1)  # C0: everyone queued toward home
        self.staying = np.zeros((B, k), dtype=bool)
        self.halted = np.zeros((B, k), dtype=bool)
        self.suspended = np.zeros((B, k), dtype=bool)
        self.tokens = np.zeros((B, n), dtype=np.int64)
        self.stay_count = np.zeros((B, n), dtype=np.int64)
        self.qbuf = np.zeros((B, n, k), dtype=np.int64)
        self.qhead = np.zeros((B, n), dtype=np.int64)
        self.qlen = np.zeros((B, n), dtype=np.int64)
        # Homes are distinct per placement, so every initial queue holds
        # exactly one agent and every agent starts as a queue head.
        t_grid = np.arange(B, dtype=np.int64)
        self._tgrid = t_grid
        agent_ids = np.tile(np.arange(k, dtype=np.int64), B)
        self.qbuf[np.repeat(t_grid, k), homes.reshape(-1), 0] = agent_ids
        self.qlen[np.repeat(t_grid, k), homes.reshape(-1)] = 1
        self.enabled = np.ones((B, k), dtype=bool)
        self.enabled_count = np.full(B, k, dtype=np.int64)

        self.inbox_len = np.zeros((B, k), dtype=np.int64)
        self.inboxes: Dict[Tuple[int, int], List[object]] = {}

        self.failed = np.zeros(B, dtype=bool)
        self.failures: Dict[int, BaseException] = {}
        self.active = np.ones(B, dtype=bool)

        # -- metrics columns --------------------------------------------
        self.m_moves = np.zeros((B, k), dtype=np.int64)
        self.m_activations = np.zeros((B, k), dtype=np.int64)
        self.m_mem = np.zeros((B, k), dtype=np.int64)
        self.m_mem_seen = np.zeros((B, k), dtype=bool)
        self.m_sent = np.zeros(B, dtype=np.int64)
        self.m_delivered = np.zeros(B, dtype=np.int64)
        self.m_tokens = np.zeros(B, dtype=np.int64)
        self.m_rounds = np.zeros(B, dtype=np.int64)
        self.counts_time = np.array(
            [bool(s.counts_time) for s in self.schedulers], dtype=bool
        )

    # ------------------------------------------------------------------
    # Driving
    # ------------------------------------------------------------------

    def run(self) -> None:
        """Run every trial to quiescence (or individual failure)."""
        if all(isinstance(s, SynchronousScheduler) for s in self.schedulers):
            self._run_sync()
        else:
            self._run_stepwise()

    def _refresh_active(self) -> None:
        np.greater(self.enabled_count, 0, out=self.active)
        self.active &= ~self.failed

    def _run_sync(self) -> None:
        """Round-based dispatch with zero per-trial Python (the fast path).

        One object-engine ``sync`` batch is the sorted enabled list,
        re-checked per entry; iterating agent columns in id order over a
        round-start snapshot is the same order per trial.  A column
        enabled in every trial dispatches as pure strided numpy.
        """
        enabled = self.enabled
        fused = self.kernel.fused_sync
        while True:
            round_trials = np.flatnonzero(self.active)
            if round_trials.size == 0:
                return
            if fused and self._fused_round():
                self._refresh_active()
                continue
            snapshot = enabled.copy()
            for agent in range(self.k):
                col = snapshot[:, agent] & enabled[:, agent]
                if col.all():
                    self._dispatch(_ALL, agent, self._tgrid)
                else:
                    t_sel = np.flatnonzero(col)
                    if t_sel.size:
                        self._dispatch(t_sel, agent, t_sel)
            if self.collect_metrics:
                survived = round_trials[~self.failed[round_trials]]
                self.m_rounds[survived] += 1
            self._refresh_active()

    def _fused_round(self) -> bool:
        """One whole sync round as a single multi-entry dispatch.

        Only called for ``fused_sync`` kernels (see
        :class:`~repro.sim.batch.kernels.Kernel`), whose dynamics make
        the round's entries independent: every enabled agent is the
        head of a single-occupancy queue and either moves or halts, so
        dequeuing everyone first and enqueuing all movers at the
        post-dequeue heads reaches the exact end-of-round state the
        per-agent dispatch sequence would, and the final enabled set is
        exactly the mover set.  Per-agent step numbers (for the memory
        audit) are the agent's rank in its trial's round, as the
        column-by-column path would assign them.

        Returns ``False`` without touching state when any trial could
        hit its step budget this round — the caller then runs the
        round through the per-column path, which performs exact
        per-action budget checks.
        """
        k = self.k
        if int(self.steps.max()) + k > self._budget_min:
            return False
        # (te, ae) is the round-start enabled set in row-major order —
        # exactly the per-trial sorted batch the object sync scheduler
        # issues.  All reads below use these index arrays, so the
        # end-of-round scatters into `self.enabled` cannot alias them.
        te, ae = np.nonzero(self.enabled)
        if te.size == 0:
            return True
        cnt = np.bincount(te, minlength=self.B)
        starts = np.cumsum(cnt) - cnt  # first entry index per trial
        if self.record_log:
            logs = self.logs
            for t in np.flatnonzero(cnt).tolist():
                first = starts[t]
                logs[t].extend(ae[first : first + cnt[t]].tolist())
        if self.collect_metrics:
            # Entry j of trial t acts at step steps[t] + (rank of j in
            # the trial's round), matching per-column dispatch order.
            steps_now = self.steps[te] + (
                np.arange(te.size, dtype=np.int64) - starts[te] + 1
            )
        self.steps += cnt
        self._dispatches += k

        node = -self.loc[te, ae] - 1
        self.qlen[te, node] = 0
        qh = self.qhead[te, node] + 1
        qh[qh == k] = 0
        self.qhead[te, node] = qh
        vtokens = self.tokens[te, node]

        move, release, halt, _susp, _bcasts = self.kernel.step(
            te, ae, vtokens, None, {}
        )

        if release.any():
            rel_t, rel_node = te[release], node[release]
            self.tokens[rel_t, rel_node] += 1
            if self.collect_metrics:
                # several entries of one trial may release in one round
                self.m_tokens += np.bincount(rel_t, minlength=self.B)
        if move.any():
            mv_t, mv_a = te[move], ae[move]
            dest = node[move] + 1
            dest[dest == self.n] = 0
            tail = self.qhead[mv_t, dest]  # post-dequeue head, len 0
            self.qbuf[mv_t, dest, tail] = mv_a
            self.qlen[mv_t, dest] = 1
            self.loc[mv_t, mv_a] = -(dest + 1)
            if self.collect_metrics:
                self.m_moves[mv_t, mv_a] += 1
        if halt.any():
            h_t, h_a, h_node = te[halt], ae[halt], node[halt]
            self.staying[h_t, h_a] = True
            self.halted[h_t, h_a] = True
            self.loc[h_t, h_a] = h_node
            self.stay_count[h_t, h_node] += 1

        # The post-round enabled set is exactly the mover set: clear the
        # non-movers (every (te, ae) entry was enabled at round start).
        stopped = ~move
        self.enabled[te[stopped], ae[stopped]] = False
        self.enabled_count = np.bincount(te[move], minlength=self.B)
        if self.collect_metrics:
            self.m_activations[te, ae] += 1
            audit = steps_now % self.audit_interval == 0
            audit |= halt
            if audit.any():
                aud_t, aud_a = te[audit], ae[audit]
                bits = self.kernel.memory_bits(aud_t, aud_a)
                self.m_mem[aud_t, aud_a] = np.maximum(
                    self.m_mem[aud_t, aud_a], bits
                )
                self.m_mem_seen[aud_t, aud_a] = True
            self.m_rounds += cnt > 0
        return True

    def _run_stepwise(self) -> None:
        """Per-trial scheduler instances, dispatched slot-by-slot.

        Within each trial the batch order (and the engine's per-entry
        enabledness re-check) is preserved exactly; across trials, slot
        ``s`` of every batch dispatches as one vector operation.
        """
        enabled = self.enabled
        while True:
            act = np.flatnonzero(self.active)
            if act.size == 0:
                return
            batches: List[Tuple[int, List[int]]] = []
            for t in act.tolist():
                enabled_list = np.flatnonzero(enabled[t]).tolist()
                batch = self.schedulers[t].next_batch(enabled_list)
                if not batch:
                    self._fail(t, SimulationError("scheduler returned an empty batch"))
                    continue
                batches.append((t, batch))
            longest = max((len(b) for _, b in batches), default=0)
            activated = np.zeros(self.B, dtype=bool)
            for slot in range(longest):
                ts: List[int] = []
                agents: List[int] = []
                for t, batch in batches:
                    if slot >= len(batch) or self.failed[t]:
                        continue
                    agent = batch[slot]
                    if 0 <= agent < self.k and enabled[t, agent]:
                        ts.append(t)
                        agents.append(agent)
                        activated[t] = True
                if ts:
                    t_idx = np.array(ts, dtype=np.int64)
                    self._dispatch(t_idx, np.array(agents, dtype=np.int64), t_idx)
            record_rounds = self.collect_metrics
            for t, batch in batches:
                if self.failed[t]:
                    continue
                if not activated[t]:
                    live = sorted(np.flatnonzero(enabled[t]).tolist())
                    self._fail(
                        t,
                        SimulationError(
                            f"scheduler batch {batch!r} activated no enabled "
                            f"agent (enabled: {live})"
                        ),
                    )
                    continue
                if record_rounds and self.counts_time[t]:
                    self.m_rounds[t] += 1
            self._refresh_active()

    def _fail(self, trial: int, error: BaseException) -> None:
        self.failed[trial] = True
        self.failures.setdefault(trial, error)
        self.enabled[trial, :] = False
        self.enabled_count[trial] = 0

    # ------------------------------------------------------------------
    # One vectorized atomic action per trial
    # ------------------------------------------------------------------

    def _dispatch(
        self,
        tsel: Union[slice, np.ndarray],
        asel: Union[int, np.ndarray],
        t_arr: np.ndarray,
    ) -> None:
        """Replay ``Engine._activate`` for the selected (trial, agent) pairs.

        ``(tsel, asel)`` addresses the ``(B, k)`` columns (``tsel`` may
        be ``slice(None)``, ``asel`` may be a scalar agent id); ``t_arr``
        is always the concrete trial-index array.  Callers guarantee at
        most one entry per trial, so every fancy-indexed in-place update
        below touches distinct elements.
        """
        n, k = self.n, self.k
        kernel = self.kernel
        self.steps[tsel] += 1
        steps_now = self.steps[tsel]
        if self.record_log:
            logs = self.logs
            if isinstance(asel, int):
                for t in t_arr.tolist():
                    logs[t].append(asel)
            else:
                for t, a in zip(t_arr.tolist(), asel.tolist()):
                    logs[t].append(a)
        self._dispatches += 1
        if self._dispatches > self._budget_min:
            over = steps_now > self.budget[tsel]
            if over.any():
                for t in t_arr[over].tolist():
                    self._fail(
                        t,
                        SimulationLimitExceeded(
                            f"exceeded {self.budget[t]} atomic actions without "
                            f"quiescence (n={n}, k={k}, "
                            f"scheduler={self.schedulers[t].describe()})"
                        ),
                    )
                keep = ~over
                t_arr = t_arr[keep]
                tsel = t_arr
                asel = _sub(asel, keep)
                steps_now = steps_now[keep]
                if t_arr.size == 0:
                    return

        self.enabled[tsel, asel] = False
        self.enabled_count[tsel] -= 1
        if kernel.suspends:
            # Agent.act clears the suspended flag before the protocol runs.
            self.suspended[tsel, asel] = False

        code = self.loc[tsel, asel]
        arrived = code < 0
        if arrived.all():
            node = -code - 1
            arr_t, arr_node = t_arr, node
            in_place = None
        else:
            node = np.where(arrived, -code - 1, code)
            arr_t, arr_node = t_arr[arrived], node[arrived]
            in_place = ~arrived

        if arr_t.size:
            new_len = self.qlen[arr_t, arr_node] - 1
            self.qlen[arr_t, arr_node] = new_len
            qh = self.qhead[arr_t, arr_node] + 1
            qh[qh == k] = 0
            self.qhead[arr_t, arr_node] = qh
            has_next = new_len > 0
            if has_next.any():
                next_t = arr_t[has_next]
                next_node = arr_node[has_next]
                heads = self.qbuf[next_t, next_node, qh[has_next]]
                self.enabled[next_t, heads] = True
                self.enabled_count[next_t] += 1
        if in_place is not None and in_place.any():
            self.stay_count[t_arr[in_place], node[in_place]] -= 1
            self.staying[t_arr[in_place], _sub(asel, in_place)] = False

        vtokens = self.tokens[t_arr, node]
        vagents = (
            self.stay_count[t_arr, node] if kernel.needs_agents_view else None
        )

        msgs: Dict[int, Tuple[object, ...]] = {}
        if kernel.messaging:
            with_mail = self.inbox_len[tsel, asel] > 0
            if with_mail.any():
                collect = self.collect_metrics
                positions = np.flatnonzero(with_mail).tolist()
                mail_t = t_arr[with_mail].tolist()
                mail_a = _sub(asel, with_mail)
                if isinstance(mail_a, int):
                    mail_a = [mail_a] * len(mail_t)
                else:
                    mail_a = mail_a.tolist()
                for pos, t, a in zip(positions, mail_t, mail_a):
                    drained = self.inboxes.pop((t, a))
                    msgs[pos] = tuple(drained)
                    self.inbox_len[t, a] = 0
                    if collect:
                        self.m_delivered[t] += len(drained)

        move, release, halt, susp, bcasts = kernel.step(
            t_arr, asel, vtokens, vagents, msgs
        )

        if release.any():
            rel_t, rel_node = t_arr[release], node[release]
            self.tokens[rel_t, rel_node] += 1
            if self.collect_metrics:
                self.m_tokens[rel_t] += 1

        for i, payload in bcasts:
            t, at_node = int(t_arr[i]), int(node[i])
            # flatnonzero returns ascending ids == sorted(staying_here).
            recipients = np.flatnonzero(
                (self.loc[t] == at_node) & self.staying[t]
            ).tolist()
            for recipient in recipients:
                if (
                    self.inbox_len[t, recipient] == 0
                    and self.suspended[t, recipient]
                ):
                    self.enabled[t, recipient] = True
                    self.enabled_count[t] += 1
                self.inboxes.setdefault((t, recipient), []).append(payload)
                self.inbox_len[t, recipient] += 1
            if self.collect_metrics:
                self.m_sent[t] += len(recipients)

        if move.all():
            dest = node + 1
            dest[dest == n] = 0
            mv_t, mv_a = t_arr, asel
            self.loc[tsel, asel] = -(dest + 1)
            stay = None
        elif move.any():
            dest = node[move] + 1
            dest[dest == n] = 0
            mv_t, mv_a = t_arr[move], _sub(asel, move)
            self.loc[mv_t, mv_a] = -(dest + 1)
            stay = ~move
        else:
            dest = None
            stay = ~move
        if dest is not None and dest.size:
            old_len = self.qlen[mv_t, dest]
            tail = self.qhead[mv_t, dest] + old_len
            tail[tail >= k] -= k
            self.qbuf[mv_t, dest, tail] = mv_a
            self.qlen[mv_t, dest] = old_len + 1
            is_head = old_len == 0
            if is_head.any():
                head_t = mv_t[is_head]
                head_a = mv_a if isinstance(mv_a, int) else mv_a[is_head]
                self.enabled[head_t, head_a] = True
                self.enabled_count[head_t] += 1
            if self.collect_metrics:
                self.m_moves[mv_t, mv_a] += 1

        if stay is not None and stay.any():
            st_t, st_a = t_arr[stay], _sub(asel, stay)
            self.staying[st_t, st_a] = True
            self.loc[st_t, st_a] = node[stay]
            self.stay_count[st_t, node[stay]] += 1
            if halt.any():
                self.halted[t_arr[halt], _sub(asel, halt)] = True
            if susp.any():
                self.suspended[t_arr[susp], _sub(asel, susp)] = True
            settle = stay & ~halt & ~susp
            if settle.any():
                self.enabled[t_arr[settle], _sub(asel, settle)] = True
                self.enabled_count[t_arr[settle]] += 1

        if self.collect_metrics:
            self.m_activations[tsel, asel] += 1
            audit = steps_now % self.audit_interval == 0
            if stay is not None:
                audit |= halt
                audit |= susp
            if audit.all():
                bits = kernel.memory_bits(t_arr, asel)
                current = self.m_mem[tsel, asel]
                self.m_mem[tsel, asel] = np.maximum(current, bits)
                self.m_mem_seen[tsel, asel] = True
            elif audit.any():
                aud_t, aud_a = t_arr[audit], _sub(asel, audit)
                bits = kernel.memory_bits(aud_t, aud_a)
                current = self.m_mem[aud_t, aud_a]
                self.m_mem[aud_t, aud_a] = np.maximum(current, bits)
                self.m_mem_seen[aud_t, aud_a] = True

    # ------------------------------------------------------------------
    # Materialisation
    # ------------------------------------------------------------------

    def metrics_for(self, trial: int) -> Metrics:
        """Rebuild the object-engine :class:`Metrics` of one trial.

        Dict keys appear exactly when the object engine would have
        created them (first move / first activation / first audit).
        """
        metrics = Metrics()
        metrics.moves_per_agent = {
            a: int(v) for a, v in enumerate(self.m_moves[trial]) if v > 0
        }
        metrics.activations_per_agent = {
            a: int(v) for a, v in enumerate(self.m_activations[trial]) if v > 0
        }
        metrics.memory_bits_per_agent = {
            a: int(self.m_mem[trial, a])
            for a in range(self.k)
            if self.m_mem_seen[trial, a]
        }
        metrics.messages_sent = int(self.m_sent[trial])
        metrics.messages_delivered = int(self.m_delivered[trial])
        metrics.tokens_released = int(self.m_tokens[trial])
        if self.counts_time[trial] and self.collect_metrics and self.m_rounds[trial]:
            metrics.rounds = int(self.m_rounds[trial])
        return metrics

    def activation_log_for(self, trial: int) -> Tuple[int, ...]:
        if not self.record_log:
            raise SimulationError("engine built without record_log=True")
        return tuple(self.logs[trial])

    def final_positions_for(self, trial: int) -> Dict[int, int]:
        codes = self.loc[trial]
        if (codes < 0).any():
            stuck = int(np.flatnonzero(codes < 0)[0])
            raise SimulationError(
                f"agent {stuck} is still in transit toward node "
                f"{-int(codes[stuck]) - 1}"
            )
        return {a: int(codes[a]) for a in range(self.k)}

    def report_for(self, trial: int) -> VerificationReport:
        """Replay :func:`verify_uniform_deployment` on the columns."""
        failures: List[str] = []
        if self.qlen[trial].any():
            failures.append("agents still in transit on links")
        if int(self.inbox_len[trial].sum()) > 0:
            failures.append("undelivered messages remain")
        require_halted = self.kernel.halts
        require_suspended = not self.kernel.halts
        for agent in range(self.k):
            if require_halted and not self.halted[trial, agent]:
                failures.append(f"agent {agent} is not halted")
            if require_suspended and not (
                self.suspended[trial, agent] or self.halted[trial, agent]
            ):
                failures.append(
                    f"agent {agent} is neither suspended nor halted"
                )
        if failures:
            return VerificationReport(
                False, self.n, self.k, (), tuple(failures)
            )
        positions = sorted(self.final_positions_for(trial).values())
        return verify_positions(positions, self.n)

    def result_for(self, trial: int) -> "RunResult":
        """The trial's :class:`~repro.experiments.runner.RunResult`.

        Raises the trial's recorded failure (step budget, scheduler
        misbehaviour) exactly as the object-engine path would have.
        """
        from repro.experiments.runner import RunResult

        if self.failed[trial]:
            raise self.failures[trial]
        metrics = self.metrics_for(trial)
        report = self.report_for(trial)
        positions = tuple(sorted(self.final_positions_for(trial).values()))
        return RunResult(
            algorithm=self.algorithm,
            placement=self.placements[trial],
            scheduler=self.schedulers[trial].describe(),
            total_moves=metrics.total_moves,
            max_moves=metrics.max_moves,
            ideal_time=metrics.rounds,
            max_memory_bits=metrics.max_memory_bits,
            messages_sent=metrics.messages_sent,
            report=report,
            final_positions=positions,
        )
