"""Batch kernel for Algorithms 4-6 (``unknown``).

Linearisation of :class:`repro.core.unknown.UnknownKAgent`:

====  ========  ====================================================
code  phase     generator position
====  ========  ====================================================
0     INIT      before the first ``move(release_token)`` yield
1     EST       Algorithm 4: walk until ``D`` is a 4-fold repetition
2     PATROL    Algorithm 5: walk to ``12 n'`` moves, messaging
3     DEPLOY    Algorithm 6: walk ``remaining`` hops to the target
4     SUSP      suspended at the target, estimate-adoption on wake
5     CATCHUP   post-adoption walk back up to ``12 n'`` moves
====  ========  ====================================================

Audit subtleties preserved from the generator: the deployment walk
yields *before* decrementing (unlike Algorithm 1's, which decrements
first), and the patrol/catch-up walks yield before incrementing
``nodes`` — so the entry steps store the undecremented ``remaining``
and the unincremented ``nodes``.  ``D`` is capped at ``4k`` entries:
after four full circuits the observed sequence is four repetitions of
the true token layout, so ``is_fourfold_repetition`` fires at
``len(D) == 4k`` at the latest.

This kernel never halts (``halts = False``): the relaxed problem ends
in suspended states (paper Theorem 5), which is also what
verification requires of it.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.analysis.sequences import (
    is_fourfold_repetition,
    prefix_alignment_shift,
    rotation_rank,
    shift,
)
from repro.core.messages import PatrolInfo
from repro.core.targets import target_offset
from repro.sim.batch.kernels import Kernel, bit_cost, register_kernel

__all__ = ["UnknownKKernel"]

_INIT, _EST, _PATROL, _DEPLOY, _SUSP, _CATCHUP = range(6)


@register_kernel("unknown")
class UnknownKKernel(Kernel):
    halts = False

    def __init__(self, trials: int, agent_count: int, ring_size: int) -> None:
        super().__init__(trials, agent_count, ring_size)
        flats = trials * agent_count
        z = lambda: np.zeros(flats, dtype=np.int64)  # noqa: E731
        self.kphase = np.full(flats, _INIT, dtype=np.int64)
        self.dis = z()
        self.n_est = z()
        self.k_est = z()
        self.nodes = z()
        self.rank = z()
        self.dis_base = z()
        self.remaining = z()
        self.D = np.zeros((flats, 4 * agent_count), dtype=np.int64)
        self.D_len = z()
        self.D_max = z()

    # ------------------------------------------------------------------

    def _patrol_info(self, f: int) -> PatrolInfo:
        return PatrolInfo(
            n_estimate=int(self.n_est[f]),
            k_estimate=int(self.k_est[f]),
            nodes_moved=int(self.nodes[f]),
            distances=tuple(self.D[f, : self.D_len[f]].tolist()),
        )

    def _deploy_entry(
        self,
        f: int,
        i: int,
        pending: Optional[PatrolInfo],
        move: np.ndarray,
        suspend: np.ndarray,
        broadcasts: List[Tuple[int, object]],
    ) -> None:
        """Algorithm 6 lines 1-5: compute the walk, emit its first action.

        The generator yields before decrementing ``remaining``, so the
        stored value here is the full walk length.
        """
        k_est = int(self.k_est[f])
        block = self.D[f, :k_est].tolist()
        self.rank[f] = rank = rotation_rank(block)
        self.dis_base[f] = dis_base = sum(block[:rank])
        remaining = dis_base + target_offset(
            rank, int(self.n_est[f]), k_est, base_count=1
        )
        self.remaining[f] = remaining
        if remaining > 0:
            self.kphase[f] = _DEPLOY
            move[i] = True
        else:
            self.kphase[f] = _SUSP
            suspend[i] = True
        if pending is not None:
            broadcasts.append((i, pending))

    # ------------------------------------------------------------------

    def step(
        self,
        t_idx: np.ndarray,
        a_idx: np.ndarray,
        vtokens: np.ndarray,
        vagents: np.ndarray,
        msgs: Dict[int, Tuple[object, ...]],
    ):
        m = t_idx.size
        flat = t_idx * self.k + a_idx
        ph = self.kphase[flat]
        move = np.zeros(m, dtype=bool)
        release = np.zeros(m, dtype=bool)
        halt = np.zeros(m, dtype=bool)
        suspend = np.zeros(m, dtype=bool)
        broadcasts: List[Tuple[int, object]] = []

        init = ph == _INIT
        if init.any():
            # D = [], dis = 0 pre-set by column init.
            self.kphase[flat[init]] = _EST
            move[init] = True
            release[init] = True

        est = ph == _EST
        if est.any():
            ef = flat[est]
            self.dis[ef] += 1
            move[est] = True
            saw_token = est & (vtokens > 0)
            if saw_token.any():
                tf = flat[saw_token]
                d_val = self.dis[tf]
                self.D[tf, self.D_len[tf]] = d_val
                self.D_len[tf] += 1
                self.D_max[tf] = np.maximum(self.D_max[tf], d_val)
                self.dis[tf] = 0
                quads = self.D_len[tf] % 4 == 0
                for i in np.flatnonzero(saw_token)[quads].tolist():
                    f = int(flat[i])
                    row = self.D[f, : self.D_len[f]].tolist()
                    if not is_fourfold_repetition(row):
                        continue
                    self.k_est[f] = k_est = len(row) // 4
                    self.n_est[f] = n_est = sum(row[:k_est])
                    self.nodes[f] = 4 * n_est
                    # Patrol entry: nodes = 4n' < 12n', so the first
                    # patrol move is emitted now (pending is None).
                    self.kphase[f] = _PATROL

        patrol = ph == _PATROL
        if patrol.any():
            pf = flat[patrol]
            self.nodes[pf] += 1
            done = self.nodes[pf] >= 12 * self.n_est[pf]
            positions = np.flatnonzero(patrol)
            for pos, i in enumerate(positions.tolist()):
                f = int(flat[i])
                pending = self._patrol_info(f) if vagents[i] > 0 else None
                if not done[pos]:
                    move[i] = True
                    if pending is not None:
                        broadcasts.append((i, pending))
                else:
                    self._deploy_entry(f, i, pending, move, suspend, broadcasts)

        deploy = ph == _DEPLOY
        if deploy.any():
            df = flat[deploy]
            self.remaining[df] -= 1
            self.nodes[df] += 1
            walking = self.remaining[df] > 0
            positions = np.flatnonzero(deploy)
            move[positions[walking]] = True
            arrived = positions[~walking]
            suspend[arrived] = True
            self.kphase[flat[arrived]] = _SUSP

        susp = ph == _SUSP
        if susp.any():
            for i in np.flatnonzero(susp).tolist():
                f = int(flat[i])
                adopted = self._best_trigger(f, msgs.get(i, ()))
                if adopted is None:
                    suspend[i] = True
                    continue
                info, alignment = adopted
                self._adopt(f, info, alignment)
                if self.nodes[f] < 12 * self.n_est[f]:
                    self.kphase[f] = _CATCHUP
                    move[i] = True
                else:
                    self._deploy_entry(f, i, None, move, suspend, broadcasts)

        catchup = ph == _CATCHUP
        if catchup.any():
            cf = flat[catchup]
            self.nodes[cf] += 1
            caught_up = self.nodes[cf] >= 12 * self.n_est[cf]
            positions = np.flatnonzero(catchup)
            move[positions[~caught_up]] = True
            for i in positions[caught_up].tolist():
                self._deploy_entry(int(flat[i]), i, None, move, suspend, broadcasts)

        return move, release, halt, suspend, broadcasts

    # ------------------------------------------------------------------

    def _best_trigger(
        self, f: int, messages: Tuple[object, ...]
    ) -> Optional[Tuple[PatrolInfo, int]]:
        """Scalar replica of ``UnknownKAgent._best_trigger``."""
        own_d = self.D[f, : self.D_len[f]].tolist()
        n_est = int(self.n_est[f])
        nodes = int(self.nodes[f])
        best: Optional[Tuple[PatrolInfo, int]] = None
        for message in messages:
            if not isinstance(message, PatrolInfo):
                continue
            if 2 * n_est > message.n_estimate:
                continue
            alignment = prefix_alignment_shift(
                own_d, message.block, message.nodes_moved - nodes
            )
            if alignment is None:
                continue
            if best is None or message.n_estimate > best[0].n_estimate:
                best = (message, alignment)
        return best

    def _adopt(self, f: int, info: PatrolInfo, alignment: int) -> None:
        self.n_est[f] = info.n_estimate
        self.k_est[f] = info.k_estimate
        new_d = list(shift(info.block, alignment)) * 4
        self.D[f, : len(new_d)] = new_d
        self.D_len[f] = len(new_d)
        self.D_max[f] = max(new_d) if new_d else 0

    def memory_bits(self, t_idx: np.ndarray, a_idx: np.ndarray) -> np.ndarray:
        flat = t_idx * self.k + a_idx
        total = (
            bit_cost(self.dis[flat])
            + bit_cost(self.n_est[flat])
            + bit_cost(self.k_est[flat])
            + bit_cost(self.nodes[flat])
            + bit_cost(self.rank[flat])
            + bit_cost(self.dis_base[flat])
            + bit_cost(self.remaining[flat])
        )
        total += np.maximum(1, self.D_len[flat]) * bit_cost(self.D_max[flat])
        return total
