"""Kernel interface and registry for the columnar batch engine.

A *kernel* is one algorithm's protocol generator rewritten as masked
column updates: where the object engine resumes a Python generator per
atomic action, a kernel advances an explicit per-(trial, agent) phase
machine stored in ``(B, k)`` numpy columns.  The translation is exact —
each kernel linearises its generator yield-by-yield, so the action
emitted for any (phase, view) pair, and the declared-state values
visible to the memory audit at the yield point, match the object agent
bit for bit.  ``tests/test_batch_differential.py`` holds every kernel
to that standard against the object engine on shared seeds.

Common-case transitions (walking, counting distances) are fully
vectorized; rare decisions (circuit completion, leader election,
estimate adoption) drop to per-trial scalar code that reuses the very
same helpers (:func:`repro.analysis.sequences.rotation_rank`,
:func:`repro.core.targets.target_offset`, ...) the object agents call,
so the arithmetic cannot drift.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

import numpy as np

__all__ = [
    "Kernel",
    "KERNELS",
    "register_kernel",
    "load_kernels",
    "batch_supported",
    "bit_cost",
    "minimal_rotation_index_batch",
    "minimal_period_batch",
]


def bit_cost(values: np.ndarray) -> np.ndarray:
    """Vectorized :meth:`repro.sim.agent.Agent.memory_bits` scalar cost.

    For a non-negative counter ``v`` the audit charges
    ``max(1, (v + 1).bit_length())`` bits.  ``frexp`` returns the
    binary exponent ``e`` with ``x = m * 2**e, 0.5 <= m < 1``, which
    for integer ``x >= 1`` is exactly ``x.bit_length()`` — exact up to
    2**53, far beyond any counter a simulation can reach.  An unset
    (``None``) scalar also costs one bit, the same as value 0, which is
    why kernels may represent "unset" as 0 without breaking audit
    parity.
    """
    return np.frexp(np.asarray(values, dtype=np.float64) + 1.0)[1].astype(np.int64)


def minimal_rotation_index_batch(rows: np.ndarray) -> np.ndarray:
    """Row-wise :func:`repro.analysis.sequences.minimal_rotation_index`.

    Elimination tournament over the ``k`` rotation starts of each row:
    at offset ``o`` every still-alive start whose ``o``-th rotation
    element is not the row minimum (among alive starts) is eliminated.
    After ``k`` offsets the survivors are exactly the starts of the
    lexicographically minimal rotation (several iff the row is
    periodic); ``argmax`` picks the smallest surviving index, matching
    Booth's smallest-index tie-break.  O(k^2) per row but fully
    vectorized — the rows here are short (one entry per agent).
    """
    count, k = rows.shape
    if k == 0:
        return np.zeros(count, dtype=np.int64)
    doubled = np.concatenate([rows, rows], axis=1)
    sentinel = np.iinfo(rows.dtype).max
    alive = np.ones((count, k), dtype=bool)
    for offset in range(k):
        vals = np.where(alive, doubled[:, offset : offset + k], sentinel)
        alive &= vals == vals.min(axis=1, keepdims=True)
        if offset and int(alive.sum()) == count:
            break  # every row is down to one candidate already
    return alive.argmax(axis=1).astype(np.int64)


def minimal_period_batch(rows: np.ndarray) -> np.ndarray:
    """Row-wise :func:`repro.analysis.sequences.minimal_period`.

    A rotation period of a length-``k`` sequence always divides ``k``,
    so the minimal period is the smallest divisor ``d`` of ``k`` with
    ``shift(D, d) == D`` — one rolled comparison per divisor.
    """
    count, k = rows.shape
    period = np.full(count, k, dtype=np.int64)
    for d in range(1, k):
        if k % d != 0:
            continue
        matches = (rows == np.roll(rows, -d, axis=1)).all(axis=1)
        period = np.where(matches & (period == k), d, period)
        if int((period < k).sum()) == count:
            break
    return period


class Kernel:
    """One algorithm's transition function over columnar agent state.

    Subclasses allocate their state columns in ``__init__`` and
    implement :meth:`step` and :meth:`memory_bits`.  The engine
    guarantees at most one dispatch entry per trial per call, so
    fancy-indexed in-place updates on ``t * k + a`` flats never alias.
    """

    #: matches the registered algorithm's ``halts`` flag (verification).
    halts = True
    #: capability flags the engine uses to skip machinery a kernel can
    #: never exercise.  ``messaging=False`` promises the kernel never
    #: broadcasts (so inbox drain/wake logic is dead code for it),
    #: ``suspends=False`` that it never suspends, and
    #: ``needs_agents_view=False`` that :meth:`step` ignores ``vagents``
    #: (the engine then passes ``None``).  The conservative defaults are
    #: correct for any kernel; overriding them is purely a fast path.
    messaging = True
    suspends = True
    needs_agents_view = True
    #: ``fused_sync=True`` additionally certifies that under an
    #: all-``sync`` schedule one whole round may be dispatched as a
    #: single :meth:`step` call with *multiple entries per trial*
    #: (one per enabled agent).  That is sound only when the kernel's
    #: dynamics make round entries independent: every action moves or
    #: halts (so queues stay single-occupancy and the end-of-round
    #: enabled set is exactly the mover set), no broadcasts, no
    #: suspends, and token releases only ever happen at the agent's own
    #: distinct home (INIT), so no entry's node view depends on another
    #: entry's action.  :meth:`step` must also be alias-free across
    #: distinct (trial, agent) pairs, not just across trials.
    fused_sync = False

    def __init__(self, trials: int, agent_count: int, ring_size: int) -> None:
        self.B = trials
        self.k = agent_count
        self.n = ring_size

    def step(
        self,
        t_idx: np.ndarray,
        a_idx: np.ndarray,
        vtokens: np.ndarray,
        vagents: np.ndarray,
        msgs: Dict[int, Tuple[object, ...]],
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, List[Tuple[int, object]]]:
        """Advance one atomic action for each (t_idx[i], a_idx[i]) pair.

        ``vtokens``/``vagents`` are the view columns (tokens and staying
        agents at the node, the actor excluded); ``msgs`` maps dispatch
        positions to the drained inbox tuple, present only for entries
        that had pending messages.  Returns ``(move, release, halt,
        suspend, broadcasts)`` — four boolean arrays aligned with the
        dispatch plus a list of ``(position, payload)`` broadcasts.
        """
        raise NotImplementedError

    def memory_bits(self, t_idx: np.ndarray, a_idx: np.ndarray) -> np.ndarray:
        """Audited state size in bits for each pair, post-action."""
        raise NotImplementedError


#: algorithm name -> kernel class; the batch backend's coverage.
KERNELS: Dict[str, Callable[[int, int, int], Kernel]] = {}


def register_kernel(name: str):
    """Class decorator: register a kernel for a registered algorithm."""

    def decorate(cls):
        KERNELS[name] = cls
        return cls

    return decorate


def load_kernels() -> None:
    """Import the kernel modules for their registration side effect.

    Late imports: the kernel modules subclass :class:`Kernel` from this
    module, so a top-level import here would be circular.
    """
    import repro.sim.batch.kernel_full  # noqa: F401
    import repro.sim.batch.kernel_logspace  # noqa: F401
    import repro.sim.batch.kernel_unknown  # noqa: F401


def batch_supported(spec) -> Optional[str]:
    """Why ``spec`` cannot run on the batch backend, or ``None`` if it can.

    The batch backend covers the four core algorithms under any
    registered scheduler.  Specs needing per-agent view logs
    (``record_views``) or the enabled-set self-check
    (``validate_enabledness``) stay on the object engine — those knobs
    are about the object engine's own internals.
    """
    load_kernels()
    if spec.algorithm not in KERNELS:
        return f"algorithm {spec.algorithm!r} has no batch kernel"
    if getattr(spec, "links", None) is not None:
        return "link faults require the object engine"
    if spec.record_views:
        return "record_views requires the object engine"
    if spec.validate_enabledness:
        return "validate_enabledness requires the object engine"
    return None
