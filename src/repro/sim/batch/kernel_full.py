"""Batch kernels for Algorithm 1 (``known_k_full`` / ``known_n_full``).

Both agents run the same two-phase linearisation:

* **CIRCUIT** — walk the ring once, appending inter-token distances to
  ``D`` (circuit detection: ``k`` tokens seen, or ``n`` moves made),
* **DEPLOY** — after the per-trial completion arithmetic (rotation
  rank, §3.1.1 target offset), walk ``remaining`` hops and halt.

Distance columns advance vectorized; the once-per-trial circuit
completion drops to scalar code that calls the same
``rotation_rank``/``minimal_period``/``target_offset`` helpers the
object agents call.  The audit subtlety baked in below: the object
generator decrements ``remaining`` *before* the deployment yield, so
the completion step stores ``rem - 1``, not ``rem``.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from repro.sim.batch.kernels import (
    Kernel,
    bit_cost,
    minimal_period_batch,
    minimal_rotation_index_batch,
    register_kernel,
)

__all__ = ["KnownKFullKernel", "KnownNFullKernel"]

_INIT, _CIRCUIT, _DEPLOY, _DONE = 0, 1, 2, 3


class _FullInfoKernel(Kernel):
    """Shared state layout for the two full-information kernels."""

    halts = True
    # Algorithm 1 agents never message, never suspend and never read
    # the co-located-agents view — let the engine skip all three.
    messaging = False
    suspends = False
    needs_agents_view = False
    # Every action moves or halts, tokens are only released at the
    # distinct homes, and all flat updates below are per-(trial, agent):
    # whole sync rounds may run as one multi-entry step() call.
    fused_sync = True

    def __init__(self, trials: int, agent_count: int, ring_size: int) -> None:
        super().__init__(trials, agent_count, ring_size)
        flats = trials * agent_count
        self.phase = np.full(flats, _INIT, dtype=np.int64)
        self.dis = np.zeros(flats, dtype=np.int64)
        self.counter = np.zeros(flats, dtype=np.int64)  # j (KF) / moved (NF)
        self.learned = np.zeros(flats, dtype=np.int64)  # n (KF) / k (NF)
        self.rank = np.zeros(flats, dtype=np.int64)
        self.dis_base = np.zeros(flats, dtype=np.int64)
        self.remaining = np.zeros(flats, dtype=np.int64)
        self.D = np.zeros((flats, agent_count), dtype=np.int64)
        self.D_len = np.zeros(flats, dtype=np.int64)
        self.D_max = np.zeros(flats, dtype=np.int64)

    # -- hooks the two variants specialise -----------------------------

    def _known_constant(self) -> int:
        raise NotImplementedError

    def _circuit_done(
        self, flat: np.ndarray, circ: np.ndarray, saw_token: np.ndarray
    ) -> np.ndarray:
        """Mask (over the dispatch) of entries completing their circuit."""
        raise NotImplementedError

    def _learned_batch(self, df: np.ndarray, rows: np.ndarray):
        """Store the learned quantity; return ``(n, k)`` (either may be
        a scalar or a per-entry vector, numpy broadcasting does the
        rest)."""
        raise NotImplementedError

    def _complete_batch(self, df: np.ndarray) -> None:
        """Algorithm 1 lines 12-15 for every entry finishing its circuit.

        A finished circuit has recorded exactly ``k`` inter-token
        distances (there are ``k`` tokens and the walk covers the ring
        once), so the rows form a dense ``(C, k)`` matrix and the
        rotation analysis vectorizes.  The arithmetic mirrors
        ``rotation_rank`` / ``minimal_period`` / ``target_offset``
        exactly; ``tests/test_batch_kernels.py`` pins the batched
        helpers against the scalar originals.
        """
        rows = self.D[df]
        rank = minimal_rotation_index_batch(rows)
        period = minimal_period_batch(rows)
        n_vec, k = self._learned_batch(df, rows)
        self.rank[df] = rank
        base_count = k // period
        floor_gap = n_vec // k
        large_gaps = (n_vec % k) // base_count
        cumulative = np.cumsum(rows, axis=1)
        dis_base = np.where(
            rank > 0, cumulative[np.arange(df.size), rank - 1], 0
        )
        self.dis_base[df] = dis_base
        self.remaining[df] = (
            dis_base + rank * floor_gap + np.minimum(rank, large_gaps)
        )

    # -- Kernel interface ----------------------------------------------

    def step(
        self,
        t_idx: np.ndarray,
        a_idx: np.ndarray,
        vtokens: np.ndarray,
        vagents: np.ndarray,
        msgs: Dict[int, Tuple[object, ...]],
    ):
        m = t_idx.size
        flat = t_idx * self.k + a_idx
        ph = self.phase[flat]
        move = np.zeros(m, dtype=bool)
        release = np.zeros(m, dtype=bool)
        halt = np.zeros(m, dtype=bool)
        suspend = np.zeros(m, dtype=bool)

        init = ph == _INIT
        if init.any():
            self.phase[flat[init]] = _CIRCUIT
            move[init] = True
            release[init] = True

        circ = ph == _CIRCUIT
        if circ.any():
            cf = flat[circ]
            self.dis[cf] += 1
            move[circ] = True
            saw_token = circ & (vtokens > 0)
            if saw_token.any():
                tf = flat[saw_token]
                d_val = self.dis[tf]
                self.D[tf, self.D_len[tf]] = d_val
                self.D_len[tf] += 1
                self.D_max[tf] = np.maximum(self.D_max[tf], d_val)
                self.dis[tf] = 0
            done = self._circuit_done(flat, circ, saw_token)
            if done.any():
                df = flat[done]
                self._complete_batch(df)
                # Generator: `while remaining > 0: remaining -= 1; yield
                # move` — or the immediate halt when the target is home.
                walking = self.remaining[df] > 0
                self.remaining[df[walking]] -= 1
                self.phase[df] = np.where(walking, _DEPLOY, _DONE)
                at_home = np.flatnonzero(done)[~walking]
                move[at_home] = False
                halt[at_home] = True

        dep = ph == _DEPLOY
        if dep.any():
            walking = dep & (self.remaining[flat] > 0)
            if walking.any():
                self.remaining[flat[walking]] -= 1
                move[walking] = True
            finished = dep & ~walking
            if finished.any():
                self.phase[flat[finished]] = _DONE
                halt[finished] = True

        return move, release, halt, suspend, []

    def memory_bits(self, t_idx: np.ndarray, a_idx: np.ndarray) -> np.ndarray:
        flat = t_idx * self.k + a_idx
        # One frexp over all scalar counters at once (same arithmetic as
        # summing bit_cost per column, see bit_cost's exactness note).
        scalars = np.stack(
            (
                self.counter[flat],
                self.dis[flat],
                self.learned[flat],
                self.rank[flat],
                self.dis_base[flat],
                self.remaining[flat],
                self.D_max[flat],
            )
        )
        bits = np.frexp(scalars + 1.0)[1].astype(np.int64)
        total = bits[:6].sum(axis=0)
        total += int(bit_cost(np.array([self._known_constant()]))[0])
        total += np.maximum(1, self.D_len[flat]) * bits[6]
        return total


@register_kernel("known_k_full")
class KnownKFullKernel(_FullInfoKernel):
    """Algorithm 1: circuit detected by counting ``k`` token nodes."""

    def _known_constant(self) -> int:
        return self.k

    def _circuit_done(
        self, flat: np.ndarray, circ: np.ndarray, saw_token: np.ndarray
    ) -> np.ndarray:
        done = np.zeros(flat.size, dtype=bool)
        if saw_token.any():
            self.counter[flat[saw_token]] += 1  # j += 1 per token node
            done[saw_token] = self.counter[flat[saw_token]] == self.k
        return done

    def _learned_batch(self, df: np.ndarray, rows: np.ndarray):
        n_vec = rows.sum(axis=1)  # n = sum(D)
        self.learned[df] = n_vec
        return n_vec, self.k


@register_kernel("known_n_full")
class KnownNFullKernel(_FullInfoKernel):
    """Footnote 2: circuit detected by counting ``n`` moves."""

    def _known_constant(self) -> int:
        return self.n

    def _circuit_done(
        self, flat: np.ndarray, circ: np.ndarray, saw_token: np.ndarray
    ) -> np.ndarray:
        # moved += 1 on every circuit step, token or not.
        done = np.zeros(flat.size, dtype=bool)
        cf = flat[circ]
        self.counter[cf] += 1
        done[circ] = self.counter[cf] == self.n
        return done

    def _learned_batch(self, df: np.ndarray, rows: np.ndarray):
        self.learned[df] = self.k  # k = len(D)
        return self.n, self.k
