"""Spec-level entry point for the batch backend.

:func:`run_batch` is the columnar counterpart of calling
:func:`repro.experiments.runner.run_experiment` once per spec: it takes
a homogeneous list of :class:`~repro.spec.ExperimentSpec` (same
algorithm, same (n, k), same engine options — one sweep cell), executes
all of them as a single :class:`~repro.sim.batch.engine.BatchEngine`
batch, and returns the per-trial :class:`RunResult` objects in input
order.  Because each trial gets its own placement and its own scheduler
instance built by the spec itself, the results are byte-identical to
the serial object-engine runs for the same specs — the property
``validate=True`` spot-checks on a deterministic sample of trials by
actually running the object engine and comparing archived payloads
(raising :class:`~repro.errors.BackendMismatch` on any difference).
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import BackendMismatch, ConfigurationError
from repro.sim.batch.engine import BatchEngine
from repro.sim.batch.kernels import batch_supported

__all__ = ["run_batch", "validation_sample"]


def validation_sample(trials: int, samples: int = 3) -> List[int]:
    """Deterministic evenly spaced trial indices for the sampling gate.

    Always includes the first and last trial (when ``trials > 1``), so
    boundary trials — the likeliest to catch indexing bugs — are always
    cross-checked.
    """
    if trials <= 0 or samples <= 0:
        return []
    count = min(samples, trials)
    if count == 1:
        return [0]
    span = trials - 1
    return sorted({round(i * span / (count - 1)) for i in range(count)})


def run_batch(
    specs: Sequence["ExperimentSpec"],
    validate: bool = False,
    validate_samples: int = 3,
    record_log: bool = False,
) -> List["RunResult"]:
    """Run one cell's trials on the batch backend, in input order.

    ``validate=True`` re-runs a :func:`validation_sample` of the specs
    on the object engine and compares the archived result payloads —
    the differential-oracle gate for production sweeps.
    """
    if not specs:
        return []
    first = specs[0]
    for spec in specs:
        reason = batch_supported(spec)
        if reason is not None:
            raise ConfigurationError(f"spec is not batchable: {reason}")
        if spec.algorithm != first.algorithm:
            raise ConfigurationError(
                "one batch runs one algorithm; got "
                f"{spec.algorithm!r} and {first.algorithm!r}"
            )
        if spec.memory_audit_interval != first.memory_audit_interval:
            raise ConfigurationError(
                "all trials of one batch must share memory_audit_interval"
            )
        if spec.collect_metrics != first.collect_metrics:
            raise ConfigurationError(
                "all trials of one batch must share collect_metrics"
            )
    engine = BatchEngine(
        algorithm=first.algorithm,
        placements=[spec.build_placement() for spec in specs],
        schedulers=[spec.build_scheduler() for spec in specs],
        max_steps=[spec.max_steps for spec in specs],
        memory_audit_interval=first.memory_audit_interval,
        collect_metrics=first.collect_metrics,
        record_log=record_log,
    )
    engine.run()
    results = [engine.result_for(trial) for trial in range(len(specs))]
    if validate:
        _validate_against_oracle(specs, results, validate_samples)
    return results


def _validate_against_oracle(
    specs: Sequence["ExperimentSpec"],
    results: Sequence["RunResult"],
    samples: int,
) -> None:
    """Re-run sampled trials on the object engine; compare payloads."""
    from repro.experiments.runner import run_experiment
    from repro.store.records import result_to_payload

    for trial in validation_sample(len(specs), samples):
        oracle = run_experiment(specs[trial])
        expected = result_to_payload(oracle)
        actual = result_to_payload(results[trial])
        if expected != actual:
            diverging = sorted(
                key
                for key in set(expected) | set(actual)
                if expected.get(key) != actual.get(key)
            )
            raise BackendMismatch(
                f"batch backend diverged from the object engine on trial "
                f"{trial} ({specs[trial].algorithm}, "
                f"n={results[trial].placement.ring_size}, "
                f"k={results[trial].placement.agent_count}, "
                f"scheduler={results[trial].scheduler}): "
                f"fields {diverging} differ"
            )
