"""Structured execution traces (optional, for examples, tests and debugging).

A :class:`TraceRecorder` attached to the engine receives one
:class:`TraceEvent` per atomic action plus lifecycle events (token
releases, broadcasts, halts, suspensions).  Property-based tests replay
traces to assert the model invariants (FIFO no-overtaking, token
monotonicity, stayers-only visibility); examples pretty-print them.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable, List, Optional

__all__ = ["TraceEventKind", "TraceEvent", "TraceRecorder", "format_trace"]


class TraceEventKind(Enum):
    """The observable event types of one execution."""

    ARRIVE = "arrive"  # agent popped from a link queue onto a node
    ACT_IN_PLACE = "act"  # staying agent activated without arrival
    MOVE = "move"  # agent left a node onto its out-link
    SETTLE = "settle"  # agent decided to stay at the node
    TOKEN = "token"  # agent released its token
    BROADCAST = "broadcast"  # agent sent a message to co-located agents
    HALT = "halt"  # agent entered the halt state
    SUSPEND = "suspend"  # agent entered a suspended state
    WAKE = "wake"  # suspended/waiting agent re-enabled by a message


@dataclass(frozen=True)
class TraceEvent:
    """One observable event.

    ``step`` is the global activation counter, ``node`` the simulator's
    node index (invisible to agents, visible to the observer), ``detail``
    an event-specific payload (e.g. the broadcast message).
    """

    step: int
    kind: TraceEventKind
    agent_id: int
    node: int
    detail: Optional[object] = None


class TraceRecorder:
    """Collects trace events; optionally filters to reduce memory.

    ``keep`` is a predicate over :class:`TraceEvent`; the default keeps
    everything.  Long benchmark runs attach no recorder at all, so
    tracing costs nothing unless requested.
    """

    def __init__(self, keep: Optional[Callable[[TraceEvent], bool]] = None) -> None:
        self._keep = keep
        self.events: List[TraceEvent] = []

    def record(self, event: TraceEvent) -> None:
        if self._keep is None or self._keep(event):
            self.events.append(event)

    def of_kind(self, kind: TraceEventKind) -> List[TraceEvent]:
        """Return all recorded events of one kind, in order."""
        return [event for event in self.events if event.kind is kind]

    def for_agent(self, agent_id: int) -> List[TraceEvent]:
        """Return all recorded events of one agent, in order."""
        return [event for event in self.events if event.agent_id == agent_id]


def format_trace(events: List[TraceEvent], limit: Optional[int] = None) -> str:
    """Render events as aligned text lines (used by examples)."""
    lines = []
    for event in events[: limit if limit is not None else len(events)]:
        detail = "" if event.detail is None else f" {event.detail!r}"
        lines.append(
            f"[{event.step:>7}] agent {event.agent_id:>3} "
            f"{event.kind.value:<9} @node {event.node:>4}{detail}"
        )
    if limit is not None and len(events) > limit:
        lines.append(f"... ({len(events) - limit} more events)")
    return "\n".join(lines)
