"""Agent base class: anonymous state machines with audited memory.

Agents in the model are anonymous state machines.  Writing the paper's
multi-phase traversal algorithms as explicit transition tables would bury
their structure, so concrete agents implement :meth:`Agent.protocol` as a
Python generator: the generator *yields* an :class:`Action` (steps 3-5 of
an atomic action) and *receives* the next :class:`NodeView` (steps 1-2 of
the following action).  One ``yield`` therefore corresponds to exactly
one atomic action, which keeps the code and the paper's pseudocode in
lockstep.

Two disciplines keep the simulation faithful:

* **All algorithm variables live as instance attributes**, never as
  generator locals, and are registered via :meth:`Agent.declare` /
  :meth:`Agent.declare_sequence`.  :meth:`memory_bits` then audits the
  agent's space usage after every action, giving the Table 1 memory
  measurements their meaning.
* **Agents never see node identities.**  The engine hands them node
  views only; home detection, circuit detection etc. must be done the
  way the paper does it (token counting, knowledge of k, ...).

Forking
-------

Protocol generators cannot be copied, so a mid-run agent cannot be
cloned structurally.  Instead the base class supports *replay forking*:
with view recording enabled (:meth:`Agent.begin_view_recording`, done
by the engine when built with ``record_views=True``), every
:class:`NodeView` the agent consumes is logged, and :meth:`Agent.fork`
rebuilds an equivalent agent by constructing a fresh instance (the
constructor arguments are captured automatically) and re-feeding it the
logged views.  Protocols are deterministic functions of their view
sequence — the model has no agent-local randomness — so the fork lands
in exactly the same state, generator control point included.  This is
what makes the model checker's copy-on-branch :meth:`Engine.fork`
possible.
"""

from __future__ import annotations

import functools

from typing import Dict, Generator, Iterable, List, Optional, Tuple

from repro.errors import ProtocolViolation, SimulationError
from repro.sim.actions import Action, NodeView

__all__ = ["Agent", "AgentProtocol"]

AgentProtocol = Generator[Action, NodeView, None]


def _bits_for_value(value: int) -> int:
    """Bits to store a bounded non-negative counter with value ``value``.

    ``ceil(log2(value + 2))`` so that 0 still costs one bit and the
    encoding distinguishes "unset" from "zero".
    """
    return max(1, int(value + 1).bit_length())


class Agent:
    """Base class for all protocol agents.

    Subclasses implement :meth:`protocol` and register their paper-level
    state variables with :meth:`declare` (scalars) and
    :meth:`declare_sequence` (arrays such as the distance sequence D).
    The engine owns the lifecycle: it calls :meth:`start` once, then
    :meth:`act` once per scheduled atomic action.
    """

    def __init__(self) -> None:
        if not hasattr(self, "_ctor_args"):
            # Reached only when no subclass __init__ ran first (plain
            # Agent subclasses without their own constructor).
            self._ctor_args = ((), {})
        self._generator: Optional[AgentProtocol] = None
        self._halted = False
        self._suspended = False
        self._declared_scalars: Dict[str, None] = {}
        self._declared_sequences: Dict[str, None] = {}
        self._view_log: Optional[List[NodeView]] = None

    def __init_subclass__(cls, **kwargs) -> None:
        # Capture constructor arguments transparently so fork() can
        # rebuild a fresh instance of any concrete agent.  Only the
        # outermost __init__ records (set-once): a subclass chaining to
        # super().__init__ must not overwrite the original call.
        super().__init_subclass__(**kwargs)
        if "__init__" not in cls.__dict__:
            return
        original = cls.__dict__["__init__"]

        @functools.wraps(original)
        def capturing_init(self, *args, **kw):
            if not hasattr(self, "_ctor_args"):
                self._ctor_args = (args, kw)
            original(self, *args, **kw)

        cls.__init__ = capturing_init

    # ------------------------------------------------------------------
    # Protocol body — subclasses override
    # ------------------------------------------------------------------

    def protocol(self, first_view: NodeView) -> AgentProtocol:
        """Return the generator implementing the agent's algorithm.

        ``first_view`` is the view of the very first atomic action (the
        agent starting at its home node).  The generator must yield an
        :class:`Action` per atomic action and may finish (return) only
        after yielding a halting or suspending action.
        """
        raise NotImplementedError

    # ------------------------------------------------------------------
    # State declarations for memory accounting
    # ------------------------------------------------------------------

    def declare(self, *names: str) -> None:
        """Register scalar instance attributes as algorithm state."""
        for name in names:
            self._declared_scalars[name] = None

    def declare_sequence(self, *names: str) -> None:
        """Register sequence-valued instance attributes as algorithm state."""
        for name in names:
            self._declared_sequences[name] = None

    def memory_bits(self) -> int:
        """Return the current size of the declared algorithm state in bits.

        Scalars cost ``ceil(log2(v+2))`` bits (booleans cost 1); sequences
        cost ``len * bits(max element)``.  ``None`` (unset) costs one bit.
        """
        total = 0
        for name in self._declared_scalars:
            value = getattr(self, name, None)
            if value is None:
                total += 1
            elif isinstance(value, bool):
                total += 1
            elif isinstance(value, int):
                # Inline _bits_for_value: this audit runs every few steps
                # for every agent, and abs()+call overhead adds up.
                bits = (value + 1 if value >= 0 else 1 - value).bit_length()
                total += bits if bits > 1 else 1
            else:
                raise SimulationError(
                    f"declared scalar {name!r} has non-integer value {value!r}"
                )
        for name in self._declared_sequences:
            value = getattr(self, name, None)
            if value is None:
                total += 1
                continue
            items: Iterable[int] = value
            if not hasattr(items, "__len__"):
                items = tuple(items)
            # max(map(abs, ...)) runs at C speed; sequences like the
            # distance sequence D have k entries and dominate the audit.
            largest = max(map(abs, map(int, items)), default=0)
            width = max(1, (largest + 1).bit_length())
            total += max(1, len(items)) * width
        return total

    # ------------------------------------------------------------------
    # Engine-facing lifecycle
    # ------------------------------------------------------------------

    @property
    def halted(self) -> bool:
        """True once the agent entered the paper's halt state."""
        return self._halted

    @property
    def suspended(self) -> bool:
        """True while the agent is in a suspended state (message-wakeable)."""
        return self._suspended

    def begin_view_recording(self) -> None:
        """Log every consumed view from now on, enabling :meth:`fork`.

        Must be called before :meth:`start` — a fork replays the full
        view history from the initial state, so a partial log cannot
        reconstruct the agent.
        """
        if self._view_log is None:
            if self._generator is not None:
                raise SimulationError(
                    "view recording must be enabled before the agent starts"
                )
            self._view_log = []

    @property
    def forkable(self) -> bool:
        """True when the agent records views and can be forked."""
        return self._view_log is not None

    def fork(self) -> "Agent":
        """Return an equivalent agent rebuilt by replaying logged views.

        Requires view recording (see module docstring).  The clone is a
        fresh instance of the same concrete class, constructed with the
        captured constructor arguments and driven through the identical
        view sequence, so its declared state, terminal flags and
        generator control point all match the original's.
        """
        if self._view_log is None:
            raise SimulationError(
                "cannot fork an agent without view recording; build the "
                "engine with record_views=True"
            )
        args, kwargs = self._ctor_args
        fresh = type(self)(*args, **kwargs)
        fresh.begin_view_recording()
        views = self._view_log
        if views:
            fresh.start(views[0])
            for view in views[1:]:
                fresh.act(view)
        return fresh

    def start(self, first_view: NodeView) -> Action:
        """Run the first atomic action (the agent starting at its home)."""
        if self._generator is not None:
            raise SimulationError("agent started twice")
        if self._view_log is not None:
            self._view_log.append(first_view)
        self._generator = self.protocol(first_view)
        try:
            action = next(self._generator)
        except StopIteration:
            raise ProtocolViolation(
                "agent protocol finished without yielding a single action"
            ) from None
        return self._register(action)

    def act(self, view: NodeView) -> Action:
        """Run one atomic action: deliver ``view``, collect the action."""
        if self._generator is None:
            raise SimulationError("agent activated before start()")
        if self._halted:
            raise SimulationError("halted agent activated")
        if self._view_log is not None:
            self._view_log.append(view)
        self._suspended = False
        try:
            action = self._generator.send(view)
        except StopIteration:
            raise ProtocolViolation(
                "agent protocol finished without halting or suspending; "
                "generators must end on a halt/suspend action"
            ) from None
        return self._register(action)

    def state_fingerprint(self) -> Tuple[object, ...]:
        """Opaque state used for Lemma 1's local-configuration comparison.

        Returns the values of all declared variables plus the terminal
        flags.  Two agents with equal fingerprints are in the same
        algorithm state.
        """
        scalars = tuple(
            (name, getattr(self, name, None)) for name in sorted(self._declared_scalars)
        )
        sequences = tuple(
            (name, tuple(getattr(self, name, None) or ()))
            for name in sorted(self._declared_sequences)
        )
        return (type(self).__name__, self._halted, self._suspended, scalars, sequences)

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _register(self, action: Action) -> Action:
        if not isinstance(action, Action):
            raise ProtocolViolation(f"agent yielded {action!r}, not an Action")
        if action.halt:
            self._halted = True
            self._close_generator()
        if action.suspend:
            self._suspended = True
        return action

    def _close_generator(self) -> None:
        if self._generator is not None:
            self._generator.close()
            self._generator = None
