"""Atomic actions and node views (paper Section 2.1).

Each activation of an agent is one *atomic action* consisting of five
steps: (1) arrive or start at a node, (2) receive all pending messages,
(3) compute locally, (4) broadcast a message to agents staying at the
node, (5) move forward or stay.  The engine drives the agent with a
:class:`NodeView` (everything observable at the node) and receives back
an :class:`Action` describing steps 3-5.

Actions are validated eagerly: an agent cannot move and halt at once,
cannot broadcast ``None`` payloads, and cannot do anything after
halting.  Violations raise :class:`repro.errors.ProtocolViolation` at
construction time so bugs surface at the faulty agent, not later in the
engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import NamedTuple, Optional, Tuple

from repro.errors import ProtocolViolation

__all__ = ["NodeView", "Action", "Move", "Stay"]


class Move(Enum):
    """What the agent does with its position at the end of the action."""

    FORWARD = "forward"  # leave to the next node (enqueue on the out-link)
    STAY = "stay"  # remain staying at the current node


#: Convenience alias so agent code can write ``Move.STAY`` / ``Stay``.
Stay = Move.STAY


class NodeView(NamedTuple):
    """Everything an agent can observe during one atomic action.

    Attributes mirror the model:

    * ``tokens`` — number of tokens at the current node,
    * ``agents_present`` — number of *other* agents staying at the node
      (in-transit agents are invisible; the acting agent is excluded),
    * ``messages`` — all messages delivered in step 2, oldest first
      (empty tuple when none),
    * ``arrived`` — ``True`` when this action begins with an arrival from
      the incoming link, ``False`` when the agent was already staying.

    Node identity is deliberately absent: nodes are anonymous.  A named
    tuple rather than a dataclass: the engine builds one per atomic
    action, and tuple construction is several times cheaper while
    staying just as immutable.
    """

    tokens: int
    agents_present: int
    messages: Tuple[object, ...] = ()
    arrived: bool = False


@dataclass(frozen=True)
class Action:
    """Steps 3-5 of one atomic action.

    * ``release_token`` — drop the agent's token at the current node,
    * ``broadcast`` — payload sent to every other agent staying at the
      current node (``None`` means no message),
    * ``move`` — :data:`Move.FORWARD` or :data:`Move.STAY`,
    * ``halt`` — enter the paper's unique halt state (terminal, never
      reactivated),
    * ``suspend`` — enter a suspended state (reactivated only by a
      message arrival; used by the relaxed algorithm and by followers
      waiting for their leader's notification).
    """

    release_token: bool = False
    broadcast: Optional[object] = None
    move: Move = Move.STAY
    halt: bool = False
    suspend: bool = False

    def __post_init__(self) -> None:
        if self.halt and self.move is Move.FORWARD:
            raise ProtocolViolation("an agent cannot halt and move in one action")
        if self.suspend and self.move is Move.FORWARD:
            raise ProtocolViolation("an agent cannot suspend and move in one action")
        if self.halt and self.suspend:
            raise ProtocolViolation("halt and suspend are mutually exclusive")

    # ------------------------------------------------------------------
    # Constructors used by agent code for readability
    # ------------------------------------------------------------------

    @staticmethod
    def move_forward(
        release_token: bool = False, broadcast: Optional[object] = None
    ) -> "Action":
        """Leave for the next node, optionally releasing a token or sending."""
        if broadcast is None and not release_token:
            return _PLAIN_FORWARD
        return Action(
            release_token=release_token, broadcast=broadcast, move=Move.FORWARD
        )

    @staticmethod
    def stay(broadcast: Optional[object] = None) -> "Action":
        """Remain staying at the node (a plain wait step)."""
        if broadcast is None:
            return _PLAIN_STAY
        return Action(broadcast=broadcast, move=Move.STAY)

    @staticmethod
    def halt_here(broadcast: Optional[object] = None) -> "Action":
        """Enter the halt state at the current node (termination detection)."""
        if broadcast is None:
            return _PLAIN_HALT
        return Action(broadcast=broadcast, move=Move.STAY, halt=True)

    @staticmethod
    def suspend_here(broadcast: Optional[object] = None) -> "Action":
        """Enter a suspended state at the current node (relaxed problem)."""
        if broadcast is None:
            return _PLAIN_SUSPEND
        return Action(broadcast=broadcast, move=Move.STAY, suspend=True)


# Actions are frozen values, so the four payload-free shapes — the vast
# majority of all actions in a run — are interned once and reused.
_PLAIN_FORWARD = Action(move=Move.FORWARD)
_PLAIN_STAY = Action(move=Move.STAY)
_PLAIN_HALT = Action(move=Move.STAY, halt=True)
_PLAIN_SUSPEND = Action(move=Move.STAY, suspend=True)
