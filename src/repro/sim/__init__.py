"""Atomic-action simulation engine, schedulers, metrics and traces."""

from repro.sim.actions import Action, Move, NodeView, Stay
from repro.sim.agent import Agent, AgentProtocol
from repro.sim.engine import Engine
from repro.sim.metrics import Metrics
from repro.sim.scheduler import (
    BurstScheduler,
    ChaosScheduler,
    LaggardScheduler,
    RandomScheduler,
    ReplayScheduler,
    Scheduler,
    SynchronousScheduler,
)
from repro.sim.trace import TraceEvent, TraceEventKind, TraceRecorder, format_trace

__all__ = [
    "Action",
    "Move",
    "NodeView",
    "Stay",
    "Agent",
    "AgentProtocol",
    "Engine",
    "Metrics",
    "Scheduler",
    "SynchronousScheduler",
    "RandomScheduler",
    "ReplayScheduler",
    "LaggardScheduler",
    "BurstScheduler",
    "ChaosScheduler",
    "TraceEvent",
    "TraceEventKind",
    "TraceRecorder",
    "format_trace",
]
