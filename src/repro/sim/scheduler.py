"""Fair schedulers, including adversarial ones (paper Section 2.1).

The model quantifies over all *fair* schedules: infinite agent sequences
in which every agent appears infinitely often.  The engine asks a
scheduler for the next batch of agents to activate, passing the set of
currently *enabled* agents (agents that actually have an action to take:
staying with pending work or messages, or at the head of a link queue).

Schedulers provided:

* :class:`SynchronousScheduler` — one round activates every enabled
  agent once.  The number of rounds equals the paper's *ideal time*
  (every move/wait costs at most one unit, computation is free).
* :class:`RandomScheduler` — activates one uniformly random enabled
  agent per step; seeds make executions reproducible.
* :class:`LaggardScheduler` — an adversary that starves a chosen set of
  agents for a fixed budget of steps whenever other agents are enabled,
  modelling arbitrarily slow agents within fairness.
* :class:`BurstScheduler` — runs each enabled agent in long exclusive
  bursts, modelling one very fast agent at a time.

All schedulers are fair by construction given the engine's guarantee
that enabled agents remain enabled until activated.

Each scheduler registers itself with :mod:`repro.registry` under a spec
name (``sync``, ``random``, ``laggard``, ``burst``, ``chaos``,
``replay``) with typed parameter declarations, so one spec string like
``"laggard:victims=0,patience=5,seed=3"`` drives the CLI, the sweep
runner and the model checker identically.  This module is the only
place scheduler classes are constructed outside the registry and tests.

**RNG consumption order is a compatibility contract.**  Every seeded
scheduler documents exactly when its ``random.Random`` instance is
consulted (and with what call), because any change silently re-times
every archived seeded run: content-addressed records, fuzzer corpora
and replay logs all assume a given seed produces the same schedule
forever.  ``tests/test_scheduler_contract.py`` pins each scheduler
against an independent replica RNG; if you need different behaviour,
register a new scheduler name instead of editing a draw.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Set

from repro.errors import ConfigurationError
from repro.registry import CONTEXT_SEED, SchedulerParam, register_scheduler

__all__ = [
    "Scheduler",
    "SynchronousScheduler",
    "RandomScheduler",
    "LaggardScheduler",
    "BurstScheduler",
    "ChaosScheduler",
    "ReplayScheduler",
    "RecordingScheduler",
]


class Scheduler:
    """Strategy interface: pick the next batch of agents to activate."""

    #: Whether one batch should advance the ideal-time clock by one unit.
    counts_time = False

    def next_batch(self, enabled: Sequence[int]) -> List[int]:
        """Return the agent ids to activate next, in order.

        ``enabled`` is sorted and non-empty.  The returned list must be a
        non-empty subsequence of ``enabled`` (the engine re-checks
        enabledness before each activation inside the batch, because an
        earlier activation in the batch can disable a later agent — e.g.
        by moving into the link queue slot ahead of it).
        """
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable name used in experiment reports."""
        return type(self).__name__


@register_scheduler(
    "sync",
    build=lambda cls, args: cls(),
    description="synchronous rounds: every enabled agent once per round",
)
class SynchronousScheduler(Scheduler):
    """Activate every enabled agent once per round; rounds measure time.

    This realises the ideal-time assumptions of Section 2.2: in one time
    unit every agent completes at most one move or wait.  The paper's
    algorithms must work under *any* fair schedule; this scheduler is the
    one whose round count equals the ideal time complexity.
    """

    counts_time = True

    def next_batch(self, enabled: Sequence[int]) -> List[int]:
        return list(enabled)


@register_scheduler(
    "random",
    params=(
        SchedulerParam(
            "seed", default=CONTEXT_SEED, doc="RNG seed (defaults to the context seed)"
        ),
    ),
    description="one uniformly random enabled agent per step",
)
class RandomScheduler(Scheduler):
    """Activate one uniformly random enabled agent per step.

    RNG contract: every :meth:`next_batch` call makes exactly one
    ``rng.choice(enabled)`` draw — never more, never fewer — against
    the *sorted* enabled sequence the engine passes in.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._seed = seed

    def next_batch(self, enabled: Sequence[int]) -> List[int]:
        return [self._rng.choice(enabled)]

    def describe(self) -> str:
        return f"RandomScheduler(seed={self._seed})"


@register_scheduler(
    "laggard",
    params=(
        SchedulerParam(
            "victims",
            kind="int_list",
            default=(0,),
            aliases=("victim",),
            doc="agent ids to starve, e.g. victims=0-2",
        ),
        SchedulerParam("patience", default=100, doc="starvation budget per cycle"),
        SchedulerParam(
            "seed", default=CONTEXT_SEED, doc="RNG seed (defaults to the context seed)"
        ),
    ),
    build=lambda cls, args: cls(
        list(args["victims"]), patience=args["patience"], seed=args["seed"]
    ),
    description="adversary starving chosen agents within fairness",
)
class LaggardScheduler(Scheduler):
    """Starve ``laggards`` whenever possible, for ``patience`` steps each time.

    While the starvation budget lasts and at least one non-laggard is
    enabled, only non-laggards run.  When the budget is exhausted (or no
    other agent is enabled — fairness), the laggards run once and the
    budget resets.  This models the adversary used in the paper's
    asynchrony arguments: an agent may be arbitrarily slow, but not
    forever.

    The budget resets only when a laggard actually runs.  If the budget
    runs out while no laggard is enabled, the owed laggard turn stays
    outstanding (the budget is *not* silently refilled): eager agents
    keep the system progressing, and the moment a laggard becomes
    enabled it runs immediately instead of waiting out a fresh
    starvation window.  Without this, a laggard that is rarely enabled
    could be starved for up to ``2 * patience`` steps per cycle while
    the progress accounting claimed ``patience``.

    RNG contract: exactly one ``rng.choice(pool)`` draw per
    :meth:`next_batch` call, where ``pool`` is the eager sublist (budget
    available), the lagging sublist (laggard turn), or the eager
    sublist again (owed-turn fallback) — each preserving the sorted
    order of ``enabled``.  The branch taken never changes the number of
    draws, so the RNG stream depends only on the call count and pools.
    """

    def __init__(
        self, laggards: Sequence[int], patience: int = 50, seed: int = 0
    ) -> None:
        self._laggards: Set[int] = set(laggards)
        self._patience = patience
        self._budget = patience
        self._rng = random.Random(seed)

    def next_batch(self, enabled: Sequence[int]) -> List[int]:
        eager = [agent for agent in enabled if agent not in self._laggards]
        if eager and self._budget > 0:
            self._budget -= 1
            return [self._rng.choice(eager)]
        lagging = [agent for agent in enabled if agent in self._laggards]
        if lagging:
            self._budget = self._patience
            return [self._rng.choice(lagging)]
        # Budget exhausted but no laggard is enabled: keep the laggard
        # turn owed (budget stays empty) and let an eager agent run so
        # the execution still makes progress.
        return [self._rng.choice(eager)]

    def describe(self) -> str:
        return (
            f"LaggardScheduler(laggards={sorted(self._laggards)}, "
            f"patience={self._patience})"
        )


@register_scheduler(
    "replay",
    params=(
        SchedulerParam(
            "log",
            kind="int_list",
            default=(),
            doc="recorded agent-id sequence, e.g. log=0-1-1-0",
        ),
    ),
    description="replay a recorded activation sequence exactly",
)
class ReplayScheduler(Scheduler):
    """Replay a recorded activation sequence exactly (deterministic debug).

    ``log`` is the agent-id sequence of a previous run (the engine's
    ``activation_log``) or a model-checker counterexample schedule.
    Replaying it against the same initial configuration reproduces the
    execution event for event — the foundation for bisecting
    schedule-dependent bugs.

    The contract, exactly:

    * **Entries naming a currently-disabled (or unknown) agent are
      skipped permanently** — the cursor advances past them and never
      revisits them, so each log entry is consumed at most once.  A
      faithful replay on the original initial configuration never skips
      (a recorded entry was enabled when recorded); skips only occur
      when the log is replayed against a different configuration or
      algorithm.
    * **An exhausted log falls back to the lowest-id enabled agent**,
      one per batch, so the run can still quiesce.  This includes the
      degenerate empty log, which falls back from the first batch.
      :attr:`exhausted` reports whether the recorded entries have all
      been consumed — check it after ``run()`` to distinguish "replayed
      fully, then fell back" from "stopped mid-log".
    * **The scheduler never raises and never returns an empty batch**:
      the engine only calls it with a non-empty enabled sequence, and
      every call returns exactly one agent (fair, since the fallback is
      the engine's own enabled set).
    """

    def __init__(self, log: Sequence[int]) -> None:
        self._log = list(log)
        self._cursor = 0

    def next_batch(self, enabled: Sequence[int]) -> List[int]:
        while self._cursor < len(self._log):
            candidate = self._log[self._cursor]
            self._cursor += 1
            if candidate in enabled:
                return [candidate]
        return [enabled[0]]

    @property
    def exhausted(self) -> bool:
        """True once the recorded log has been fully consumed."""
        return self._cursor >= len(self._log)

    def describe(self) -> str:
        return f"ReplayScheduler(len={len(self._log)})"


class RecordingScheduler(Scheduler):
    """Transparent shim: delegate to ``inner``, record every decision.

    The engine's ``activation_log`` records which agents *acted*;
    this shim records what the wrapped scheduler *chose*, including
    batch entries the engine later skipped because an earlier activation
    in the same batch disabled them.  Wrap any scheduler you hand to
    code you do not control to capture its raw decisions — e.g. to
    archive an adversary's behaviour for a bug report, or to seed a
    fuzzing corpus (``repro.fuzz`` harvests its own seed runs through
    the engine directly, where the activation log suffices; the shim is
    for captures from the outside).

    ``log`` is the flat decision sequence (batches concatenated) and
    ``batches`` the per-call structure.  Both replay through
    :class:`ReplayScheduler`, whose skip-disabled semantics re-drop the
    entries the engine dropped.
    """

    def __init__(self, inner: Scheduler) -> None:
        self._inner = inner
        self._batches: List[List[int]] = []

    @property
    def counts_time(self) -> bool:  # type: ignore[override]
        return self._inner.counts_time

    @property
    def batches(self) -> List[List[int]]:
        """Every batch the wrapped scheduler returned, in call order."""
        return [list(batch) for batch in self._batches]

    @property
    def log(self) -> List[int]:
        """The flat decision sequence (batches concatenated)."""
        return [agent for batch in self._batches for agent in batch]

    def next_batch(self, enabled: Sequence[int]) -> List[int]:
        batch = self._inner.next_batch(enabled)
        self._batches.append(list(batch))
        return batch

    def describe(self) -> str:
        return f"RecordingScheduler({self._inner.describe()})"


@register_scheduler(
    "chaos",
    params=(
        SchedulerParam("epoch", default=30, doc="steps between strategy switches"),
        SchedulerParam(
            "seed", default=CONTEXT_SEED, doc="RNG seed (defaults to the context seed)"
        ),
    ),
    description="rotating adversary mix: random / starve-low / starve-high / burst",
)
class ChaosScheduler(Scheduler):
    """Compose adversaries: switch strategy every ``epoch`` steps.

    Rotates between uniform-random choice, starving the lowest-id
    enabled agent, starving the highest-id enabled agent, and bursting
    one agent — a stress mix that has no bias any single adversary has.
    Fair because every strategy in the rotation is fair.

    RNG contract: the mode is ``(step // epoch) % 4`` with ``step``
    counted *before* the increment (call 0 is mode 0).  Mode 0 makes
    exactly one ``rng.choice(enabled)`` draw; modes 1 and 2 consume no
    randomness at all; mode 3 draws once **only** when the current
    burst target is unset or no longer enabled, otherwise zero draws.
    """

    def __init__(self, epoch: int = 30, seed: int = 0) -> None:
        if epoch < 1:
            # epoch=0 would divide by zero on the very first batch; fail
            # at construction where the bad spec string is still in view.
            raise ConfigurationError(f"chaos epoch must be >= 1, got {epoch}")
        self._epoch = epoch
        self._step = 0
        self._rng = random.Random(seed)
        self._burst_target: Optional[int] = None

    def next_batch(self, enabled: Sequence[int]) -> List[int]:
        mode = (self._step // self._epoch) % 4
        self._step += 1
        if mode == 0:
            return [self._rng.choice(enabled)]
        if mode == 1:  # starve the lowest id when possible
            return [enabled[-1] if len(enabled) > 1 else enabled[0]]
        if mode == 2:  # starve the highest id when possible
            return [enabled[0]]
        if self._burst_target not in enabled:
            self._burst_target = self._rng.choice(enabled)
        return [self._burst_target]

    def describe(self) -> str:
        return f"ChaosScheduler(epoch={self._epoch})"


@register_scheduler(
    "burst",
    params=(
        SchedulerParam("burst", default=40, doc="exclusive steps per agent turn"),
        SchedulerParam(
            "seed", default=CONTEXT_SEED, doc="RNG seed (defaults to the context seed)"
        ),
    ),
    description="one agent runs in long exclusive bursts, then rotates",
)
class BurstScheduler(Scheduler):
    """Run one agent exclusively for up to ``burst`` steps, then rotate.

    Models executions where one agent is much faster than the others —
    the schedule family behind the Algorithm 2/3 overtaking analysis.

    RNG contract: continuing a burst (current agent still enabled,
    steps remaining) consumes no randomness; starting or rotating a
    burst — first call, budget exhausted, or the current agent gone
    from ``enabled`` — makes exactly one ``rng.choice(enabled)`` draw.
    """

    def __init__(self, burst: int = 25, seed: int = 0) -> None:
        if burst < 1:
            raise ConfigurationError(f"burst length must be >= 1, got {burst}")
        self._burst = burst
        self._remaining = burst
        self._current: Optional[int] = None
        self._rng = random.Random(seed)

    def next_batch(self, enabled: Sequence[int]) -> List[int]:
        if (
            self._current is not None
            and self._current in enabled
            and self._remaining > 0
        ):
            self._remaining -= 1
            return [self._current]
        self._current = self._rng.choice(enabled)
        self._remaining = self._burst - 1
        return [self._current]

    def describe(self) -> str:
        return f"BurstScheduler(burst={self._burst})"
