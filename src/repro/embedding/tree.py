"""Tree networks and Euler-tour ring embedding (paper Section 5).

The conclusion sketches how the ring algorithms extend to trees: an
agent moving depth-first sees the ``2(n-1)`` directed edge traversals
of an Euler tour as a *virtual ring* with ``2(n-1)`` nodes.  This
module builds that substrate:

* :class:`Tree` — an undirected tree over nodes ``0..n-1`` with
  validation, plus generators for random trees, paths and stars;
* :func:`euler_tour` — the depth-first tour as a list of tree nodes of
  length ``2(n-1)`` (position ``i`` is the tree node occupied after the
  ``i``-th edge traversal, starting at the root);
* :class:`VirtualRing` — the tour as a ring: placements of agents on
  distinct tree nodes map to virtual homes (the first tour visit of
  each node), and final virtual positions map back to tree nodes.

``repro.embedding.deploy_on_tree`` then runs any registered ring
algorithm unchanged on the virtual ring; every virtual move corresponds
to one real edge traversal, so the move totals transfer with the
``2(n-1)/n`` factor the paper notes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.ring.placement import Placement

__all__ = ["Tree", "euler_tour", "VirtualRing", "random_tree", "path_tree", "star_tree"]


class Tree:
    """An undirected tree over nodes ``0..n-1``."""

    def __init__(self, size: int, edges: Sequence[Tuple[int, int]]) -> None:
        if size <= 0:
            raise ConfigurationError(f"tree size must be positive, got {size}")
        if len(edges) != size - 1:
            raise ConfigurationError(
                f"a tree on {size} nodes needs {size - 1} edges, got {len(edges)}"
            )
        self.size = size
        self._adjacency: Dict[int, List[int]] = {node: [] for node in range(size)}
        seen = set()
        for u, v in edges:
            if not (0 <= u < size and 0 <= v < size):
                raise ConfigurationError(f"edge ({u}, {v}) outside node range")
            key = (min(u, v), max(u, v))
            if u == v or key in seen:
                raise ConfigurationError(f"duplicate or self-loop edge ({u}, {v})")
            seen.add(key)
            self._adjacency[u].append(v)
            self._adjacency[v].append(u)
        self._assert_connected()

    def neighbours(self, node: int) -> List[int]:
        """Neighbours in insertion order (deterministic tours)."""
        return list(self._adjacency[node])

    def _assert_connected(self) -> None:
        if self.size == 1:
            return
        seen = {0}
        stack = [0]
        while stack:
            node = stack.pop()
            for neighbour in self._adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        if len(seen) != self.size:
            raise ConfigurationError(
                f"edges do not form a connected tree ({len(seen)}/{self.size} reachable)"
            )

    def distance(self, source: int, destination: int) -> int:
        """Tree distance (BFS; used by dispersion diagnostics)."""
        if source == destination:
            return 0
        frontier = [source]
        seen = {source}
        hops = 0
        while frontier:
            hops += 1
            nxt = []
            for node in frontier:
                for neighbour in self._adjacency[node]:
                    if neighbour == destination:
                        return hops
                    if neighbour not in seen:
                        seen.add(neighbour)
                        nxt.append(neighbour)
            frontier = nxt
        raise ConfigurationError("tree is not connected")


def euler_tour(tree: Tree, root: int = 0) -> List[int]:
    """Depth-first Euler tour: node occupied after each edge traversal.

    Length ``2(n-1)``; the tour starts by leaving ``root`` and ends back
    at ``root`` (the last entry is ``root``).  A single-node tree yields
    a one-entry tour so a ring of size 1 still exists.
    """
    if tree.size == 1:
        return [root]
    tour: List[int] = []

    def visit(node: int, parent: int) -> None:
        for neighbour in tree.neighbours(node):
            if neighbour == parent:
                continue
            tour.append(neighbour)  # traverse node -> neighbour
            visit(neighbour, node)
            tour.append(node)  # traverse neighbour -> node
    visit(root, -1)
    return tour


@dataclass(frozen=True)
class VirtualRing:
    """The Euler tour seen as a unidirectional ring."""

    tree: Tree
    tour: Tuple[int, ...]

    @staticmethod
    def of(tree: Tree, root: int = 0) -> "VirtualRing":
        return VirtualRing(tree=tree, tour=tuple(euler_tour(tree, root)))

    @property
    def size(self) -> int:
        return len(self.tour)

    def virtual_home(self, tree_node: int) -> int:
        """First tour position visiting ``tree_node`` (its virtual home)."""
        try:
            return self.tour.index(tree_node)
        except ValueError:
            raise ConfigurationError(
                f"tree node {tree_node} never appears in the tour"
            ) from None

    def tree_node(self, virtual_node: int) -> int:
        """The tree node a virtual ring position corresponds to."""
        return self.tour[virtual_node % self.size]

    def placement(self, tree_nodes: Sequence[int]) -> Placement:
        """Virtual-ring placement of agents sitting on distinct tree nodes."""
        homes = tuple(self.virtual_home(node) for node in tree_nodes)
        return Placement(ring_size=self.size, homes=homes)


def random_tree(size: int, rng: random.Random) -> Tree:
    """Uniform random recursive tree: node i attaches to a random earlier node."""
    edges = [(node, rng.randrange(node)) for node in range(1, size)]
    return Tree(size, edges)


def path_tree(size: int) -> Tree:
    """The path 0-1-2-...-(n-1) — the worst stretch for embeddings."""
    return Tree(size, [(node, node + 1) for node in range(size - 1)])


def star_tree(size: int) -> Tree:
    """The star with centre 0 — the best-case diameter."""
    return Tree(size, [(0, node) for node in range(1, size)])
