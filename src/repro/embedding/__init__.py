"""Ring embeddings for trees and general graphs (paper Section 5)."""

from repro.embedding.deploy import TreeDeployment, deploy_on_graph, deploy_on_tree
from repro.embedding.general import Graph, bfs_spanning_tree, random_connected_graph
from repro.embedding.tree import (
    Tree,
    VirtualRing,
    euler_tour,
    path_tree,
    random_tree,
    star_tree,
)

__all__ = [
    "TreeDeployment",
    "deploy_on_graph",
    "deploy_on_tree",
    "Graph",
    "bfs_spanning_tree",
    "random_connected_graph",
    "Tree",
    "VirtualRing",
    "euler_tour",
    "path_tree",
    "random_tree",
    "star_tree",
]
