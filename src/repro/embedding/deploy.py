"""Running the ring algorithms on embedded virtual rings (paper §5, E17).

:func:`deploy_on_tree` places agents on distinct tree nodes, embeds the
Euler-tour virtual ring, runs a registered ring algorithm unchanged,
and maps the final virtual positions back to tree nodes, reporting both
the virtual-ring verification and tree-level dispersion diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.embedding.general import Graph, bfs_spanning_tree
from repro.embedding.tree import Tree, VirtualRing
from repro.experiments.runner import RunResult, run_experiment
from repro.sim.scheduler import Scheduler

__all__ = ["TreeDeployment", "deploy_on_tree", "deploy_on_graph"]


@dataclass(frozen=True)
class TreeDeployment:
    """Outcome of a deployment over an embedded virtual ring."""

    virtual: RunResult  # the ring-level run (verification refers to this)
    ring: VirtualRing
    tree_positions: Tuple[int, ...]  # final tree nodes, one per agent
    min_tree_distance: int  # smallest pairwise tree distance at the end
    distinct_tree_nodes: int  # how many distinct tree nodes are occupied

    @property
    def ok(self) -> bool:
        """Uniform on the virtual ring (the paper's §5 guarantee)."""
        return self.virtual.ok


def _dispersion(tree: Tree, nodes: Sequence[int]) -> int:
    """Smallest pairwise tree distance among occupied nodes (0 = clash)."""
    best: Optional[int] = None
    items: List[int] = list(nodes)
    for index, first in enumerate(items):
        for second in items[index + 1 :]:
            distance = tree.distance(first, second)
            if best is None or distance < best:
                best = distance
    return best if best is not None else tree.size


def deploy_on_tree(
    tree: Tree,
    agent_tree_nodes: Sequence[int],
    algorithm: str = "known_k_full",
    scheduler: Optional[Scheduler] = None,
    root: int = 0,
) -> TreeDeployment:
    """Run a ring algorithm on the Euler-tour embedding of ``tree``."""
    ring = VirtualRing.of(tree, root=root)
    placement = ring.placement(agent_tree_nodes)
    result = run_experiment(algorithm, placement, scheduler=scheduler)
    tree_positions = tuple(
        ring.tree_node(virtual) for virtual in result.final_positions
    )
    return TreeDeployment(
        virtual=result,
        ring=ring,
        tree_positions=tree_positions,
        min_tree_distance=_dispersion(tree, tree_positions),
        distinct_tree_nodes=len(set(tree_positions)),
    )


def deploy_on_graph(
    graph: Graph,
    agent_graph_nodes: Sequence[int],
    algorithm: str = "known_k_full",
    scheduler: Optional[Scheduler] = None,
    root: int = 0,
) -> TreeDeployment:
    """Spanning-tree embedding for a general connected graph."""
    tree = bfs_spanning_tree(graph, root=root)
    return deploy_on_tree(
        tree, agent_graph_nodes, algorithm=algorithm, scheduler=scheduler, root=root
    )
