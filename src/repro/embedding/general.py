"""General graphs: spanning tree, then the Euler-tour ring (paper §5).

For a general connected network the paper suggests building a spanning
tree and embedding the ring in it.  :func:`bfs_spanning_tree` extracts
a deterministic BFS tree from an adjacency structure, after which the
machinery of :mod:`repro.embedding.tree` applies unchanged.  The
embedded ring has ``2(n-1)`` virtual nodes for an ``n``-node network,
so move totals stay asymptotically equal (constant factor 2).
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.embedding.tree import Tree
from repro.errors import ConfigurationError

__all__ = ["Graph", "bfs_spanning_tree", "random_connected_graph"]


class Graph:
    """A simple undirected graph over nodes ``0..n-1``."""

    def __init__(self, size: int, edges: Sequence[Tuple[int, int]]) -> None:
        if size <= 0:
            raise ConfigurationError(f"graph size must be positive, got {size}")
        self.size = size
        self._adjacency: Dict[int, List[int]] = {node: [] for node in range(size)}
        seen = set()
        for u, v in edges:
            if not (0 <= u < size and 0 <= v < size):
                raise ConfigurationError(f"edge ({u}, {v}) outside node range")
            key = (min(u, v), max(u, v))
            if u == v or key in seen:
                continue  # ignore self-loops and duplicates
            seen.add(key)
            self._adjacency[u].append(v)
            self._adjacency[v].append(u)
        self.edges = sorted(seen)

    def neighbours(self, node: int) -> List[int]:
        return list(self._adjacency[node])


def bfs_spanning_tree(graph: Graph, root: int = 0) -> Tree:
    """Deterministic BFS spanning tree rooted at ``root``."""
    parent: Dict[int, int] = {root: -1}
    frontier = [root]
    order: List[int] = [root]
    while frontier:
        nxt = []
        for node in frontier:
            for neighbour in sorted(graph.neighbours(node)):
                if neighbour not in parent:
                    parent[neighbour] = node
                    nxt.append(neighbour)
                    order.append(neighbour)
        frontier = nxt
    if len(parent) != graph.size:
        raise ConfigurationError(
            f"graph is not connected ({len(parent)}/{graph.size} reachable)"
        )
    edges = [(node, parent[node]) for node in order if parent[node] != -1]
    return Tree(graph.size, edges)


def random_connected_graph(
    size: int, extra_edges: int, rng: random.Random
) -> Graph:
    """A random connected graph: a random tree plus ``extra_edges`` chords."""
    edges: List[Tuple[int, int]] = [
        (node, rng.randrange(node)) for node in range(1, size)
    ]
    attempts = 0
    added = 0
    present = {(min(u, v), max(u, v)) for u, v in edges}
    while added < extra_edges and attempts < 20 * extra_edges + 100:
        attempts += 1
        u = rng.randrange(size)
        v = rng.randrange(size)
        key = (min(u, v), max(u, v))
        if u != v and key not in present:
            present.add(key)
            edges.append(key)
            added += 1
    return Graph(size, edges)
