"""Uniform deployment of mobile agents in asynchronous unidirectional rings.

A from-scratch reproduction of Shibata, Mega, Ooshita, Kakugawa,
Masuzawa — "Uniform deployment of mobile agents in asynchronous rings"
(PODC 2016; JPDC 119, 2018).  See README.md for a tour and DESIGN.md for
the paper-to-module map.

Public API highlights:

>>> import random
>>> from repro import run_experiment, random_placement
>>> placement = random_placement(60, 6, random.Random(1))
>>> result = run_experiment("known_k_full", placement)
>>> result.ok
True
"""

from repro.analysis.verification import (
    VerificationReport,
    allowed_gaps,
    require_uniform_deployment,
    verify_positions,
    verify_uniform_deployment,
)
from repro.core.known_k_full import KnownKFullAgent
from repro.core.known_k_logspace import KnownKLogSpaceAgent
from repro.core.known_n_full import KnownNFullAgent
from repro.core.unknown import UnknownKAgent
from repro.errors import (
    ConfigurationError,
    ProtocolViolation,
    ReproError,
    SimulationError,
    SimulationLimitExceeded,
    VerificationError,
)
from repro.experiments.runner import ALGORITHMS, RunResult, run_experiment
from repro.ring.placement import (
    Placement,
    equidistant_placement,
    periodic_placement,
    placement_from_distances,
    quarter_packed_placement,
    random_placement,
)
from repro.sim.engine import Engine
from repro.sim.scheduler import (
    BurstScheduler,
    LaggardScheduler,
    RandomScheduler,
    SynchronousScheduler,
)

__version__ = "1.0.0"

__all__ = [
    "ALGORITHMS",
    "BurstScheduler",
    "ConfigurationError",
    "Engine",
    "KnownKFullAgent",
    "KnownKLogSpaceAgent",
    "KnownNFullAgent",
    "LaggardScheduler",
    "Placement",
    "ProtocolViolation",
    "RandomScheduler",
    "ReproError",
    "RunResult",
    "SimulationError",
    "SimulationLimitExceeded",
    "SynchronousScheduler",
    "UnknownKAgent",
    "VerificationError",
    "VerificationReport",
    "allowed_gaps",
    "equidistant_placement",
    "periodic_placement",
    "placement_from_distances",
    "quarter_packed_placement",
    "random_placement",
    "require_uniform_deployment",
    "run_experiment",
    "verify_positions",
    "verify_uniform_deployment",
    "__version__",
]
