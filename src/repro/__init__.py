"""Uniform deployment of mobile agents in asynchronous unidirectional rings.

A from-scratch reproduction of Shibata, Mega, Ooshita, Kakugawa,
Masuzawa — "Uniform deployment of mobile agents in asynchronous rings"
(PODC 2016; JPDC 119, 2018).  See README.md for a tour and DESIGN.md for
the paper-to-module map.

Public API highlights:

>>> import random
>>> from repro import run_experiment, random_placement
>>> placement = random_placement(60, 6, random.Random(1))
>>> result = run_experiment("known_k_full", placement)
>>> result.ok
True

Experiments are also declarative: an :class:`ExperimentSpec` names the
algorithm, placement, scheduler spec string, engine options and limits,
round-trips losslessly through JSON, and drives every entry point
(``run_experiment``, ``build_engine``, sweeps, the model checker and
the CLI's ``--spec``/``spec`` commands):

>>> from repro import ExperimentSpec, PlacementSpec
>>> spec = ExperimentSpec(
...     algorithm="known_k_full",
...     placement=PlacementSpec(kind="random", ring_size=60, agent_count=6, seed=1),
...     scheduler="laggard:victims=0,patience=5",
... )
>>> ExperimentSpec.from_json(spec.to_json()) == spec
True
>>> spec.run().ok
True
"""

from repro.analysis.verification import (
    VerificationReport,
    allowed_gaps,
    require_uniform_deployment,
    verify_positions,
    verify_uniform_deployment,
)
from repro.core.known_k_full import KnownKFullAgent
from repro.core.known_k_logspace import KnownKLogSpaceAgent
from repro.core.known_n_full import KnownNFullAgent
from repro.core.unknown import UnknownKAgent
from repro.errors import (
    ConfigurationError,
    ProtocolViolation,
    ReproError,
    SimulationError,
    SimulationLimitExceeded,
    VerificationError,
)
from repro.experiments.runner import ALGORITHMS, RunResult, run_experiment
from repro.registry import (
    AlgorithmInfo,
    SchedulerInfo,
    SchedulerParam,
    SchedulerSpec,
    algorithm_names,
    build_scheduler,
    format_scheduler_spec,
    get_algorithm,
    get_scheduler,
    parse_scheduler_spec,
    register_algorithm,
    register_scheduler,
    registry_dump,
    scheduler_names,
)
from repro.ring.placement import (
    Placement,
    equidistant_placement,
    periodic_placement,
    placement_from_distances,
    quarter_packed_placement,
    random_placement,
)
from repro.sim.engine import Engine
from repro.sim.scheduler import (
    BurstScheduler,
    LaggardScheduler,
    RandomScheduler,
    SynchronousScheduler,
)
from repro.spec import ExperimentSpec, PlacementSpec, run_spec
from repro.store import RunRecord, RunStore, cached_run

__version__ = "1.1.0"

__all__ = [
    "ALGORITHMS",
    "AlgorithmInfo",
    "BurstScheduler",
    "ConfigurationError",
    "Engine",
    "ExperimentSpec",
    "KnownKFullAgent",
    "KnownKLogSpaceAgent",
    "KnownNFullAgent",
    "LaggardScheduler",
    "Placement",
    "PlacementSpec",
    "ProtocolViolation",
    "RandomScheduler",
    "ReproError",
    "RunRecord",
    "RunResult",
    "RunStore",
    "SchedulerInfo",
    "SchedulerParam",
    "SchedulerSpec",
    "SimulationError",
    "SimulationLimitExceeded",
    "SynchronousScheduler",
    "UnknownKAgent",
    "VerificationError",
    "VerificationReport",
    "algorithm_names",
    "allowed_gaps",
    "build_scheduler",
    "cached_run",
    "equidistant_placement",
    "format_scheduler_spec",
    "get_algorithm",
    "get_scheduler",
    "parse_scheduler_spec",
    "periodic_placement",
    "placement_from_distances",
    "quarter_packed_placement",
    "random_placement",
    "register_algorithm",
    "register_scheduler",
    "registry_dump",
    "require_uniform_deployment",
    "run_experiment",
    "run_spec",
    "scheduler_names",
    "verify_positions",
    "verify_uniform_deployment",
    "__version__",
]
