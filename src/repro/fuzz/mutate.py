"""Schedule mutation operators (the fuzzer's input grammar).

A fuzz input's schedule is a plain agent-id sequence executed with
skip-disabled semantics (disabled entries are dropped, and a random
enabled agent fills in once the sequence is exhausted), so *every*
mutated sequence is a valid input — mutations can never produce an
unexecutable schedule, only a differently-shaped one.

The operators target the schedule families concurrency bugs hide in:

* ``truncate`` / ``delete_window`` / ``extend`` — vary how far the
  recorded prefix is followed before randomness takes over,
* ``stutter`` / ``burst`` — one agent runs many times in a row (the
  fast-agent family behind the overtaking analyses),
* ``starve`` — all occurrences of one agent are removed from a window,
  delaying it arbitrarily within fairness (the laggard family; the
  wake-race class of defect lives exactly here),
* ``swap`` / ``rotate_window`` / ``replace`` — local reorderings and
  fresh material,
* :func:`splice` — crossover between two corpus schedules.

All operators are pure functions of ``(rng, schedule, agents)``; with a
seeded RNG the whole mutation pipeline is deterministic.
"""

from __future__ import annotations

import random
from typing import Callable, List, Sequence, Tuple

__all__ = ["MUTATION_OPS", "mutate_schedule", "splice", "random_schedule"]

#: Hard ceiling on mutated schedule length; the executor's step cap is
#: the real bound, this only stops unbounded growth across generations.
_MAX_LENGTH = 8192

Mutation = Callable[[random.Random, List[int], Sequence[int]], List[int]]


def _window(rng: random.Random, length: int) -> Tuple[int, int]:
    """A random non-empty [start, end) window inside ``length`` items."""
    start = rng.randrange(length)
    end = min(length, start + 1 + rng.randrange(1, max(2, length // 2)))
    return start, end


def random_schedule(
    rng: random.Random, agents: Sequence[int], length: int
) -> List[int]:
    """A fresh uniformly random schedule of ``length`` entries."""
    return [rng.choice(agents) for _ in range(length)]


def op_truncate(rng, schedule, agents):
    if not schedule:
        return list(schedule)
    return schedule[: rng.randrange(len(schedule))]


def op_extend(rng, schedule, agents):
    tail = random_schedule(rng, agents, 1 + rng.randrange(2 * len(agents) + 8))
    return schedule + tail


def op_delete_window(rng, schedule, agents):
    if not schedule:
        return list(schedule)
    start, end = _window(rng, len(schedule))
    return schedule[:start] + schedule[end:]


def op_stutter(rng, schedule, agents):
    if not schedule:
        return list(schedule)
    start, end = _window(rng, len(schedule))
    repeats = 2 + rng.randrange(3)
    return schedule[:start] + schedule[start:end] * repeats + schedule[end:]


def op_swap(rng, schedule, agents):
    if len(schedule) < 2:
        return list(schedule)
    out = list(schedule)
    i = rng.randrange(len(out))
    j = rng.randrange(len(out))
    out[i], out[j] = out[j], out[i]
    return out


def op_replace_window(rng, schedule, agents):
    if not schedule:
        return list(schedule)
    start, end = _window(rng, len(schedule))
    return (
        schedule[:start]
        + random_schedule(rng, agents, end - start)
        + schedule[end:]
    )


def op_starve(rng, schedule, agents):
    """Remove every occurrence of one agent from a window (delay it)."""
    if not schedule:
        return list(schedule)
    victim = rng.choice(agents)
    start, end = _window(rng, len(schedule))
    kept = [agent for agent in schedule[start:end] if agent != victim]
    return schedule[:start] + kept + schedule[end:]


def op_burst(rng, schedule, agents):
    """Insert a long exclusive burst of one agent at a random point."""
    runner = rng.choice(agents)
    burst = [runner] * (2 + rng.randrange(3 * len(agents) + 8))
    at = rng.randrange(len(schedule) + 1)
    return schedule[:at] + burst + schedule[at:]


def op_rotate_window(rng, schedule, agents):
    """Move a window somewhere else (reorder without losing entries)."""
    if len(schedule) < 2:
        return list(schedule)
    start, end = _window(rng, len(schedule))
    window = schedule[start:end]
    rest = schedule[:start] + schedule[end:]
    at = rng.randrange(len(rest) + 1)
    return rest[:at] + window + rest[at:]


#: The operator pool; starvation and bursts are over-represented because
#: activation-order races are the target bug class.
MUTATION_OPS: Tuple[Mutation, ...] = (
    op_truncate,
    op_extend,
    op_delete_window,
    op_stutter,
    op_swap,
    op_replace_window,
    op_starve,
    op_starve,
    op_burst,
    op_burst,
    op_rotate_window,
)


def mutate_schedule(
    rng: random.Random,
    schedule: Sequence[int],
    agents: Sequence[int],
    max_ops: int = 3,
) -> Tuple[int, ...]:
    """Apply 1..``max_ops`` randomly chosen operators to ``schedule``."""
    current = list(schedule)
    for _ in range(1 + rng.randrange(max(1, max_ops))):
        current = rng.choice(MUTATION_OPS)(rng, current, agents)
        if len(current) > _MAX_LENGTH:
            current = current[:_MAX_LENGTH]
    return tuple(current)


def splice(
    rng: random.Random, first: Sequence[int], second: Sequence[int]
) -> Tuple[int, ...]:
    """Crossover: a prefix of ``first`` followed by a suffix of ``second``."""
    cut_a = rng.randrange(len(first) + 1)
    cut_b = rng.randrange(len(second) + 1)
    return tuple(first[:cut_a]) + tuple(second[cut_b:])
