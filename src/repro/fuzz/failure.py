"""Failure artifacts: one fuzzer-found violation, fully replayable.

A :class:`FailureCase` records everything needed to reproduce and file
a schedule-dependent bug without any fuzzing machinery in the loop:

* the instance (algorithm, ring size, homes),
* the defect (kind, property name, message — the same vocabulary the
  exhaustive checker's :class:`~repro.mc.checker.Counterexample` uses),
* the full violating schedule the fuzzer executed *and* its
  delta-debugged minimal form,
* the **triggering experiment spec** — an
  :class:`~repro.spec.ExperimentSpec` whose scheduler is the
  ``replay:log=...`` string of the shrunk schedule, so ``repro run
  --spec`` replays the violation deterministically.  The spec's SHA-256
  content hash is the artifact's identity and its key in the
  :class:`~repro.store.failures.FailureArchive`.

``replay_verified`` records that the fuzzer re-executed the shrunk
schedule from a *fresh* engine (and, for terminal violations, through
the stock :func:`~repro.experiments.runner.run_experiment` path with a
real :class:`~repro.sim.scheduler.ReplayScheduler`) and observed the
same defect — archived failures are never speculative.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.errors import ConfigurationError

__all__ = ["FailureCase"]


@dataclass(frozen=True)
class FailureCase:
    """One verified, minimised, replayable property violation."""

    algorithm: str
    ring_size: int
    homes: Tuple[int, ...]
    kind: str
    property_name: str
    message: str
    schedule: Tuple[int, ...]
    shrunk: Tuple[int, ...]
    spec: Dict[str, object]
    content_hash: str
    fuzz_spec_hash: str
    run_index: int
    replay_verified: bool

    def experiment_spec(self):
        """The triggering :class:`~repro.spec.ExperimentSpec` (buildable)."""
        from repro.spec import ExperimentSpec

        return ExperimentSpec.from_dict(self.spec)

    def describe(self) -> str:
        shrunk = "shrunk" if self.shrunk != self.schedule else "unshrunk"
        return (
            f"[{self.kind}:{self.property_name}] {self.message} | "
            f"n={self.ring_size} homes={self.homes} | "
            f"schedule {len(self.schedule)} -> {len(self.shrunk)} actions "
            f"({shrunk}, replay "
            f"{'verified' if self.replay_verified else 'UNVERIFIED'})"
        )

    def replay_line(self) -> str:
        """A one-line reproduction recipe for bug reports and tests."""
        return (
            f"ReplayScheduler({list(self.shrunk)}) on "
            f"Placement(ring_size={self.ring_size}, homes={self.homes}) "
            f"with {self.algorithm!r}"
        )

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready dict (the archived artifact payload)."""
        return {
            "algorithm": self.algorithm,
            "ring_size": self.ring_size,
            "homes": list(self.homes),
            "kind": self.kind,
            "property_name": self.property_name,
            "message": self.message,
            "schedule": list(self.schedule),
            "shrunk": list(self.shrunk),
            "spec": self.spec,
            "content_hash": self.content_hash,
            "fuzz_spec_hash": self.fuzz_spec_hash,
            "run_index": self.run_index,
            "replay_verified": self.replay_verified,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FailureCase":
        """Inverse of :meth:`to_dict` (missing keys rejected loudly)."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"failure case must be a dict, got {type(data).__name__}"
            )
        try:
            return cls(
                algorithm=data["algorithm"],
                ring_size=int(data["ring_size"]),
                homes=tuple(int(h) for h in data["homes"]),
                kind=data["kind"],
                property_name=data["property_name"],
                message=data["message"],
                schedule=tuple(int(a) for a in data["schedule"]),
                shrunk=tuple(int(a) for a in data["shrunk"]),
                spec=data["spec"],
                content_hash=data["content_hash"],
                fuzz_spec_hash=data["fuzz_spec_hash"],
                run_index=int(data["run_index"]),
                replay_verified=bool(data["replay_verified"]),
            )
        except KeyError as missing:
            raise ConfigurationError(
                f"failure case is missing required key {missing}"
            ) from None
