"""The corpus: coverage-novel schedule prefixes worth mutating again.

Every run that reaches novel coverage donates its *executed* activation
log, truncated at the last novel step, as a :class:`CorpusEntry`.
Executed logs are concrete (every random tail choice resolved to an
agent id), so replaying an entry's schedule on its placement
deterministically re-reaches the novel region — mutation then explores
outward from deep, interesting states instead of always from the
initial configuration.

The corpus is bounded: when full, the entry with the least coverage
gain (oldest first on ties) is evicted, keeping the high-yield seeds.
Selection is uniform over entries via the caller's RNG — with the
deterministic driver RNG this makes whole campaigns reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["CorpusEntry", "Corpus"]


@dataclass(frozen=True)
class CorpusEntry:
    """One retained schedule prefix and its discovery accounting."""

    placement_index: int
    schedule: Tuple[int, ...]
    gain: int  # coverage novelty the donating run scored
    run_index: int  # when it was added (campaign run counter)


class Corpus:
    """A bounded, gain-ranked pool of coverage-novel schedule prefixes."""

    def __init__(self, max_size: int) -> None:
        if max_size < 2:
            raise ValueError("corpus max_size must be >= 2")
        self._max_size = max_size
        self._entries: List[CorpusEntry] = []

    def __len__(self) -> int:
        return len(self._entries)

    @property
    def entries(self) -> Tuple[CorpusEntry, ...]:
        return tuple(self._entries)

    def add(self, entry: CorpusEntry) -> None:
        """Insert ``entry``, evicting the weakest entry when full."""
        self._entries.append(entry)
        if len(self._entries) > self._max_size:
            weakest = min(
                range(len(self._entries)),
                key=lambda i: (self._entries[i].gain, self._entries[i].run_index),
            )
            del self._entries[weakest]

    def pick(self, rng: random.Random) -> Optional[CorpusEntry]:
        """A uniformly random entry (None when empty)."""
        if not self._entries:
            return None
        return rng.choice(self._entries)

    def pick_pair(
        self, rng: random.Random
    ) -> Optional[Tuple[CorpusEntry, CorpusEntry]]:
        """Two entries sharing a placement, for splicing (None if impossible)."""
        first = self.pick(rng)
        if first is None:
            return None
        mates = [
            entry
            for entry in self._entries
            if entry.placement_index == first.placement_index
        ]
        return first, rng.choice(mates)
