"""The coverage-guided schedule fuzzer (randomized schedule-space search).

The verification ladder so far has two rungs: ``repro mc`` *exhausts*
every interleaving on tiny instances, and the experiment suite samples
a handful of adversarial schedulers on large ones.  The fuzzer is the
bridge: on mid-size instances (n=16..256) it searches the schedule
space the checker cannot enumerate, guided by the same canonical-state
vocabulary and checking the same property oracles online at every
atomic action.

One campaign (:class:`ScheduleFuzzer`, described by a
:class:`~repro.fuzz.spec.FuzzSpec`) loops:

1. **seed** — run every registered adversary family (random, burst,
   chaos, one laggard per victim) once per placement, harvesting its
   executed activation log through the oracle-checked executor,
2. **mutate** — pick a coverage-novel corpus schedule, apply stacked
   mutation operators (:mod:`repro.fuzz.mutate`) or splice two
   entries, and execute the result: recorded entries drive the engine
   (skip-disabled semantics), then seeded randomness takes over,
3. **feed back** — a run that reached a canonical
   :meth:`~repro.ring.configuration.Configuration.canonical` state or
   enabled-pattern no run had seen donates its executed prefix to the
   corpus (:mod:`repro.fuzz.corpus`),
4. **on violation** — delta-debug the executed schedule to a 1-minimal
   reproduction (:func:`repro.mc.shrink.shrink_schedule` against
   :func:`~repro.mc.oracle.drive_schedule` on
   :meth:`~repro.mc.oracle.PropertyOracle.fork_root` engines), verify
   the shrunk schedule replays to the same defect from a fresh engine
   — and through the stock ``run_experiment`` +
   :class:`~repro.sim.scheduler.ReplayScheduler` path for terminal
   violations — and emit a :class:`~repro.fuzz.failure.FailureCase`.

Campaigns are deterministic functions of their spec: every RNG is
seeded from the spec's content hash, so a failing campaign replays
anywhere.  :func:`fuzz_parallel` shards a budget across a process pool
(the sweep pool pattern): shards are independent deterministic
campaigns whose coverage maps merge by key-set union.
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import CampaignInterrupted
from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.coverage import CoverageMap
from repro.fuzz.failure import FailureCase
from repro.fuzz.mutate import mutate_schedule, splice
from repro.fuzz.spec import FuzzSpec
from repro.mc.oracle import PropertyOracle, Violation, drive_schedule
from repro.mc.shrink import shrink_schedule
from repro.mc.state import capture_pre_state
from repro.registry import build_scheduler
from repro.ring.placement import Placement
from repro.sim.scheduler import Scheduler

__all__ = [
    "FuzzOutcome",
    "ScheduleFuzzer",
    "fuzz",
    "fuzz_parallel",
    "merge_outcomes",
    "shard_specs",
]

#: Adversary families whose decisions seed the corpus (plus one laggard
#: spec per victim id, added per instance at campaign start).
_SEED_SCHEDULERS: Tuple[str, ...] = ("random", "burst", "chaos")

#: Probability weights of the mutation phase's input sources.
_FRESH_PROB = 0.15  # brand new random-tail input
_SPLICE_PROB = 0.2  # crossover of two corpus entries

ProgressFn = Callable[[int, int, str], None]


@dataclass(frozen=True)
class _RunOutcome:
    """What one executed schedule did."""

    executed: Tuple[int, ...]
    steps: int
    quiesced: bool
    novelty: int
    last_novel_step: int
    violation: Optional[Violation]


@dataclass(frozen=True)
class FuzzOutcome:
    """Everything one fuzzing campaign produced."""

    spec: FuzzSpec
    runs: int
    steps: int
    failures: Tuple[FailureCase, ...]
    states: int
    patterns: int
    corpus_size: int
    history: Tuple[Dict[str, object], ...]
    complete: bool  # True when the full budget was spent

    @property
    def found(self) -> bool:
        return bool(self.failures)

    def describe(self) -> str:
        verdict = (
            f"{len(self.failures)} FAILURE(S)" if self.failures else "no violations"
        )
        return (
            f"{self.runs} runs, {self.steps} actions: {self.states} canonical "
            f"states, {self.patterns} enabled patterns, corpus {self.corpus_size} "
            f"-> {verdict}"
        )


class ScheduleFuzzer:
    """One deterministic coverage-guided fuzzing campaign."""

    def __init__(
        self,
        spec: FuzzSpec,
        *,
        keep_going: bool = False,
        shrink: bool = True,
        shrink_evals: int = 800,
        history_points: int = 20,
        progress: Optional[ProgressFn] = None,
    ) -> None:
        self.spec = spec
        self.keep_going = keep_going
        self.shrink = shrink
        self.shrink_evals = shrink_evals
        self.progress = progress
        self.coverage = CoverageMap()
        self.corpus = Corpus(spec.corpus_size)
        self._history_every = max(1, spec.budget // max(1, history_points))
        self._rng = random.Random(spec.derive_seed("driver"))
        self._placements: List[Placement] = [
            spec.build_placement(index) for index in range(spec.placements)
        ]
        self._oracles: List[PropertyOracle] = [
            PropertyOracle(spec.algorithm, placement, links=spec.links)
            for placement in self._placements
        ]
        # Shrink replays of terminal defects skip the per-edge safety
        # suite (the defect lives in the quiescent state; candidates
        # only need the same terminal property to fail), which makes
        # delta debugging ~5x cheaper.
        self._terminal_oracles: List[PropertyOracle] = [
            PropertyOracle(spec.algorithm, placement, safety=(), links=spec.links)
            for placement in self._placements
        ]

    # -- execution -----------------------------------------------------------

    def _execute(
        self,
        placement_index: int,
        schedule: Sequence[int],
        run_rng: random.Random,
        scheduler: Optional[Scheduler] = None,
    ) -> _RunOutcome:
        """Run one input through the oracle-checked, coverage-observed loop.

        ``schedule`` entries drive the engine with skip-disabled
        semantics; after exhaustion ``run_rng`` picks uniformly among
        enabled agents — unless ``scheduler`` is given (seed phase), in
        which case its batches drive the run from the start.
        """
        oracle = self._oracles[placement_index]
        engine = oracle.fresh_engine()
        cap = self.spec.run_step_cap(self._placements[placement_index])
        cursor = 0
        pending: deque = deque()
        steps = 0
        novelty = 0
        last_novel_step = 0
        violation: Optional[Violation] = None
        quiesced = False
        while steps < cap:
            enabled = engine.enabled_agents()
            if not enabled:
                quiesced = True
                violation = oracle.check_terminal(engine, engine.snapshot())
                break
            agent: Optional[int] = None
            if scheduler is not None:
                while agent is None:
                    if not pending:
                        pending.extend(scheduler.next_batch(enabled))
                        if not pending:
                            break
                    candidate = pending.popleft()
                    if candidate in enabled:
                        agent = candidate
            else:
                while cursor < len(schedule):
                    candidate = schedule[cursor]
                    cursor += 1
                    if candidate in enabled:
                        agent = candidate
                        break
            if agent is None:
                agent = run_rng.choice(enabled)
            pre = capture_pre_state(engine)
            engine.step(agent)
            steps += 1
            snapshot = engine.snapshot()
            violation = oracle.check_step(pre, engine, snapshot, agent)
            if violation is not None:
                break
            gain = self.coverage.observe(engine, snapshot)
            if gain:
                novelty += gain
                last_novel_step = steps
        return _RunOutcome(
            executed=engine.activation_log,
            steps=steps,
            quiesced=quiesced,
            novelty=novelty,
            last_novel_step=last_novel_step,
            violation=violation,
        )

    # -- failure pipeline ----------------------------------------------------

    def _build_failure(
        self, placement_index: int, outcome: _RunOutcome, run_index: int
    ) -> FailureCase:
        """Shrink, verify and package one violating run."""
        placement = self._placements[placement_index]
        violation = outcome.violation
        assert violation is not None
        cap = self.spec.run_step_cap(placement)
        oracle = (
            self._terminal_oracles[placement_index]
            if violation.kind == "terminal"
            else self._oracles[placement_index]
        )

        def still_fails(candidate: Tuple[int, ...]) -> bool:
            replay = drive_schedule(
                oracle, candidate, max_steps=cap, engine=oracle.fork_root()
            )
            return violation.same_defect(replay.violation)

        shrunk = outcome.executed
        if self.shrink:
            shrunk = shrink_schedule(
                outcome.executed, still_fails, max_evals=self.shrink_evals
            )

        # Verification 1: the shrunk schedule, replayed from a brand new
        # engine under the *full* property suite, reproduces the defect.
        replay = drive_schedule(
            self._oracles[placement_index], shrunk, max_steps=cap
        )
        verified = violation.same_defect(replay.violation)
        message = replay.violation.message if verified else violation.message

        # Verification 2 (terminal defects): the stock experiment path —
        # a real ReplayScheduler inside run_experiment — must agree the
        # deployment is not uniform.
        spec = self.spec.experiment_spec(placement, shrunk)
        if verified and violation.kind == "terminal":
            from repro.experiments.runner import run_experiment

            verified = not run_experiment(spec).ok

        return FailureCase(
            algorithm=self.spec.algorithm,
            ring_size=placement.ring_size,
            homes=placement.homes,
            kind=violation.kind,
            property_name=violation.property_name,
            message=message,
            schedule=outcome.executed,
            shrunk=shrunk,
            spec=spec.to_dict(),
            content_hash=spec.content_hash(),
            fuzz_spec_hash=self.spec.content_hash(),
            run_index=run_index,
            replay_verified=verified,
        )

    # -- campaign driver -----------------------------------------------------

    def _seed_inputs(self) -> List[Tuple[int, Optional[str]]]:
        """The seed-phase work list: (placement index, scheduler spec)."""
        inputs: List[Tuple[int, Optional[str]]] = []
        specs: List[str] = list(_SEED_SCHEDULERS)
        agent_count = self._placements[0].agent_count
        specs.extend(f"laggard:victims={victim}" for victim in range(agent_count))
        for spec_string in specs:
            for index in range(len(self._placements)):
                inputs.append((index, spec_string))
        return inputs

    def run(self) -> FuzzOutcome:
        """Execute the campaign; deterministic for a given spec."""
        spec = self.spec
        failures: List[FailureCase] = []
        history: List[Dict[str, object]] = []
        runs = 0
        total_steps = 0
        seeds = deque(self._seed_inputs())

        def record_history(force: bool = False) -> None:
            if force or runs % self._history_every == 0:
                history.append(
                    {
                        "run": runs,
                        "steps": total_steps,
                        "states": self.coverage.states,
                        "patterns": self.coverage.patterns,
                        "corpus": len(self.corpus),
                        "failures": len(failures),
                    }
                )

        while runs < spec.budget:
            if seeds:
                placement_index, scheduler_spec = seeds.popleft()
                scheduler = build_scheduler(
                    scheduler_spec,
                    seed=spec.derive_seed(f"harvest|{scheduler_spec}|{placement_index}"),
                )
                schedule: Tuple[int, ...] = ()
            else:
                scheduler = None
                placement_index, schedule = self._next_mutated_input()
            run_rng = random.Random(spec.derive_seed(f"run|{runs}"))
            outcome = self._execute(
                placement_index, schedule, run_rng, scheduler=scheduler
            )
            runs += 1
            total_steps += outcome.steps
            if outcome.violation is not None:
                failures.append(
                    self._build_failure(placement_index, outcome, runs)
                )
                if not self.keep_going:
                    record_history(force=True)
                    break
            elif outcome.novelty:
                self.corpus.add(
                    CorpusEntry(
                        placement_index=placement_index,
                        schedule=outcome.executed[: outcome.last_novel_step],
                        gain=outcome.novelty,
                        run_index=runs,
                    )
                )
            record_history()
            if self.progress is not None:
                self.progress(runs, spec.budget, self.coverage.describe())
        if not history or history[-1]["run"] != runs:
            record_history(force=True)
        return FuzzOutcome(
            spec=spec,
            runs=runs,
            steps=total_steps,
            failures=tuple(failures),
            states=self.coverage.states,
            patterns=self.coverage.patterns,
            corpus_size=len(self.corpus),
            history=tuple(history),
            complete=runs >= spec.budget,
        )

    def _next_mutated_input(self) -> Tuple[int, Tuple[int, ...]]:
        """Pick the next input from the corpus (or a fresh random one)."""
        rng = self._rng
        entry = self.corpus.pick(rng)
        if entry is None or rng.random() < _FRESH_PROB:
            return rng.randrange(len(self._placements)), ()
        agents = range(self._placements[entry.placement_index].agent_count)
        if rng.random() < _SPLICE_PROB:
            pair = self.corpus.pick_pair(rng)
            if pair is not None and pair[0].placement_index == entry.placement_index:
                spliced = splice(rng, pair[0].schedule, pair[1].schedule)
                return pair[0].placement_index, mutate_schedule(
                    rng, spliced, tuple(agents), max_ops=1
                )
        mutated = mutate_schedule(
            rng, entry.schedule, tuple(agents), max_ops=self.spec.mutations
        )
        return entry.placement_index, mutated


def fuzz(spec: FuzzSpec, **kwargs) -> FuzzOutcome:
    """Run one campaign (see :class:`ScheduleFuzzer` for the knobs)."""
    return ScheduleFuzzer(spec, **kwargs).run()


def shard_specs(spec: FuzzSpec, shards: int) -> List[FuzzSpec]:
    """Split ``spec``'s budget into ``shards`` independent campaign specs.

    The one shard-decomposition in the codebase: :func:`fuzz_parallel`
    and the campaign coordinator's fuzz work units both call it, so a
    pool shard and a leased shard with the same index are the *same*
    deterministic campaign (same derived seed, same content hash).
    Shards whose budget share rounds to zero are dropped.
    """
    shards = max(1, shards)
    share, remainder = divmod(spec.budget, shards)
    specs = []
    for index in range(shards):
        budget = share + (1 if index < remainder else 0)
        if budget < 1:
            continue
        specs.append(
            spec.with_options(
                budget=budget, seed=spec.derive_seed(f"shard|{index}")
            )
        )
    return specs


def merge_outcomes(
    spec: FuzzSpec,
    results: Sequence[Tuple[FuzzOutcome, List[int], List[int]]],
    *,
    complete: Optional[bool] = None,
) -> FuzzOutcome:
    """Merge shard campaign outcomes into one campaign-level outcome.

    Coverage keys union (shard-mergeable by design), failures
    concatenate in the given order deduplicated by triggering spec
    hash, runs/steps sum, and the corpus reports the largest shard's
    (every real corpus is bounded by the spec's cap, so the merged
    number is too).  Per-shard growth histories do not merge
    meaningfully (their run counters and coverage maps are disjoint),
    so the merged ``history`` is empty rather than misleading — run
    single-job campaigns for growth curves.  ``complete`` overrides
    the all-shards conjunction (a partially merged interrupt is never
    "complete" even if every *received* shard was).
    """
    coverage = CoverageMap()
    failures: List[FailureCase] = []
    seen_hashes = set()
    runs = total_steps = corpus_size = 0
    all_complete = True
    for outcome, state_keys, pattern_keys in results:
        coverage.merge_keys(state_keys, pattern_keys)
        runs += outcome.runs
        total_steps += outcome.steps
        corpus_size = max(corpus_size, outcome.corpus_size)
        all_complete = all_complete and outcome.complete
        for failure in outcome.failures:
            if failure.content_hash not in seen_hashes:
                seen_hashes.add(failure.content_hash)
                failures.append(failure)
    return FuzzOutcome(
        spec=spec,
        runs=runs,
        steps=total_steps,
        failures=tuple(failures),
        states=coverage.states,
        patterns=coverage.patterns,
        corpus_size=corpus_size,
        history=(),
        complete=all_complete if complete is None else complete,
    )


def _fuzz_shard(
    payload: Tuple[int, Dict[str, object], bool, bool]
) -> Tuple[int, FuzzOutcome, List[int], List[int]]:
    """Pool worker: one deterministic shard campaign plus its raw coverage."""
    index, spec_dict, keep_going, shrink = payload
    fuzzer = ScheduleFuzzer(
        FuzzSpec.from_dict(spec_dict), keep_going=keep_going, shrink=shrink
    )
    outcome = fuzzer.run()
    state_keys, pattern_keys = fuzzer.coverage.export_keys()
    return index, outcome, state_keys, pattern_keys


def fuzz_parallel(
    spec: FuzzSpec,
    jobs: int,
    *,
    keep_going: bool = False,
    shrink: bool = True,
) -> FuzzOutcome:
    """Shard ``spec``'s budget across ``jobs`` worker processes.

    Each shard is an independent deterministic campaign
    (:func:`shard_specs`: seeds derived from the parent spec and the
    shard index, so shards explore *different* placements and
    schedules); shard results merge via :func:`merge_outcomes` in shard
    order, so the returned outcome is identical regardless of which
    worker finished first.

    A ``KeyboardInterrupt`` mid-pool degrades gracefully: the pool is
    torn down and a :class:`~repro.errors.CampaignInterrupted` carries
    the outcome merged from every shard that *did* finish (flagged
    ``complete=False``), so the CLI can archive partial failures and
    report honest coverage instead of dumping a traceback.
    """
    jobs = max(1, jobs)
    if jobs == 1:
        return fuzz(spec, keep_going=keep_going, shrink=shrink)
    shards = [
        (index, shard.to_dict(), keep_going, shrink)
        for index, shard in enumerate(shard_specs(spec, jobs))
    ]
    import multiprocessing

    received: Dict[int, Tuple[FuzzOutcome, List[int], List[int]]] = {}
    try:
        with multiprocessing.Pool(min(jobs, len(shards))) as pool:
            for index, outcome, state_keys, pattern_keys in (
                pool.imap_unordered(_fuzz_shard, shards)
            ):
                received[index] = (outcome, state_keys, pattern_keys)
    except KeyboardInterrupt:
        partial = merge_outcomes(
            spec,
            [received[index] for index in sorted(received)],
            complete=False,
        )
        raise CampaignInterrupted(
            f"fuzz campaign interrupted: {len(received)} of {len(shards)} "
            f"shards finished ({partial.runs} runs, "
            f"{len(partial.failures)} failure(s))",
            outcome=partial,
            resume_hint=(
                "fuzz shards are deterministic: re-run the same spec to "
                "repeat the campaign, or lower --budget for a shorter one"
            ),
        ) from None
    return merge_outcomes(
        spec, [received[index] for index in sorted(received)]
    )
