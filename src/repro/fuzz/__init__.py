"""Coverage-guided schedule fuzzing: the middle rung of verification.

``repro.mc`` proves the paper's claims exhaustively on tiny instances;
tier-1 tests sample a few fixed adversaries on large ones.  This
package searches the vast middle — instances far beyond exhaustion,
schedules far beyond any fixed adversary — by mutating activation
schedules under coverage guidance and checking the model checker's
property oracles online at every atomic action.

* :class:`~repro.fuzz.spec.FuzzSpec` — the serializable campaign
  description (content-addressed like an ExperimentSpec),
* :class:`~repro.fuzz.fuzzer.ScheduleFuzzer` / :func:`~repro.fuzz.fuzzer.fuzz`
  / :func:`~repro.fuzz.fuzzer.fuzz_parallel` — the campaign driver,
* :class:`~repro.fuzz.coverage.CoverageMap` — canonical-state and
  enabled-pattern novelty tracking,
* :class:`~repro.fuzz.corpus.Corpus` — retained coverage-novel
  schedule prefixes,
* :mod:`~repro.fuzz.mutate` — the schedule mutation operators,
* :class:`~repro.fuzz.failure.FailureCase` — a shrunk, verified,
  replayable violation artifact (archived via
  :class:`~repro.store.failures.FailureArchive`).

CLI: ``repro fuzz --algorithm wake_race --n 16 --k 4``.
"""

from repro.fuzz.corpus import Corpus, CorpusEntry
from repro.fuzz.coverage import CoverageMap, coverage_key, enabled_pattern
from repro.fuzz.failure import FailureCase
from repro.fuzz.fuzzer import (
    FuzzOutcome,
    ScheduleFuzzer,
    fuzz,
    fuzz_parallel,
    merge_outcomes,
    shard_specs,
)
from repro.fuzz.mutate import MUTATION_OPS, mutate_schedule, random_schedule, splice
from repro.fuzz.spec import FuzzSpec, replay_spec_string

__all__ = [
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "FailureCase",
    "FuzzOutcome",
    "FuzzSpec",
    "MUTATION_OPS",
    "ScheduleFuzzer",
    "coverage_key",
    "enabled_pattern",
    "fuzz",
    "fuzz_parallel",
    "merge_outcomes",
    "mutate_schedule",
    "random_schedule",
    "replay_spec_string",
    "shard_specs",
    "splice",
]
