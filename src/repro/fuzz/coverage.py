"""Coverage signals: which executions taught the fuzzer something new.

Two complementary feature maps, both observed after every executed
atomic action:

* **canonical state coverage** — the rotation- and relabelling-
  invariant :meth:`~repro.ring.configuration.Configuration.canonical`
  form of the global state, the same key the exhaustive checker
  memoises on.  A run that reaches a canonical state no previous run
  reached has, by definition, explored schedule-space the campaign had
  never seen.
* **enabled-pattern coverage** — a coarse abstraction of the
  *scheduling surface*: the sorted multiset of per-agent statuses
  (active / queued / queue-head / suspended / woken / halted) plus the
  enabled count.  Orders of magnitude fewer distinct values than
  canonical states, so it saturates early and then flags only
  structurally new scheduling situations (e.g. "two woken followers at
  once" — the wake-race shape).

Keys are stored as 64-bit BLAKE2b digests of the feature ``repr``:
stable across processes and interpreter runs (unlike builtin ``hash``
under ``PYTHONHASHSEED``), so parallel shards can merge their maps and
deterministic campaigns stay deterministic.
"""

from __future__ import annotations

import hashlib
from typing import TYPE_CHECKING, Iterable, List, Set, Tuple

from repro.sim.engine import Engine

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.ring.configuration import Configuration

__all__ = ["CoverageMap", "enabled_pattern", "coverage_key"]


def coverage_key(feature: object) -> int:
    """A stable 64-bit key for one feature value (process-independent)."""
    digest = hashlib.blake2b(repr(feature).encode("utf-8"), digest_size=8)
    return int.from_bytes(digest.digest(), "big")


def enabled_pattern(engine: Engine) -> Tuple[object, ...]:
    """The scheduling-surface abstraction of the current engine state.

    Per agent, one status letter — ``A`` active-staying, ``Q`` head of a
    link queue, ``q`` queued behind the head, ``S`` suspended (asleep),
    ``W`` suspended but woken (message pending, enabled), ``H`` halted —
    sorted so the pattern is agent-relabelling-invariant, plus the
    enabled count.

    On a faulty engine two more letters appear — ``B`` held in a link
    delay buffer, ``L`` lost in transit — and the pattern gains a third
    component: the number of currently enabled *link actors*.  Reliable
    engines keep the historical two-element shape, so fault-free
    campaigns produce exactly the pre-fault coverage keys.
    """
    enabled = set(engine.enabled_agents())
    statuses: List[str] = []
    ring = engine.ring
    faults = ring.faults
    for agent_id in engine.agent_ids:
        agent = engine.agent(agent_id)
        if faults is not None and agent_id in faults.lost:
            statuses.append("L")
            continue
        if agent.halted:
            statuses.append("H")
            continue
        kind, node = ring.locate(agent_id)
        if kind == "buffer":
            statuses.append("B")
        elif kind == "queue":
            statuses.append("Q" if ring.queue_head(node) == agent_id else "q")
        elif agent.suspended:
            statuses.append("W" if agent_id in enabled else "S")
        else:
            statuses.append("A")
    if faults is not None:
        actors = sum(1 for agent_id in enabled if agent_id < 0)
        return (tuple(sorted(statuses)), len(enabled), actors)
    return (tuple(sorted(statuses)), len(enabled))


class CoverageMap:
    """The campaign-global record of everything any run has reached."""

    def __init__(self) -> None:
        self._states: Set[int] = set()
        self._patterns: Set[int] = set()

    # -- observation ---------------------------------------------------------

    def observe(self, engine: Engine, snapshot: "Configuration" = None) -> int:
        """Record the engine's current state; return the novelty gain.

        Gain counts how many of the two feature maps saw a new key
        (0, 1 or 2) — any positive gain marks the step as novel.
        Pass the ``snapshot`` the caller already built for its property
        checks to avoid rebuilding it (the fuzzer's hot loop does).
        """
        gain = 0
        if snapshot is None:
            snapshot = engine.snapshot()
        state_key = coverage_key(snapshot.canonical())
        if state_key not in self._states:
            self._states.add(state_key)
            gain += 1
        pattern_key = coverage_key(enabled_pattern(engine))
        if pattern_key not in self._patterns:
            self._patterns.add(pattern_key)
            gain += 1
        return gain

    # -- accounting ----------------------------------------------------------

    @property
    def states(self) -> int:
        """Distinct canonical configurations reached so far."""
        return len(self._states)

    @property
    def patterns(self) -> int:
        """Distinct enabled-set patterns reached so far."""
        return len(self._patterns)

    def merge_keys(
        self, state_keys: Iterable[int], pattern_keys: Iterable[int]
    ) -> None:
        """Union another map's raw keys in (parallel-shard merging)."""
        self._states.update(state_keys)
        self._patterns.update(pattern_keys)

    def export_keys(self) -> Tuple[List[int], List[int]]:
        """The raw key sets, sorted (picklable, mergeable, deterministic)."""
        return sorted(self._states), sorted(self._patterns)

    def describe(self) -> str:
        return f"{self.states} canonical states, {self.patterns} enabled patterns"
