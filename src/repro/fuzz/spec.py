"""The declarative, serializable fuzzing-campaign description.

One :class:`FuzzSpec` is everything the fuzzer needs to reproduce a
campaign bit for bit: the algorithm under test, the placement family,
the execution budget and the mutation/corpus parameters.  It mirrors
:class:`repro.spec.ExperimentSpec` deliberately — lossless
``to_dict``/``from_dict``/JSON round trips, a stable SHA-256
``content_hash`` and hash-derived seeds — so campaigns are
content-addressable exactly like experiments, and ``repro fuzz --spec
file.json`` reruns one identically anywhere.

A campaign over a ``random`` placement spec fuzzes ``placements``
distinct placements (their seeds derived from the campaign seed), so
the input space is *(placement, schedule)* pairs; explicit placement
kinds (``distances``, ``homes``, ...) pin a single configuration and
force ``placements == 1``.

:meth:`FuzzSpec.experiment_spec` maps a concrete failing ``(placement,
schedule)`` pair back into the one experiment vocabulary: an
:class:`~repro.spec.ExperimentSpec` whose scheduler is the
``replay:log=...`` spec string.  That spec's content hash keys the
archived :class:`~repro.fuzz.failure.FailureCase`, and ``repro run
--spec`` on it reproduces the violation with no fuzzing machinery in
the loop.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, replace
from typing import Dict, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.registry import get_algorithm
from repro.ring.faults import LinkSpec
from repro.ring.placement import Placement
from repro.spec import ExperimentSpec, PlacementSpec

__all__ = ["FuzzSpec", "replay_spec_string"]


def replay_spec_string(schedule: Sequence[int]) -> str:
    """The ``replay:log=...`` scheduler spec string of a schedule."""
    if not schedule:
        return "replay"
    return "replay:log=" + "-".join(str(agent) for agent in schedule)


@dataclass(frozen=True)
class FuzzSpec:
    """One fuzzing campaign, fully described and JSON-serialisable.

    ``budget`` counts *runs* (schedule executions, including the
    adversary-seeded corpus runs); ``max_steps`` caps the atomic
    actions of one run (``None`` derives a generous default from the
    instance size).  ``placements`` is the number of distinct initial
    configurations fuzzed when the placement spec is ``random``;
    ``corpus_size`` caps the retained coverage-novel schedule prefixes
    and ``mutations`` the number of stacked mutation operators applied
    per derived input.
    """

    algorithm: str
    placement: PlacementSpec
    budget: int = 1000
    max_steps: Optional[int] = None
    seed: int = 0
    placements: int = 4
    corpus_size: int = 64
    mutations: int = 3
    links: Optional[LinkSpec] = None

    def __post_init__(self) -> None:
        get_algorithm(self.algorithm)  # raises on unknown names
        if self.links is not None:
            if not isinstance(self.links, LinkSpec):
                raise ConfigurationError(
                    f"links must be a LinkSpec, got {type(self.links).__name__}"
                )
            if not self.links.active:
                object.__setattr__(self, "links", None)
        if not isinstance(self.placement, PlacementSpec):
            raise ConfigurationError(
                "placement must be a PlacementSpec, got "
                f"{type(self.placement).__name__}"
            )
        if self.budget < 1:
            raise ConfigurationError("fuzz budget must be >= 1 run")
        if self.max_steps is not None and self.max_steps < 1:
            raise ConfigurationError("max_steps must be >= 1 when given")
        if self.placements < 1:
            raise ConfigurationError("placements must be >= 1")
        if self.placement.kind != "random" and self.placements != 1:
            raise ConfigurationError(
                f"placement kind {self.placement.kind!r} pins one "
                "configuration; placements must be 1"
            )
        if self.corpus_size < 2:
            raise ConfigurationError("corpus_size must be >= 2")
        if self.mutations < 1:
            raise ConfigurationError("mutations must be >= 1")

    # -- construction helpers ------------------------------------------------

    def with_options(self, **changes) -> "FuzzSpec":
        """A copy with the given fields replaced (frozen-friendly)."""
        return replace(self, **changes)

    # -- materialisation -----------------------------------------------------

    def build_placement(self, index: int) -> Placement:
        """The concrete placement of variant ``index`` (< ``placements``).

        Random placement specs re-seed per variant from the campaign
        seed; pinned kinds return the same placement for every index.
        """
        if not 0 <= index < self.placements:
            raise ConfigurationError(
                f"placement index {index} out of range [0, {self.placements})"
            )
        if self.placement.kind == "random":
            return PlacementSpec(
                kind="random",
                ring_size=self.placement.ring_size,
                agent_count=self.placement.agent_count,
                seed=self.derive_seed(f"placement|{index}"),
            ).build()
        return self.placement.build()

    def run_step_cap(self, placement: Placement) -> int:
        """The per-run atomic-action cap (explicit or size-derived)."""
        if self.max_steps is not None:
            return self.max_steps
        return max(512, 16 * placement.ring_size * placement.agent_count)

    def experiment_spec(
        self, placement: Placement, schedule: Sequence[int]
    ) -> ExperimentSpec:
        """The experiment a concrete ``(placement, schedule)`` pair denotes.

        The scheduler is the exact ``replay:log=...`` spec string, so
        running the returned spec replays the schedule deterministically
        (disabled entries skipped, lowest-id fallback after the log) —
        the triggering spec whose content hash keys archived failures.
        The campaign's link-fault model rides along, so replaying the
        spec reproduces the same fault draws the fuzzer saw.
        """
        return ExperimentSpec(
            algorithm=self.algorithm,
            placement=PlacementSpec.from_placement(placement),
            scheduler=replay_spec_string(schedule),
            links=self.links,
        )

    # -- serialisation -------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """Lossless JSON-ready form (sections mirror ExperimentSpec).

        ``links`` is emitted only when active, so reliable campaigns
        keep their historical serialised form and content hash.
        """
        out: Dict[str, object] = {
            "algorithm": self.algorithm,
            "placement": self.placement.to_dict(),
            "budget": {"runs": self.budget, "max_steps": self.max_steps},
            "mutation": {
                "seed": self.seed,
                "placements": self.placements,
                "corpus_size": self.corpus_size,
                "mutations": self.mutations,
            },
        }
        if self.links is not None:
            out["links"] = self.links.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "FuzzSpec":
        """Inverse of :meth:`to_dict`; missing sections take the defaults."""
        if not isinstance(data, dict):
            raise ConfigurationError(
                f"fuzz spec must be a dict, got {type(data).__name__}"
            )
        unknown = set(data) - {
            "algorithm", "placement", "budget", "mutation", "links",
        }
        if unknown:
            raise ConfigurationError(
                f"fuzz spec has unknown keys {sorted(unknown)}"
            )
        try:
            algorithm = data["algorithm"]
            placement = PlacementSpec.from_dict(data["placement"])
        except KeyError as missing:
            raise ConfigurationError(
                f"fuzz spec is missing required key {missing}"
            ) from None
        budget = data.get("budget", {})
        mutation = data.get("mutation", {})
        for section_name, section in (("budget", budget), ("mutation", mutation)):
            if not isinstance(section, dict):
                raise ConfigurationError(
                    f"fuzz spec section {section_name!r} must be a dict, "
                    f"got {type(section).__name__}"
                )
        max_steps = budget.get("max_steps")
        links_data = data.get("links")
        return cls(
            algorithm=algorithm,
            placement=placement,
            budget=int(budget.get("runs", 1000)),
            max_steps=None if max_steps is None else int(max_steps),
            seed=int(mutation.get("seed", 0)),
            placements=int(mutation.get("placements", 4)),
            corpus_size=int(mutation.get("corpus_size", 64)),
            mutations=int(mutation.get("mutations", 3)),
            links=None if links_data is None else LinkSpec.from_dict(links_data),
        )

    def to_json(self, indent: Optional[int] = 2) -> str:
        """The spec as a JSON document (stable key order)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FuzzSpec":
        """Parse a JSON document produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ConfigurationError(f"fuzz spec is not valid JSON: {error}")
        return cls.from_dict(data)

    @classmethod
    def load(cls, path: str) -> "FuzzSpec":
        """Read a spec from a JSON file (the ``--spec file.json`` path)."""
        try:
            with open(path, "r", encoding="utf-8") as handle:
                return cls.from_json(handle.read())
        except OSError as error:
            raise ConfigurationError(
                f"cannot read fuzz spec {path!r}: {error}"
            ) from None

    # -- identity ------------------------------------------------------------

    def content_hash(self) -> str:
        """SHA-256 hex digest of the canonical JSON form (memoised).

        The campaign driver derives one seed per run from this hash, so
        it is computed once per (frozen, immutable) spec instance rather
        than once per run.
        """
        cached = getattr(self, "_content_hash", None)
        if cached is None:
            canonical = json.dumps(
                self.to_dict(), sort_keys=True, separators=(",", ":")
            )
            cached = hashlib.sha256(canonical.encode("utf-8")).hexdigest()
            object.__setattr__(self, "_content_hash", cached)
        return cached

    def derive_seed(self, salt: Union[int, str] = 0) -> int:
        """A stable 63-bit seed derived from the content hash and ``salt``.

        Used for per-placement seeds, per-shard seeds and the driver
        RNG, so every random choice in a campaign traces back to the
        spec alone.
        """
        key = f"{self.content_hash()}|{salt}"
        digest = hashlib.sha256(key.encode("utf-8")).digest()
        return int.from_bytes(digest[:8], "big") & 0x7FFF_FFFF_FFFF_FFFF
