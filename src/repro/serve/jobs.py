"""In-process job manager behind the experiment service.

``POST /v1/jobs`` lands here: a submitted spec becomes a :class:`Job`
on a FIFO queue, and a small pool of daemon worker threads drives the
existing library entry points — :func:`repro.experiments.sweep.execute_sweep`,
:class:`repro.fuzz.ScheduleFuzzer` / :func:`repro.fuzz.fuzz_parallel`,
:func:`repro.campaign.run_campaign`, :func:`repro.store.cached_run` —
against the service's run store.  Everything a job produces lands in
the store exactly as the CLI would have put it there (records keyed by
spec content hash, fuzz failures in ``<store>/failures/``), which is
what makes the service's core contract hold: a sweep submitted over
HTTP digests byte-identically to the same sweep via ``repro psweep``.

Jobs carry live progress counters that poll handlers read without
locking the executor: each worker thread mutates only its own job's
``progress`` dict (dict assignment is atomic under the GIL), so
``GET /v1/jobs/{id}`` never blocks on a running sweep.

Sweeps default to ``processes=1`` — the job already runs on a worker
thread, and forking a multiprocessing pool from a thread is a
portability trap; submitters that want a pool pass
``options.processes`` explicitly.
"""

from __future__ import annotations

import hashlib
import json
import queue
import threading
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import ReproError

__all__ = ["Job", "JobManager"]

#: Job lifecycle states, in order.
QUEUED = "queued"
RUNNING = "running"
COMPLETED = "completed"
FAILED = "failed"

_KINDS = ("experiment", "sweep", "fuzz", "campaign")


def _spec_hash(kind: str, spec) -> str:
    """A stable identity for the submitted work (spec content hash)."""
    if hasattr(spec, "content_hash"):
        return spec.content_hash()
    # SweepSpec exposes no content_hash of its own; hash its canonical
    # dict form the same way the spec layer does.
    canonical = json.dumps(
        spec.to_dict(), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


@dataclass
class Job:
    """One submitted unit of service work and its live accounting."""

    id: str
    kind: str
    spec_hash: str
    spec: object
    options: Dict[str, object]
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    progress: Dict[str, object] = field(default_factory=dict)
    result: Optional[Dict[str, object]] = None
    error: Optional[str] = None

    def to_dict(self) -> Dict[str, object]:
        return {
            "id": self.id,
            "kind": self.kind,
            "spec_hash": self.spec_hash,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "progress": dict(self.progress),
            "result": self.result,
            "error": self.error,
        }


class JobManager:
    """A FIFO queue of jobs drained by daemon worker threads.

    One manager per server process; each worker thread opens its own
    :class:`~repro.store.RunStore` handle on the shared store root
    (handles are cheap — the SQLite index is shared on disk), so jobs
    never contend on a store handle with the HTTP read path.
    """

    def __init__(self, store_root: str, *, workers: int = 2) -> None:
        self.store_root = store_root
        self._queue: "queue.Queue[Optional[Job]]" = queue.Queue()
        self._jobs: Dict[str, Job] = {}
        self._order: List[str] = []
        self._lock = threading.Lock()
        self._seq = 0
        self._threads = [
            threading.Thread(
                target=self._worker, name=f"serve-job-{i}", daemon=True
            )
            for i in range(max(1, workers))
        ]
        for thread in self._threads:
            thread.start()

    # -- submission ----------------------------------------------------------

    def submit(self, kind: str, spec, options: Dict[str, object]) -> Job:
        if kind not in _KINDS:
            raise ReproError(
                f"unknown job kind {kind!r} (expected one of {_KINDS})"
            )
        spec_hash = _spec_hash(kind, spec)
        with self._lock:
            self._seq += 1
            job = Job(
                id=f"job-{self._seq:04d}-{spec_hash[:12]}",
                kind=kind,
                spec_hash=spec_hash,
                spec=spec,
                options=dict(options),
            )
            self._jobs[job.id] = job
            self._order.append(job.id)
        self._queue.put(job)
        return job

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def list(self) -> List[Job]:
        with self._lock:
            return [self._jobs[job_id] for job_id in self._order]

    def shutdown(self, timeout: float = 5.0) -> None:
        """Stop the workers after the jobs already running finish."""
        for _ in self._threads:
            self._queue.put(None)
        for thread in self._threads:
            thread.join(timeout=timeout)

    # -- execution -----------------------------------------------------------

    def _worker(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            job.state = RUNNING
            job.started_at = time.time()
            try:
                job.result = self._execute(job)
                job.state = COMPLETED
            except ReproError as error:
                job.error = str(error)
                job.state = FAILED
            except Exception:
                job.error = traceback.format_exc(limit=8)
                job.state = FAILED
            finally:
                job.finished_at = time.time()

    def _execute(self, job: Job) -> Dict[str, object]:
        handler = {
            "experiment": self._run_experiment,
            "sweep": self._run_sweep,
            "fuzz": self._run_fuzz,
            "campaign": self._run_campaign,
        }[job.kind]
        return handler(job)

    def _open_store(self):
        from repro.store import RunStore

        return RunStore(self.store_root)

    def _run_experiment(self, job: Job) -> Dict[str, object]:
        from repro.store import cached_run

        store = self._open_store()
        backend = str(job.options.get("backend", "object"))
        result, hit = cached_run(job.spec, store, backend=backend)
        job.progress = {"executed": 0 if hit else 1, "cached": 1 if hit else 0}
        return {
            "content_hash": job.spec.content_hash(),
            "cached": hit,
            "row": result.row(),
        }

    def _run_sweep(self, job: Job) -> Dict[str, object]:
        from repro.experiments.sweep import execute_sweep, expand_cells

        store = self._open_store()
        total = len(expand_cells(job.spec))

        def on_progress(done: int, pending_total: int) -> None:
            job.progress = {
                "done": done,
                "pending": pending_total,
                "total": total,
            }

        outcome = execute_sweep(
            job.spec,
            processes=int(job.options.get("processes", 1)),
            store=store,
            resume=bool(job.options.get("resume", True)),
            progress=on_progress,
            backend=str(job.options.get("backend", "object")),
        )
        job.progress = {
            "done": outcome.executed,
            "total": outcome.total,
            "executed": outcome.executed,
            "cached": outcome.cached,
        }
        return {
            "summary": outcome.describe(),
            "total": outcome.total,
            "executed": outcome.executed,
            "cached": outcome.cached,
        }

    def _run_fuzz(self, job: Job) -> Dict[str, object]:
        from repro.fuzz import ScheduleFuzzer, fuzz_parallel

        jobs = int(job.options.get("jobs", 1))
        keep_going = bool(job.options.get("keep_going", False))
        shrink = bool(job.options.get("shrink", True))
        if jobs > 1:
            outcome = fuzz_parallel(
                job.spec, jobs, keep_going=keep_going, shrink=shrink
            )
        else:

            def on_progress(runs: int, budget: int, coverage: str) -> None:
                job.progress = {
                    "runs": runs,
                    "budget": budget,
                    "coverage": coverage,
                }

            outcome = ScheduleFuzzer(
                job.spec, keep_going=keep_going, shrink=shrink,
                progress=on_progress,
            ).run()
        store = self._open_store()
        archived = []
        for failure in outcome.failures:
            store.failures.put(failure.content_hash, failure.to_dict())
            archived.append(failure.content_hash)
        job.progress = {
            "runs": outcome.runs,
            "budget": job.spec.budget,
            "states": outcome.states,
            "patterns": outcome.patterns,
            "failures": len(outcome.failures),
        }
        return {
            "summary": outcome.describe(),
            "runs": outcome.runs,
            "steps": outcome.steps,
            "states": outcome.states,
            "patterns": outcome.patterns,
            "complete": outcome.complete,
            "failures": archived,
        }

    def _run_campaign(self, job: Job) -> Dict[str, object]:
        from repro.campaign import run_campaign

        lines: List[str] = []

        def on_progress(line: str) -> None:
            lines.append(line)
            job.progress = {"events": len(lines), "last_event": line}

        outcome = run_campaign(
            job.spec,
            self.store_root,
            resume=bool(job.options.get("resume", True)),
            progress=on_progress,
        )
        job.progress = {
            "events": len(lines),
            "completed": outcome.completed,
            "cached": outcome.cached,
            "total": outcome.total,
            "quarantined": len(outcome.quarantined),
        }
        return {
            "summary": outcome.describe(),
            "total": outcome.total,
            "completed": outcome.completed,
            "cached": outcome.cached,
            "quarantined": len(outcome.quarantined),
            "failures": len(outcome.failures),
            "exit_code": outcome.exit_code,
        }
