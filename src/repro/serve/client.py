"""Stdlib HTTP client for the experiment service.

:class:`ServeClient` wraps :mod:`urllib.request` around the ``/v1``
API — no dependency beyond the standard library, mirroring the server.
Every method returns the decoded JSON payload; non-2xx answers raise
:class:`ServeError` carrying the status and the server's structured
``{"error": {"code", "message"}}`` payload, so callers branch on
``error.code`` instead of parsing prose.

Used by the ``repro submit`` / ``repro jobs`` CLI verbs and by tests;
third-party callers can use it directly::

    client = ServeClient("http://127.0.0.1:8765")
    job = client.submit("sweep", sweep_spec.to_dict())
    done = client.wait(job["id"])
    print(client.digest()["digest"])
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.parse
import urllib.request
from typing import Dict, Optional

from repro.errors import ReproError

__all__ = ["ServeClient", "ServeError"]


class ServeError(ReproError):
    """A non-2xx answer from the service, with its structured payload."""

    def __init__(self, status: int, payload: Dict[str, object]) -> None:
        error = payload.get("error") if isinstance(payload, dict) else None
        error = error if isinstance(error, dict) else {}
        self.status = status
        self.code = str(error.get("code", "unknown"))
        self.payload = payload
        super().__init__(
            f"HTTP {status} {self.code}: "
            f"{error.get('message', 'no message')}"
        )


class ServeClient:
    """A thin JSON-over-HTTP client for one service endpoint."""

    def __init__(self, base_url: str, *, timeout: float = 30.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------------

    def _request(
        self,
        method: str,
        path: str,
        *,
        query: Optional[Dict[str, object]] = None,
        body: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        url = self.base_url + path
        if query:
            pairs = {
                name: str(value)
                for name, value in query.items()
                if value is not None
            }
            if pairs:
                url += "?" + urllib.parse.urlencode(pairs)
        data = None
        headers = {"Accept": "application/json"}
        if body is not None:
            data = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            url, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(
                request, timeout=self.timeout
            ) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as error:
            raw = error.read()
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                payload = {"error": {"code": "unknown",
                                     "message": raw[:200].decode("latin-1")}}
            raise ServeError(error.code, payload) from None
        except urllib.error.URLError as error:
            raise ReproError(
                f"cannot reach experiment service at {self.base_url}: "
                f"{error.reason}"
            ) from None

    # -- endpoints -----------------------------------------------------------

    def health(self) -> Dict[str, object]:
        return self._request("GET", "/v1/health")

    def registry(self) -> Dict[str, object]:
        return self._request("GET", "/v1/registry")

    def digest(self) -> Dict[str, object]:
        return self._request("GET", "/v1/store/digest")

    def runs(
        self,
        *,
        algorithm: Optional[str] = None,
        scheduler: Optional[str] = None,
        n: Optional[int] = None,
        k: Optional[int] = None,
        uniform: Optional[bool] = None,
        hash_prefix: Optional[str] = None,
        limit: Optional[int] = None,
        offset: Optional[int] = None,
    ) -> Dict[str, object]:
        return self._request("GET", "/v1/runs", query={
            "algorithm": algorithm,
            "scheduler": scheduler,
            "n": n,
            "k": k,
            "uniform": None if uniform is None else str(uniform).lower(),
            "hash": hash_prefix,
            "limit": limit,
            "offset": offset,
        })

    def run(self, content_hash: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/runs/{content_hash}")

    def failures(self) -> Dict[str, object]:
        return self._request("GET", "/v1/failures")

    def failure(self, content_hash: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/failures/{content_hash}")

    def quarantine(self) -> Dict[str, object]:
        return self._request("GET", "/v1/quarantine")

    def submit(
        self,
        kind: str,
        spec: Dict[str, object],
        options: Optional[Dict[str, object]] = None,
    ) -> Dict[str, object]:
        return self._request("POST", "/v1/jobs", body={
            "kind": kind,
            "spec": spec,
            "options": options or {},
        })

    def jobs(self) -> Dict[str, object]:
        return self._request("GET", "/v1/jobs")

    def job(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/v1/jobs/{job_id}")

    def wait(
        self,
        job_id: str,
        *,
        poll: float = 0.2,
        timeout: float = 300.0,
        on_progress=None,
    ) -> Dict[str, object]:
        """Poll ``job_id`` until it completes or fails; return the job.

        ``on_progress`` (if given) receives each polled job dict —
        the CLI uses it to print live counters.  Raises
        :class:`ReproError` when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            job = self.job(job_id)
            if on_progress is not None:
                on_progress(job)
            if job.get("state") in ("completed", "failed"):
                return job
            if time.monotonic() >= deadline:
                raise ReproError(
                    f"timed out after {timeout:.0f}s waiting for {job_id} "
                    f"(state {job.get('state')!r})"
                )
            time.sleep(poll)
